//! The paper's introduction scenario: labelling medical images where
//! crowd workers cannot reliably decide and experts are expensive.
//!
//! ```sh
//! cargo run --release --example medical_triage
//! ```
//!
//! Demonstrates the *joint truth inference* model directly (no RL loop):
//! five medical students (noisy workers) and one radiologist (expert)
//! label a set of scans, and we compare majority voting, Dawid–Skene, and
//! CrowdRL's joint model — which couples a classifier trained on image
//! features with the annotators and bounds the expert's estimated quality
//! (§V-A).

use crowdrl::inference::{DawidSkene, InferenceResult, JointInference, MajorityVote};
use crowdrl::nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl::prelude::*;
use crowdrl::types::rng;

fn main() -> crowdrl::types::Result<()> {
    let mut master = rng::seeded(2024);

    // 400 "scans" with 32 radiomic-style features; tumours are subtle
    // (low class separation) and 4% of cases are genuinely ambiguous.
    let dataset = DatasetSpec::gaussian("scans", 400, 32, 2)
        .with_separation(2.2)
        .with_label_noise(0.04)
        .generate(&mut master)?;

    // Five medical students (accuracy ~0.6-0.8) and one radiologist.
    let pool = PoolSpec::new(5, 1)
        .with_worker_accuracy(0.60, 0.80)
        .with_expert_accuracy(0.96, 1.0)
        .generate(2, &mut master)?;

    // Everyone reads every scan (a reader study).
    let mut answers = AnswerSet::new(dataset.len());
    for i in 0..dataset.len() {
        for p in pool.profiles() {
            let label = pool.sample_answer(p.id, dataset.truth(i), &mut master);
            answers.record(Answer {
                object: ObjectId(i),
                annotator: p.id,
                label,
            })?;
        }
    }

    let accuracy = |r: &InferenceResult| {
        (0..dataset.len())
            .filter(|&i| r.label(ObjectId(i)) == Some(dataset.truth(i)))
            .count() as f64
            / dataset.len() as f64
    };

    let mv = MajorityVote.infer(&answers, 2, pool.len())?;
    println!("majority vote          : {:.3}", accuracy(&mv));

    let ds = DawidSkene::default().infer(&answers, 2, pool.len())?;
    println!("Dawid-Skene EM         : {:.3}", accuracy(&ds));

    // The joint model: one EM over classifier parameters, annotator
    // confusion matrices (with the radiologist's quality bounded below),
    // and the label posteriors.
    let mut classifier =
        SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut master)?;
    let joint = JointInference::default().infer(
        &dataset,
        &answers,
        pool.profiles(),
        &mut classifier,
        &mut master,
    )?;
    println!("CrowdRL joint inference: {:.3}", accuracy(&joint));

    println!("\nestimated annotator qualities (joint model):");
    for (p, q) in pool.profiles().iter().zip(joint.qualities()) {
        let latent = pool.latent_confusion(p.id).quality();
        println!(
            "  {} {:7}: estimated {q:.3} (true {latent:.3})",
            p.id,
            p.kind.to_string()
        );
    }
    println!("\nThe radiologist's estimated quality stays bounded at >= 0.95 even if");
    println!("an EM pass would otherwise erode it after rare disagreements, and the");
    println!("classifier's feature signal tips scans the students split on.");
    Ok(())
}
