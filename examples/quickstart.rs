//! Quickstart: label a small synthetic dataset end-to-end with CrowdRL.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 300-object binary labelling problem, a pool of three crowd
//! workers and one expert, runs the full CrowdRL loop under a budget of
//! 900 units, and scores the result against the hidden ground truth.

use crowdrl::prelude::*;
use crowdrl::types::rng;

fn main() -> crowdrl::types::Result<()> {
    let mut master = rng::seeded(42);

    // 1. A synthetic dataset: 300 objects, 8 informative feature dims,
    //    2 classes, moderately separable (total centroid distance 2.5 ⇒
    //    a perfect classifier tops out near 89% accuracy).
    let dataset = DatasetSpec::gaussian("quickstart", 300, 8, 2)
        .with_separation(2.5)
        .with_label_noise(0.03)
        .generate(&mut master)?;
    println!(
        "dataset: {} objects x {} dims, {} classes",
        dataset.len(),
        dataset.dim(),
        dataset.num_classes()
    );

    // 2. An annotator pool: 3 noisy workers (cost 1) + 1 expert (cost 10).
    let pool = PoolSpec::new(3, 1).generate(dataset.num_classes(), &mut master)?;
    for p in pool.profiles() {
        println!("  {} {} (cost {})", p.id, p.kind, p.cost);
    }

    // 3. Configure and run CrowdRL.
    let config = CrowdRlConfig::builder()
        .budget(900.0)
        .initial_ratio(0.05) // label 5% up front
        .assignment_k(3) // 3 annotators per selected object
        .build()?;
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut master)?;

    // 4. Score against the hidden ground truth.
    let metrics = evaluate_labels(&dataset, &outcome.labels)?;
    println!("\n--- outcome ---");
    println!("budget spent      : {:.0} / 900", outcome.budget_spent);
    println!("answers purchased : {}", outcome.total_answers);
    println!("labelling rounds  : {}", outcome.iterations);
    println!(
        "labels from humans: {} | from the classifier: {}",
        outcome.labels.len() - outcome.enriched_count,
        outcome.enriched_count
    );
    println!("accuracy          : {:.3}", metrics.accuracy);
    println!(
        "precision / recall: {:.3} / {:.3}",
        metrics.precision, metrics.recall
    );
    println!("F1                : {:.3}", metrics.f1);
    Ok(())
}
