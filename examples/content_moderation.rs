//! Content moderation at scale: a Fashion-10000-style task where a large
//! image stream must be labelled cheaply.
//!
//! ```sh
//! cargo run --release --example content_moderation
//! ```
//!
//! Runs CrowdRL head-to-head against the five baseline frameworks on the
//! same dataset, pool, and budget — a miniature of the paper's Figure 4
//! for one dataset.

use crowdrl::baselines::{paper_baselines, BaselineParams, CrowdRlStrategy};
use crowdrl::prelude::*;
use crowdrl::sim::FashionSpec;
use crowdrl::types::rng;

fn main() -> crowdrl::types::Result<()> {
    let mut master = rng::seeded(99);

    // 500 images, easy-ish task (the paper notes fashion-relatedness is
    // easier to judge than oral-presentation quality).
    let dataset = FashionSpec::fashion()
        .with_num_objects(500)
        .generate(&mut master)?;
    // The paper's fashion pool: |W| = 3 (2 workers + 1 expert), and the
    // paper's per-object budget ratio.
    let pool = PoolSpec::new(2, 1).generate(2, &mut master)?;
    let budget = 160_000.0 / 32_398.0 * 500.0;
    let params = BaselineParams::with_budget(budget);
    println!("labelling 500 images with budget {budget:.0}\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>11}",
        "method", "accuracy", "F1", "coverage", "spent"
    );

    let mut methods = paper_baselines();
    methods.push(Box::new(CrowdRlStrategy::full()));
    for method in &methods {
        let mut rng = rng::seeded(1234);
        let outcome = method.run(&dataset, &pool, &params, &mut rng)?;
        let m = evaluate_labels(&dataset, &outcome.labels)?;
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3} {:>11.0}",
            method.name(),
            m.accuracy,
            m.f1,
            m.coverage,
            outcome.budget_spent
        );
    }
    println!("\nOBA trusts every human answer blindly, so worker noise flows straight");
    println!("into its labels; CrowdRL spends the same budget but routes hard images");
    println!("to the expert and lets its classifier absorb the easy tail.");
    Ok(())
}
