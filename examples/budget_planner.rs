//! Budget planning: how much labelling quality does each budget level buy?
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```
//!
//! Sweeps the budget from shoestring to generous on a fixed dataset and
//! prints the quality/cost curve, plus where the labels came from at each
//! level (human inference vs classifier enrichment). Useful for answering
//! the practical question the paper's framework poses: *what budget do I
//! actually need for my target accuracy?*

use crowdrl::prelude::*;
use crowdrl::types::rng;

fn main() -> crowdrl::types::Result<()> {
    let mut master = rng::seeded(5);
    let dataset = DatasetSpec::gaussian("planner", 250, 12, 2)
        .with_separation(2.4)
        .with_label_noise(0.04)
        .generate(&mut master)?;
    let pool = PoolSpec::new(3, 1).generate(2, &mut master)?;

    println!(
        "{:>8} {:>9} {:>7} {:>13} {:>13}",
        "budget", "accuracy", "F1", "human labels", "model labels"
    );
    for budget in [50.0, 150.0, 300.0, 600.0, 1_200.0, 2_400.0] {
        let mut rng = rng::seeded(777);
        let config = CrowdRlConfig::builder().budget(budget).build()?;
        let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng)?;
        let m = evaluate_labels(&dataset, &outcome.labels)?;
        println!(
            "{:>8.0} {:>9.3} {:>7.3} {:>13} {:>13}",
            budget,
            m.accuracy,
            m.f1,
            outcome.labels.len() - outcome.enriched_count,
            outcome.enriched_count
        );
    }
    println!("\nQuality rises steeply while human labels are scarce, then saturates:");
    println!("once the hard objects have expert-anchored labels, extra budget only");
    println!("re-confirms what the classifier already labels correctly for free.");
    Ok(())
}
