//! The paper's motivating scenario: assessing primary-school oral
//! presentations (Speech12), comparing the three feature views.
//!
//! ```sh
//! cargo run --release --example speech_assessment
//! ```
//!
//! Generates a Speech12-analogue dataset (contextual + prosodic feature
//! blocks), runs CrowdRL on each view (C / P / CP) with the paper's
//! budget ratio, and shows that concatenated features label best —
//! observation (5) of §VI-B.1.

use crowdrl::prelude::*;
use crowdrl::sim::SpeechSpec;
use crowdrl::types::rng;

fn main() -> crowdrl::types::Result<()> {
    let mut master = rng::seeded(7);

    // A scaled-down Speech12: 300 video clips, 50-d contextual + 150-d
    // prosodic features, binary excellent/awful labels with ~6%
    // irreducible grader disagreement.
    let views = SpeechSpec::speech12()
        .with_num_objects(300)
        .generate(&mut master)?;

    // The paper's speech pool: 3 crowd workers + 2 professional teachers
    // (experts), costs 1 and 10; budget at the paper's per-object ratio.
    let budget = 10_000.0 / 2_344.0 * 300.0;
    println!("budget: {budget:.0} units for 300 clips\n");

    for dataset in [&views.c, &views.p, &views.cp] {
        let mut rng = rng::seeded(100);
        let pool = PoolSpec::new(3, 2).generate(2, &mut rng)?;
        let config = CrowdRlConfig::builder().budget(budget).build()?;
        let outcome = CrowdRl::new(config).run(dataset, &pool, &mut rng)?;
        let m = evaluate_labels(dataset, &outcome.labels)?;
        println!(
            "{:7}  F1 {:.3}  precision {:.3}  recall {:.3}  (spent {:.0}, {} human / {} model labels)",
            dataset.name(),
            m.f1,
            m.precision,
            m.recall,
            outcome.budget_spent,
            outcome.labels.len() - outcome.enriched_count,
            outcome.enriched_count,
        );
    }
    println!("\nEach feature family carries partial signal; on average across seeds the");
    println!("concatenated view (s12cp) rates objects most reliably, which is the");
    println!("paper's observation (5) in SVI-B.1 (single runs vary — the fig4 harness");
    println!("averages over repetitions).");
    Ok(())
}
