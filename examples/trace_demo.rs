//! Tracing demo: run the batch workflow and the asynchronous runtime with
//! the `crowdrl-obs` recorder installed, then analyze the trace in-process
//! and print the same report `crowdrl-trace` would.
//!
//! ```sh
//! cargo run --release --example trace_demo
//! # or pick the trace path yourself:
//! CROWDRL_TRACE=run.jsonl cargo run --release --example trace_demo
//! cargo run --release --bin crowdrl-trace run.jsonl
//! ```

use crowdrl::obs;
use crowdrl::obs::analyze::{read_trace, report};
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

fn main() {
    // Honour CROWDRL_TRACE if the user set it; otherwise write next to the
    // current directory so the path printed below always exists.
    let path = std::env::var("CROWDRL_TRACE").unwrap_or_else(|_| "trace_demo.jsonl".to_string());
    obs::Recorder::to_file(&path)
        .expect("open trace file")
        .install();

    let mut rng = seeded(42);
    let dataset = DatasetSpec::gaussian("trace-demo", 80, 4, 2)
        .with_separation(3.0)
        .generate(&mut rng)
        .expect("dataset");
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).expect("pool");
    let config = CrowdRlConfig::builder()
        .budget(200.0)
        .initial_ratio(0.1)
        .build()
        .expect("config");
    let crowdrl = CrowdRl::new(config);

    // One traced batch run...
    let mut batch_rng = seeded(7);
    let batch = crowdrl
        .run(&dataset, &pool, &mut batch_rng)
        .expect("batch run");
    println!(
        "batch: spent {:.1} over {} iterations",
        batch.budget_spent, batch.iterations
    );

    // ...and one traced asynchronous run; its service metrics land in the
    // same trace stream via ServiceMetrics::emit_trace.
    let mut async_rng = seeded(7);
    let result = crowdrl
        .run_async(&dataset, &pool, &ServeConfig::default(), &mut async_rng)
        .expect("async run");
    println!(
        "async: spent {:.1} over {} refreshes",
        result.outcome.budget_spent, result.metrics.refreshes
    );

    // Flush everything (counter/histogram snapshots included) and release
    // the file before reading it back.
    obs::shutdown();

    let trace = read_trace(&path).expect("read trace back");
    println!(
        "\ntrace written to {path} ({} events)\n",
        trace.events.len()
    );
    print!("{}", report(&trace));
}
