//! Service chaos demo: a multi-tenant run under tenant-scoped faults —
//! one project's shard panics, another suffers a platform outage, the
//! admission queue sheds an overflow submission — with crash-consistent
//! checkpoints cut at round boundaries. The run is killed at a
//! checkpoint, restored from the encoded snapshot, and the resumed run
//! is verified bit-identical to the uninterrupted one; the healthy
//! tenants complete as if nothing had happened around them.
//!
//! ```sh
//! cargo run --release --example service_chaos_demo
//! # inspect the trace afterwards:
//! cargo run --release --bin crowdrl-trace service_chaos_demo.jsonl
//! ```

use crowdrl::obs;
use crowdrl::obs::analyze::{read_trace, report};
use crowdrl::prelude::*;
use crowdrl::serve::RunControl;
use crowdrl::sim::{OutageWindow, ProjectOutage, ProjectPanic, ServiceFaultPlan};
use crowdrl::types::rng::seeded;

fn build_specs(projects: usize) -> Vec<ProjectSpec> {
    let mut rng = seeded(0xFA11_0001);
    (0..projects)
        .map(|p| {
            let dataset = DatasetSpec::gaussian(format!("tenant-{p}"), 24 + 2 * p, 4, 2)
                .with_separation(2.5)
                .generate(&mut rng)
                .expect("dataset");
            let config = CrowdRlConfig::builder()
                .budget(72.0 + 6.0 * p as f64)
                .build()
                .expect("config");
            ProjectSpec::new(format!("tenant-{p}"), config, dataset)
        })
        .collect()
}

/// The injected shard panic is caught and contained by the service;
/// keep the default hook from spraying its backtrace over the report.
/// Anything else panicking still prints normally.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.starts_with("injected shard panic"))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.starts_with("injected shard panic"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() {
    silence_injected_panics();
    let path =
        std::env::var("CROWDRL_TRACE").unwrap_or_else(|_| "service_chaos_demo.jsonl".to_string());
    obs::Recorder::to_file(&path)
        .expect("open trace file")
        .install();

    // Six tenants on a capacity-2 service with a 3-deep admission
    // queue: the sixth submission is shed. Tenant 0 is poisoned — its
    // first shard advance panics — and tenant 1 rides out a platform
    // outage that defers its deliveries.
    let specs = build_specs(6);
    let mut rng = seeded(0xFA11_0002);
    let pool = PoolSpec::new(9, 3).generate(2, &mut rng).expect("pool");
    let config = ServiceConfig::default()
        .with_capacity(2)
        .with_shards(2)
        .with_watermarks(8, 20.0)
        .with_max_queue_depth(3)
        .with_checkpoint_every(2)
        .with_faults(ServiceFaultPlan {
            outages: vec![ProjectOutage {
                project: 1,
                window: OutageWindow {
                    start: 20.0,
                    end: 60.0,
                },
            }],
            panics: vec![ProjectPanic {
                project: 0,
                at: 1.0,
            }],
            ..ServiceFaultPlan::default()
        });
    let service = Service::new(config).expect("service config");

    // The reference: one uninterrupted faulted run.
    let mut cuts = 0usize;
    let mut count = |_: ServiceCheckpoint| {
        cuts += 1;
        RunControl::Continue
    };
    let reference = match service
        .run_with_checkpoints(&specs, &pool, &mut seeded(0xFA11_0003), &mut count)
        .expect("uninterrupted run")
    {
        ServiceRunOutcome::Completed(outcome) => *outcome,
        ServiceRunOutcome::Halted => unreachable!("sink always continues"),
    };
    println!(
        "uninterrupted: {} rounds, {} checkpoints cut, {} failed, {} shed, spent {:.1}",
        reference.aggregate.rounds,
        cuts,
        reference.aggregate.failed,
        reference.aggregate.shed,
        reference.aggregate.total_spent,
    );
    for report in &reference.reports {
        let note = match &report.error {
            Some(e) => format!(" — {e}"),
            None => String::new(),
        };
        println!("  {:<10} {:?}{note}", report.name, report.status);
    }

    // Kill the same run at its second checkpoint; keep the snapshot as
    // the JSON string that would sit on disk.
    let mut seen = 0usize;
    let mut snapshot: Option<String> = None;
    let mut kill = |ckpt: ServiceCheckpoint| {
        seen += 1;
        if seen == 2 {
            snapshot = Some(ckpt.encode());
            RunControl::Halt
        } else {
            RunControl::Continue
        }
    };
    let halted = service
        .run_with_checkpoints(&specs, &pool, &mut seeded(0xFA11_0003), &mut kill)
        .expect("killed run");
    assert!(matches!(halted, ServiceRunOutcome::Halted));
    let snapshot = snapshot.expect("snapshot cut before the kill");
    println!(
        "\nkilled at checkpoint 2: snapshot {} bytes",
        snapshot.len()
    );

    // Restore and run to completion; the outcome must be bit-identical.
    let ckpt = ServiceCheckpoint::decode(&snapshot).expect("decode snapshot");
    let resumed = match service
        .resume(&specs, &pool, &mut seeded(0xFA11_0003), ckpt, &mut |_| {
            RunControl::Continue
        })
        .expect("resumed run")
    {
        ServiceRunOutcome::Completed(outcome) => *outcome,
        ServiceRunOutcome::Halted => unreachable!("sink always continues"),
    };
    assert_eq!(resumed.trace, reference.trace, "traces diverged");
    for (p, (a, b)) in reference.reports.iter().zip(&resumed.reports).enumerate() {
        assert_eq!(a.status, b.status, "status diverged for project {p}");
        assert_eq!(a.metrics, b.metrics, "metrics diverged for project {p}");
        assert_eq!(
            a.outcome.as_ref().map(|o| &o.labels),
            b.outcome.as_ref().map(|o| &o.labels),
            "labels diverged for project {p}"
        );
    }
    assert_eq!(
        resumed.aggregate.total_spent.to_bits(),
        reference.aggregate.total_spent.to_bits()
    );
    println!("restored run matches the uninterrupted run bit-for-bit");

    obs::shutdown();
    let trace = read_trace(&path).expect("read trace back");
    println!(
        "\ntrace written to {path} ({} events)\n",
        trace.events.len()
    );
    print!("{}", report(&trace));
}
