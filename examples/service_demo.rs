//! Multi-tenant service demo: many concurrent labelling projects over
//! one shared annotator pool, in one process.
//!
//! Defaults to 20 projects × 2 500 objects each (50 000 objects total)
//! against a shared pool of 2 000 simulated annotators. The whole
//! service runs twice — single-threaded and on the worker pool — and
//! asserts the two runs are bit-identical (same merged trace, same
//! labels, same per-project metrics).
//!
//! ```sh
//! cargo run --release --example service_demo
//! # smaller/bigger:
//! SERVICE_DEMO_PROJECTS=4 SERVICE_DEMO_OBJECTS=300 SERVICE_DEMO_ANNOTATORS=60 \
//!     cargo run --release --example service_demo
//! # force a decide-path mode (selections are bit-identical either way):
//! SERVICE_DEMO_DECIDE=exhaustive cargo run --release --example service_demo
//! ```

use crowdrl::core::{DecideConfig, DecideMode, InferenceModel};
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `SERVICE_DEMO_DECIDE=pruned|exhaustive` (default: the library default,
/// pruned). The ci smoke gate runs the demo once per mode and diffs the
/// output — the decide path must never change a selection.
fn env_decide() -> DecideConfig {
    let mode = match std::env::var("SERVICE_DEMO_DECIDE").as_deref() {
        Ok("exhaustive") => DecideMode::Exhaustive,
        Ok("pruned") | Err(_) => DecideMode::Pruned,
        Ok(other) => panic!("SERVICE_DEMO_DECIDE must be pruned|exhaustive, got {other:?}"),
    };
    DecideConfig {
        mode,
        ..DecideConfig::default()
    }
}

fn accuracy(labels: &[Option<ClassId>], dataset: &Dataset) -> f64 {
    labels
        .iter()
        .enumerate()
        .filter(|(i, l)| **l == Some(dataset.truth(*i)))
        .count() as f64
        / dataset.len() as f64
}

fn build_specs(projects: usize, objects: usize) -> Vec<ProjectSpec> {
    let mut rng = seeded(0x5EED_0001);
    (0..projects)
        .map(|p| {
            let dataset = DatasetSpec::gaussian(format!("tenant-{p}"), objects, 4, 2)
                .with_separation(3.0)
                .generate(&mut rng)
                .expect("dataset");
            // Cheap per-project knobs: Dawid–Skene inference and a large
            // dispatch batch keep each refresh inexpensive at this scale.
            let config = CrowdRlConfig::builder()
                .budget(1.15 * objects as f64)
                .initial_ratio(0.02)
                .batch_per_iter((objects / 10).max(8))
                .candidate_cap(32)
                .assignment_k(1)
                .inference(InferenceModel::DawidSkene)
                .build()
                .expect("config");
            ProjectSpec::new(format!("tenant-{p}"), config, dataset).with_priority((p % 3) as u32)
        })
        .collect()
}

fn run(
    specs: &[ProjectSpec],
    pool: &AnnotatorPool,
    mode: ExecMode,
    batch: usize,
) -> ServiceOutcome {
    let mut config = ServiceConfig::default()
        .with_capacity(specs.len())
        .with_shards(4)
        .with_watermarks((batch / 2).max(1), 90.0)
        .with_mode(mode)
        .with_decide(env_decide());
    // Batch nearby events generously: the decision cadence is set by the
    // watermarks above, so a wide scheduling epoch just cuts round count.
    config.epoch = 10.0;
    let service = Service::new(config).expect("service config");
    let mut rng = seeded(0x5EED_0002);
    service.run(specs, pool, &mut rng).expect("service run")
}

fn main() {
    let projects = env_usize("SERVICE_DEMO_PROJECTS", 20);
    let objects = env_usize("SERVICE_DEMO_OBJECTS", 2_500);
    let annotators = env_usize("SERVICE_DEMO_ANNOTATORS", 2_000);
    let width = env_usize("SERVICE_DEMO_WIDTH", 4);
    let experts = (annotators / 10).max(1);
    let workers = annotators - experts;
    let batch = (objects / 10).max(8);

    println!(
        "service demo: {projects} projects x {objects} objects = {} objects total, \
         shared pool of {annotators} annotators ({workers} workers + {experts} experts)",
        projects * objects
    );

    let mut rng = seeded(0x5EED_0003);
    let pool = PoolSpec::new(workers, experts)
        .generate(2, &mut rng)
        .expect("pool");
    let specs = build_specs(projects, objects);

    let t0 = Instant::now();
    let single = run(&specs, &pool, ExecMode::SingleThread, batch);
    let single_wall = t0.elapsed().as_secs_f64();
    println!(
        "\nsingle-thread: {} rounds, sim time {}, wall {:.1}s",
        single.aggregate.rounds, single.aggregate.sim_duration, single_wall
    );

    let t1 = Instant::now();
    let pooled = run(
        &specs,
        &pool,
        ExecMode::WorkerPool { workers: width },
        batch,
    );
    let pooled_wall = t1.elapsed().as_secs_f64();
    println!(
        "worker-pool({width}): {} rounds, sim time {}, wall {:.1}s ({:.2}x)",
        pooled.aggregate.rounds,
        pooled.aggregate.sim_duration,
        pooled_wall,
        single_wall / pooled_wall.max(1e-9)
    );

    // Bit-identity between execution modes — not statistically close,
    // *identical*: same merged trace, same labels, same metrics.
    assert_eq!(
        single.trace, pooled.trace,
        "merged service traces diverged between exec modes"
    );
    for (p, (a, b)) in single.reports.iter().zip(&pooled.reports).enumerate() {
        assert_eq!(
            a.outcome.as_ref().map(|o| &o.labels),
            b.outcome.as_ref().map(|o| &o.labels),
            "labels diverged for project {p}"
        );
        assert_eq!(a.metrics, b.metrics, "metrics diverged for project {p}");
    }
    println!("bit-identity: single-thread == worker-pool({width}) \u{2713}");

    println!(
        "\n{:<12} {:>6} {:>9} {:>9} {:>9} {:>8}",
        "project", "prio", "accuracy", "answers", "spent", "timeouts"
    );
    for (spec, report) in specs.iter().zip(&single.reports) {
        let (acc, answers, spent, timeouts) = match (&report.outcome, &report.metrics) {
            (Some(o), Some(m)) => (
                accuracy(&o.labels, &spec.dataset),
                m.answers_delivered,
                m.budget_spent,
                m.timeouts,
            ),
            _ => (0.0, 0, 0.0, 0),
        };
        println!(
            "{:<12} {:>6} {:>9.3} {:>9} {:>9.1} {:>8}",
            report.name, spec.priority, acc, answers, spent, timeouts
        );
    }
    println!("\n{}", single.aggregate);
}
