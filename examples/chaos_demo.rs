//! Chaos demo: run the asynchronous runtime under injected platform
//! faults — no-shows, stragglers, duplicate deliveries, an outage
//! window, and a worker drifting into a spammer — with retry backoff,
//! annotator quarantine and periodic checkpoints enabled; then kill the
//! run at a checkpoint, restore from the encoded snapshot, and verify
//! the resumed run finishes bit-identically to the uninterrupted one.
//!
//! ```sh
//! cargo run --release --example chaos_demo
//! # inspect the trace afterwards:
//! cargo run --release --bin crowdrl-trace chaos_demo.jsonl
//! ```

use crowdrl::obs;
use crowdrl::obs::analyze::{read_trace, report};
use crowdrl::prelude::*;
use crowdrl::serve::SupervisorConfig;
use crowdrl::serve::{AsyncRuntime, QuarantineConfig, RunCheckpoint, RunControl, RunOutcome};
use crowdrl::sim::{FaultPlan, OutageWindow, QualityDrift};
use crowdrl::types::rng::seeded;

fn main() {
    let path = std::env::var("CROWDRL_TRACE").unwrap_or_else(|_| "chaos_demo.jsonl".to_string());
    obs::Recorder::to_file(&path)
        .expect("open trace file")
        .install();

    let mut rng = seeded(0xD00D);
    let dataset = DatasetSpec::gaussian("chaos-demo", 80, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .expect("dataset");
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).expect("pool");
    let config = CrowdRlConfig::builder()
        .budget(220.0)
        .build()
        .expect("config");

    // Everything at once: stochastic faults, a platform outage, a worker
    // that turns into a spammer — and the recovery machinery to match.
    let serve = ServeConfig::default()
        .with_faults(FaultPlan {
            no_show_rate: 0.05,
            straggler_rate: 0.10,
            duplicate_rate: 0.10,
            outages: vec![OutageWindow {
                start: 120.0,
                end: 140.0,
            }],
            drifts: vec![QualityDrift {
                annotator: AnnotatorId(0),
                at: 0.0,
            }],
            ..FaultPlan::default()
        })
        .with_supervisor(SupervisorConfig {
            backoff_base: 4.0,
            ..SupervisorConfig::default()
        })
        .with_quarantine(QuarantineConfig {
            enabled: true,
            min_answers: 6,
            ..QuarantineConfig::default()
        })
        .with_checkpoint_every(2);
    let runtime = AsyncRuntime::new(config, serve);

    // The reference: one uninterrupted faulted run.
    let mut run_rng = seeded(78);
    let reference = runtime
        .run(&dataset, &pool, &mut run_rng)
        .expect("uninterrupted run");
    println!(
        "uninterrupted: spent {:.1}, {} answers, {} timeouts, {} requeues",
        reference.outcome.budget_spent,
        reference.metrics.answers_delivered,
        reference.metrics.timeouts,
        reference.metrics.requeues,
    );

    // Kill the same run at its second checkpoint; keep the snapshot as
    // the JSON string that would sit on disk.
    let mut seen = 0usize;
    let mut snapshot: Option<String> = None;
    let mut sink = |ckpt: RunCheckpoint| {
        seen += 1;
        if seen == 2 {
            snapshot = Some(ckpt.encode());
            RunControl::Halt
        } else {
            RunControl::Continue
        }
    };
    let mut kill_rng = seeded(78);
    let halted = runtime
        .run_with_checkpoints(&dataset, &pool, &mut kill_rng, &mut sink)
        .expect("killed run");
    assert!(matches!(halted, RunOutcome::Halted));
    let snapshot = snapshot.expect("snapshot cut before the kill");
    println!("killed at checkpoint 2: snapshot {} bytes", snapshot.len());

    // Restore and run to completion; the outcome must be bit-identical.
    let ckpt = RunCheckpoint::decode(&snapshot).expect("decode snapshot");
    let mut resume_rng = seeded(78);
    let resumed = match runtime
        .resume(&dataset, &pool, &mut resume_rng, ckpt, &mut |_| {
            RunControl::Continue
        })
        .expect("resumed run")
    {
        RunOutcome::Completed(outcome) => *outcome,
        RunOutcome::Halted => unreachable!("sink always continues"),
    };
    assert_eq!(resumed.outcome.labels, reference.outcome.labels);
    assert_eq!(
        resumed.outcome.budget_spent.to_bits(),
        reference.outcome.budget_spent.to_bits()
    );
    assert_eq!(resumed.trace, reference.trace);
    println!("restored run matches the uninterrupted run bit-for-bit");

    obs::shutdown();
    let trace = read_trace(&path).expect("read trace back");
    println!(
        "\ntrace written to {path} ({} events)\n",
        trace.events.len()
    );
    print!("{}", report(&trace));
}
