//! Asynchronous labelling service demo.
//!
//! Runs the same dataset and budget through the batch workflow and the
//! asynchronous runtime (in both execution modes), printing the service
//! metrics report and the accuracy comparison.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

fn accuracy(labels: &[Option<ClassId>], dataset: &Dataset) -> f64 {
    labels
        .iter()
        .enumerate()
        .filter(|(i, l)| **l == Some(dataset.truth(*i)))
        .count() as f64
        / dataset.len() as f64
}

fn main() {
    let mut rng = seeded(42);
    let dataset = DatasetSpec::gaussian("serve-demo", 120, 4, 2)
        .with_separation(3.5)
        .generate(&mut rng)
        .expect("dataset");
    let pool = PoolSpec::new(4, 1).generate(2, &mut rng).expect("pool");
    let config = CrowdRlConfig::builder()
        .budget(300.0)
        .initial_ratio(0.1)
        .batch_per_iter(4)
        .build()
        .expect("config");
    let crowdrl = CrowdRl::new(config);

    // Reference: the synchronous batch workflow.
    let mut batch_rng = seeded(7);
    let batch = crowdrl
        .run(&dataset, &pool, &mut batch_rng)
        .expect("batch run");
    println!("batch workflow");
    println!(
        "  accuracy {:.3}  spent {:.1}  answers {}  iterations {}",
        accuracy(&batch.labels, &dataset),
        batch.budget_spent,
        batch.total_answers,
        batch.iterations
    );

    // The asynchronous service, single-threaded and worker-pool.
    for (name, mode) in [
        ("async single-thread", ExecMode::SingleThread),
        ("async worker-pool(4)", ExecMode::WorkerPool { workers: 4 }),
    ] {
        let serve = ServeConfig::default().with_mode(mode);
        let mut async_rng = seeded(7);
        let result = crowdrl
            .run_async(&dataset, &pool, &serve, &mut async_rng)
            .expect("async run");
        println!("\n{name}");
        println!(
            "  accuracy {:.3}  spent {:.1}  answers {}  refreshes {}",
            accuracy(&result.outcome.labels, &dataset),
            result.outcome.budget_spent,
            result.outcome.total_answers,
            result.outcome.iterations
        );
        println!("{}", result.metrics);
    }
}
