#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run from anywhere;
# everything happens at the repository root. The build environment is
# offline, so every cargo invocation passes --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test (workspace) =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
