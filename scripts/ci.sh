#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run from anywhere;
# everything happens at the repository root. The build environment is
# offline, so every cargo invocation passes --offline.
#
# The workspace test suite runs twice — once pinned to a single worker
# and once at four workers — because the parallel hot paths (linalg,
# EM inference, batched DQN scoring) promise bit-identical results at
# every pool width; a regression that only reproduces under threading
# must fail CI, not just tests/determinism.rs. Each suite reports its
# wall-clock so thread-scaling regressions are visible in the log.
set -euo pipefail
cd "$(dirname "$0")/.."

# Run "$@" (from the second argument on) and report the wall-clock
# seconds for the labelled suite (first argument).
timed() {
  local label=$1
  shift
  local start end
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  echo "-- ${label}: $((end - start))s"
}

echo "== cargo build --release =="
timed "build" cargo build --release --offline

echo "== cargo test (workspace, CROWDRL_THREADS=1) =="
timed "tests @1 thread" env CROWDRL_THREADS=1 cargo test -q --offline --workspace

echo "== cargo test (workspace, CROWDRL_THREADS=4) =="
timed "tests @4 threads" env CROWDRL_THREADS=4 cargo test -q --offline --workspace

echo "== cargo fmt --check =="
timed "fmt" cargo fmt --check

echo "== cargo clippy -D warnings =="
timed "clippy" cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
