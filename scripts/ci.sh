#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run from anywhere;
# everything happens at the repository root. The build environment is
# offline, so every cargo invocation passes --offline.
#
# The workspace test suite runs twice — once pinned to a single worker
# and once at four workers — because the parallel hot paths (linalg,
# EM inference, batched DQN scoring) promise bit-identical results at
# every pool width; a regression that only reproduces under threading
# must fail CI, not just tests/determinism.rs. Each suite reports its
# wall-clock so thread-scaling regressions are visible in the log.
set -euo pipefail
cd "$(dirname "$0")/.."

# Run "$@" (from the second argument on) and report the wall-clock
# seconds for the labelled suite (first argument).
timed() {
  local label=$1
  shift
  local start end
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  echo "-- ${label}: $((end - start))s"
}

echo "== cargo build --release =="
timed "build" cargo build --release --offline

echo "== cargo test (workspace, CROWDRL_THREADS=1) =="
timed "tests @1 thread" env CROWDRL_THREADS=1 cargo test -q --offline --workspace

echo "== cargo test (workspace, CROWDRL_THREADS=4) =="
timed "tests @4 threads" env CROWDRL_THREADS=4 cargo test -q --offline --workspace

echo "== traced run + crowdrl-trace smoke test =="
# The observability layer must produce a trace the analyzer can profile:
# run a small traced experiment and assert the phase profile is non-empty.
trace_smoke() {
  local tracefile
  tracefile=$(mktemp /tmp/crowdrl-trace.XXXXXX.jsonl)
  CROWDRL_TRACE="$tracefile" cargo run -q --release --offline --example trace_demo >/dev/null
  local profile
  profile=$(cargo run -q --release --offline -p crowdrl-bench --bin crowdrl-trace "$tracefile")
  echo "$profile" | head -n 6
  rm -f "$tracefile"
  if ! echo "$profile" | grep -q "workflow.run"; then
    echo "crowdrl-trace profile is missing workflow.run" >&2
    return 1
  fi
  if ! echo "$profile" | grep -q "serve.run"; then
    echo "crowdrl-trace profile is missing serve.run" >&2
    return 1
  fi
}
timed "trace smoke" trace_smoke

echo "== chaos demo + fault & recovery report smoke test =="
# The chaos layer end to end: a faulted, quarantined, checkpointed run
# is killed mid-flight, restored, and must match the uninterrupted run
# (the example asserts bit-identity itself); the analyzer must then
# surface the fault & recovery section from the trace.
chaos_smoke() {
  local tracefile
  tracefile=$(mktemp /tmp/crowdrl-chaos.XXXXXX.jsonl)
  CROWDRL_TRACE="$tracefile" cargo run -q --release --offline --example chaos_demo >/dev/null
  local report
  report=$(cargo run -q --release --offline -p crowdrl-bench --bin crowdrl-trace "$tracefile")
  rm -f "$tracefile"
  local needle
  for needle in "fault & recovery" "fault.injected.drift" "quarantine.entered" "checkpoint.write"; do
    if ! echo "$report" | grep -q "$needle"; then
      echo "crowdrl-trace report is missing '$needle'" >&2
      return 1
    fi
  done
  echo "$report" | sed -n '/fault & recovery/,/^$/p' | head -n 14
}
timed "chaos smoke" chaos_smoke

echo "== multi-project service smoke test =="
# The multi-tenant service end to end at a small scale: several projects
# over one shared pool, run in both execution modes (the demo asserts
# bit-identity itself); the analyzer must then surface the per-project
# phase profile grouped by tenant scope.
service_smoke() {
  local tracefile
  tracefile=$(mktemp /tmp/crowdrl-service.XXXXXX.jsonl)
  CROWDRL_TRACE="$tracefile" \
    SERVICE_DEMO_PROJECTS=3 SERVICE_DEMO_OBJECTS=60 SERVICE_DEMO_ANNOTATORS=40 \
    cargo run -q --release --offline --example service_demo >/dev/null
  local report
  report=$(cargo run -q --release --offline -p crowdrl-bench --bin crowdrl-trace "$tracefile")
  rm -f "$tracefile"
  local needle
  for needle in "per-project phase profile" "service.run" "project.2.serve.refresh"; do
    if ! echo "$report" | grep -q "$needle"; then
      echo "crowdrl-trace report is missing '$needle'" >&2
      return 1
    fi
  done
  echo "$report" | sed -n '/per-project phase profile/,/^$/p' | head -n 8
}
timed "service smoke" service_smoke

echo "== service chaos + checkpoint/restore smoke test =="
# Tenant-isolated fault containment end to end: a multi-project run
# with an injected shard panic, a project outage, and a shed admission
# is killed at a checkpoint and restored (the example asserts
# bit-identity itself); the analyzer must then surface the service-level
# fault & recovery counters from the trace.
service_chaos_smoke() {
  local tracefile
  tracefile=$(mktemp /tmp/crowdrl-service-chaos.XXXXXX.jsonl)
  CROWDRL_TRACE="$tracefile" \
    cargo run -q --release --offline --example service_chaos_demo >/dev/null
  local report
  report=$(cargo run -q --release --offline -p crowdrl-bench --bin crowdrl-trace "$tracefile")
  rm -f "$tracefile"
  local needle
  for needle in "fault & recovery" "service.checkpoint.write" \
    "service.project_failed" "admission.shed"; do
    if ! echo "$report" | grep -q "$needle"; then
      echo "crowdrl-trace report is missing '$needle'" >&2
      return 1
    fi
  done
  echo "$report" | sed -n '/fault & recovery/,/^$/p' | head -n 12
}
timed "service chaos smoke" service_chaos_smoke

echo "== decide pruning equivalence smoke test =="
# The decide-path pruning (cached annotator activations + exact
# shortlists with column dedup) must be invisible end to end: the same
# small service round in pruned and exhaustive mode must print the
# identical outcome — labels, accuracies, rounds, budgets, sim time.
# Only the wall-clock figures (the thing pruning is allowed to change)
# are stripped before diffing.
decide_smoke() {
  local out_pruned out_exhaustive
  out_pruned=$(SERVICE_DEMO_PROJECTS=3 SERVICE_DEMO_OBJECTS=60 \
    SERVICE_DEMO_ANNOTATORS=40 SERVICE_DEMO_DECIDE=pruned \
    cargo run -q --release --offline --example service_demo |
    sed -E 's/wall [0-9.]+s( \([0-9.]+x\))?//')
  out_exhaustive=$(SERVICE_DEMO_PROJECTS=3 SERVICE_DEMO_OBJECTS=60 \
    SERVICE_DEMO_ANNOTATORS=40 SERVICE_DEMO_DECIDE=exhaustive \
    cargo run -q --release --offline --example service_demo |
    sed -E 's/wall [0-9.]+s( \([0-9.]+x\))?//')
  if [[ "$out_pruned" != "$out_exhaustive" ]]; then
    echo "pruned vs exhaustive service outputs diverged:" >&2
    diff <(echo "$out_exhaustive") <(echo "$out_pruned") >&2 || true
    return 1
  fi
  echo "decide equivalence: pruned == exhaustive service outcome ✓"
}
timed "decide smoke" decide_smoke

echo "== crowdrl-trace --diff smoke test =="
# Two traced runs of the same deterministic workload must profile as
# equivalent: the diff gate (the tool CI uses to catch phase-time
# regressions between commits) must exit zero at a generous threshold.
# This also exercises the incremental engine's warm path end to end —
# the demo runs with the default (warm-started) config.
diff_smoke() {
  local trace_a trace_b
  trace_a=$(mktemp /tmp/crowdrl-diff-a.XXXXXX.jsonl)
  trace_b=$(mktemp /tmp/crowdrl-diff-b.XXXXXX.jsonl)
  CROWDRL_TRACE="$trace_a" cargo run -q --release --offline --example trace_demo >/dev/null
  CROWDRL_TRACE="$trace_b" cargo run -q --release --offline --example trace_demo >/dev/null
  cargo run -q --release --offline -p crowdrl-bench --bin crowdrl-trace -- \
    --diff "$trace_a" "$trace_b" --threshold 0.5 | tail -n 3
  rm -f "$trace_a" "$trace_b"
}
timed "diff smoke" diff_smoke

echo "== perf regression gate (serve events/s, SIMD matmul) =="
# Fail if fast-mode end-to-end events/s or SIMD matmul throughput has
# regressed >20% against the committed BENCH_serve.json /
# BENCH_hotpath.json. This container's wall clock is noisy (median
# swings of ±30% for an identical binary are routine), so the gate
# compares each fresh run's *best* figure against the committed
# *median* — best-of-run only fails to come within 20% of a typical
# committed run when the regression is real — and retries up to three
# bench runs before declaring one. The benches overwrite the committed
# JSONs in place; the gate restores them afterwards so CI never
# dirties the tree. DESIGN.md §14.5 documents the threshold choice.
perf_gate() {
  local saved_serve saved_hotpath
  saved_serve=$(mktemp /tmp/crowdrl-bench-serve.XXXXXX.json)
  saved_hotpath=$(mktemp /tmp/crowdrl-bench-hotpath.XXXXXX.json)
  cp BENCH_serve.json "$saved_serve"
  cp BENCH_hotpath.json "$saved_hotpath"

  # Committed (median-based) reference figures.
  local base_eps base_simd_ms
  base_eps=$(jq '[.end_to_end[] | select(.numeric == "fast")][0].events_per_sec' "$saved_serve")
  base_simd_ms=$(jq '.matmul.simd_ms' "$saved_hotpath")

  local attempt serve_ok=false simd_ok=false
  local best_eps=0 best_simd_ms=""
  for attempt in 1 2 3; do
    if [[ "$serve_ok" != true ]]; then
      cargo bench -q --offline -p crowdrl-bench --bench serve >/dev/null
      # Best throughput this run: events over the fastest cycle.
      local fresh_eps
      fresh_eps=$(jq '[.end_to_end[] | select(.numeric == "fast")][0]
                      | .events_processed / .min_ms * 1000' BENCH_serve.json)
      best_eps=$(jq -n --argjson a "$fresh_eps" --argjson b "$best_eps" \
        'if $a > $b then $a else $b end')
      if jq -en --argjson f "$best_eps" --argjson b "$base_eps" \
        '$f >= 0.8 * $b' >/dev/null; then
        serve_ok=true
      fi
    fi
    if [[ "$simd_ok" != true ]]; then
      cargo bench -q --offline -p crowdrl-bench --bench hotpath >/dev/null
      local fresh_simd_ms
      fresh_simd_ms=$(jq '.matmul.simd_ms' BENCH_hotpath.json)
      best_simd_ms=$(jq -n --argjson a "$fresh_simd_ms" \
        --argjson b "${best_simd_ms:-$fresh_simd_ms}" \
        'if $a < $b then $a else $b end')
      if jq -en --argjson f "$best_simd_ms" --argjson b "$base_simd_ms" \
        '$f <= 1.2 * $b' >/dev/null; then
        simd_ok=true
      fi
    fi
    if [[ "$serve_ok" == true && "$simd_ok" == true ]]; then break; fi
  done

  cp "$saved_serve" BENCH_serve.json
  cp "$saved_hotpath" BENCH_hotpath.json
  rm -f "$saved_serve" "$saved_hotpath"

  echo "serve fast events/s: best ${best_eps%.*} vs committed ${base_eps%.*} (floor: 80%)"
  echo "simd matmul: best ${best_simd_ms} ms vs committed ${base_simd_ms} ms (ceiling: 120%)"
  if [[ "$serve_ok" != true ]]; then
    echo "perf gate: fast-mode serve throughput regressed >20% vs committed BENCH_serve.json" >&2
    return 1
  fi
  if [[ "$simd_ok" != true ]]; then
    echo "perf gate: SIMD matmul regressed >20% vs committed BENCH_hotpath.json" >&2
    return 1
  fi
}
timed "perf gate" perf_gate

echo "== cargo fmt --check =="
timed "fmt" cargo fmt --check

echo "== cargo clippy -D warnings =="
timed "clippy" cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
