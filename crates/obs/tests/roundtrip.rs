//! JSONL round-trip: everything the recorder emits must parse back into
//! the same events, with span nesting, gauge steps, cumulative counters,
//! histogram snapshots and annotation key/values intact.
//!
//! The recorder is process-global, so this file keeps all its assertions
//! in one `#[test]` — parallel tests sharing the global would interleave
//! their events into one sink.

use crowdrl_obs as obs;
use crowdrl_obs::analyze::parse_trace;
use crowdrl_obs::Event;

#[test]
fn recorded_trace_round_trips_through_jsonl() {
    let sink = obs::BufferSink::new();
    obs::Recorder::to_writer(Box::new(sink.clone())).install();
    assert!(obs::enabled());

    {
        let _outer = obs::span("outer");
        {
            let _inner = obs::span("inner");
            obs::gauge_step("g.stepped", 3.0, 0.25);
            obs::gauge("g.plain", -1.5);
        }
        obs::counter_add("c.things", 2);
        obs::counter_add("c.things", 3);
        obs::histogram("h.sizes", 7.0);
        obs::histogram_seconds("h.wait_s", std::time::Duration::from_micros(1500));
        obs::annotate("note.plain", "hello \"quoted\" line\nsecond");
        obs::annotate_kv("note.kv", "with numbers", &[("a", 1.0), ("b", 2.5)]);
    }
    obs::shutdown();
    assert!(!obs::enabled());

    let text = sink.contents();
    let trace = parse_trace(&text).expect("trace parses");

    // Schema header first.
    assert!(matches!(trace.events[0], Event::Meta { version: 1 }));

    // Span nesting: `inner`'s parent is `outer`'s id, and both spans close.
    let mut outer_id = None;
    let mut inner_parent = None;
    let mut ends = 0;
    for e in &trace.events {
        match e {
            Event::SpanStart {
                id, parent, name, ..
            } => {
                if name == "outer" {
                    outer_id = Some(*id);
                } else if name == "inner" {
                    inner_parent = Some(*parent);
                }
            }
            Event::SpanEnd { .. } => ends += 1,
            _ => {}
        }
    }
    assert_eq!(inner_parent, Some(Some(outer_id.expect("outer started"))));
    assert_eq!(ends, 2);

    // Gauges keep value and (optional) semantic step.
    let stepped = trace.gauge_series("g.stepped");
    assert_eq!(stepped, vec![(Some(3.0), 0.25)]);
    let plain = trace.gauge_series("g.plain");
    assert_eq!(plain, vec![(None, -1.5)]);

    // Counters are cumulative: two adds surface as one snapshot of 5.
    let counters = trace.counters();
    assert!(counters.contains(&("c.things".to_string(), 5)));

    // Histogram snapshots carry count/sum/min/max and bucket counts.
    let hist = trace
        .histograms()
        .into_iter()
        .find_map(|e| match e {
            Event::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } if name == "h.sizes" => Some((*count, *sum, *min, *max, buckets.len())),
            _ => None,
        })
        .expect("h.sizes snapshot");
    assert_eq!(hist.0, 1);
    assert_eq!(hist.1, 7.0);
    assert_eq!(hist.2, 7.0);
    assert_eq!(hist.3, 7.0);
    assert!(hist.4 >= 1);
    let wait = trace
        .histograms()
        .into_iter()
        .find_map(|e| match e {
            Event::Histogram { name, sum, .. } if name == "h.wait_s" => Some(*sum),
            _ => None,
        })
        .expect("h.wait_s snapshot");
    assert!((wait - 0.0015).abs() < 1e-12);

    // Annotations survive escaping and keep their key/value pairs
    // (keys come back sorted — they travel as a JSON object).
    let mut saw_plain = false;
    let mut saw_kv = false;
    for e in trace.annotations() {
        if let Event::Annotation {
            name, message, kv, ..
        } = e
        {
            if name == "note.plain" {
                assert_eq!(message, "hello \"quoted\" line\nsecond");
                saw_plain = true;
            } else if name == "note.kv" {
                assert_eq!(kv, &vec![("a".to_string(), 1.0), ("b".to_string(), 2.5)]);
                saw_kv = true;
            }
        }
    }
    assert!(saw_plain && saw_kv);

    // And the whole trace re-serializes to the same lines it came from.
    let reserialized: String = trace.events.iter().map(|e| e.to_line() + "\n").collect();
    assert_eq!(reserialized, text);
}
