//! Trace reader and analysis: per-phase wall-time profile, semantic
//! curves (accuracy vs. budget), EM-convergence summaries, and two-trace
//! regression diffs. This module is the library behind the `crowdrl-trace`
//! binary so examples and tests can reuse the exact same reports.

use crate::event::Event;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader};

/// A parsed trace: events in file order.
#[derive(Debug, Default)]
pub struct Trace {
    /// Events in the order they appear in the file.
    pub events: Vec<Event>,
}

/// Read and parse a JSONL trace file.
pub fn read_trace(path: &str) -> std::io::Result<Trace> {
    let f = std::fs::File::open(path)?;
    let mut events = Vec::new();
    for (i, line) in BufReader::new(f).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let e = Event::parse_line(&line).map_err(|err| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{path}:{}: {err}", i + 1),
            )
        })?;
        events.push(e);
    }
    Ok(Trace { events })
}

/// Parse a trace from in-memory JSONL text (e.g. a test's [`crate::BufferSink`]).
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(Event::parse_line(line).map_err(|err| format!("line {}: {err}", i + 1))?);
    }
    Ok(Trace { events })
}

/// Aggregated wall-time statistics for one span name ("phase").
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub total_ns: u64,
    /// Total minus time spent in child spans, nanoseconds.
    pub self_ns: u64,
}

impl PhaseStat {
    /// Mean wall time per call, nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// One point of the accuracy-vs-budget curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Semantic step the samples were tagged with (iteration / refresh).
    pub step: f64,
    /// Fraction of budget spent at that step.
    pub budget_fraction: f64,
    /// Fraction of objects labelled at that step, if sampled.
    pub labelled_fraction: Option<f64>,
    /// Classifier accuracy on currently-labelled objects, if sampled.
    pub accuracy: Option<f64>,
}

/// Convergence summary for one EM family (`em.joint` or `em.ds`).
#[derive(Debug, Clone)]
pub struct EmSummary {
    /// Metric prefix, e.g. `em.joint`.
    pub prefix: String,
    /// Number of `infer` invocations observed.
    pub runs: u64,
    /// Mean iterations to converge across runs.
    pub mean_iters: f64,
    /// Largest iteration count of any run.
    pub max_iters: f64,
    /// Log-likelihood trajectory of the final run: `(iter, ll, delta)`.
    pub last_run: Vec<(f64, f64, f64)>,
}

/// A phase whose total time changed between two traces.
#[derive(Debug, Clone)]
pub struct PhaseDiff {
    /// Span name.
    pub name: String,
    /// Total nanoseconds in the baseline trace.
    pub total_a_ns: u64,
    /// Total nanoseconds in the new trace.
    pub total_b_ns: u64,
    /// `(b - a) / a`; infinity when the phase is new.
    pub ratio: f64,
    /// True when the change exceeds the regression threshold.
    pub regressed: bool,
}

impl Trace {
    /// Per-phase wall-time profile from the span tree, sorted by total
    /// time descending. Spans never closed (e.g. a truncated trace) are
    /// ignored; span ends without a start (recorder installed mid-span)
    /// likewise.
    pub fn profile(&self) -> Vec<PhaseStat> {
        struct Open {
            name: String,
            parent: Option<u64>,
            start_ns: u64,
            child_ns: u64,
        }
        let mut open: HashMap<u64, Open> = HashMap::new();
        let mut stats: HashMap<String, PhaseStat> = HashMap::new();
        for e in &self.events {
            match e {
                Event::SpanStart {
                    id,
                    parent,
                    name,
                    wall_ns,
                } => {
                    open.insert(
                        *id,
                        Open {
                            name: name.clone(),
                            parent: *parent,
                            start_ns: *wall_ns,
                            child_ns: 0,
                        },
                    );
                }
                Event::SpanEnd { id, wall_ns } => {
                    if let Some(o) = open.remove(id) {
                        let total = wall_ns.saturating_sub(o.start_ns);
                        if let Some(p) = o.parent.and_then(|pid| open.get_mut(&pid)) {
                            p.child_ns += total;
                        }
                        let s = stats.entry(o.name.clone()).or_insert_with(|| PhaseStat {
                            name: o.name.clone(),
                            calls: 0,
                            total_ns: 0,
                            self_ns: 0,
                        });
                        s.calls += 1;
                        s.total_ns += total;
                        s.self_ns += total.saturating_sub(o.child_ns);
                    }
                }
                _ => {}
            }
        }
        let mut out: Vec<PhaseStat> = stats.into_values().collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        out
    }

    /// The per-phase profile grouped by project scope. Multi-tenant
    /// service runs prefix every project-scoped metric and span with
    /// `project.<id>.`; this splits the flat profile into one
    /// sub-profile per project (names stripped of the prefix), sorted by
    /// project id. Unscoped phases are not included — use
    /// [`profile`](Self::profile) for the flat view.
    pub fn profile_by_project(&self) -> Vec<(usize, Vec<PhaseStat>)> {
        let mut by_project: HashMap<usize, Vec<PhaseStat>> = HashMap::new();
        for stat in self.profile() {
            if let Some((project, rest)) = split_project_scope(&stat.name) {
                by_project.entry(project).or_default().push(PhaseStat {
                    name: rest.to_owned(),
                    ..stat
                });
            }
        }
        let mut out: Vec<(usize, Vec<PhaseStat>)> = by_project.into_iter().collect();
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// All samples of a gauge, as `(step, value)` in file order.
    pub fn gauge_series(&self, name: &str) -> Vec<(Option<f64>, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Gauge {
                    name: n,
                    value,
                    step,
                    ..
                } if n == name => Some((*step, *value)),
                _ => None,
            })
            .collect()
    }

    /// Final cumulative counter values (last snapshot per name wins).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut map: HashMap<&str, u64> = HashMap::new();
        for e in &self.events {
            if let Event::Counter { name, value, .. } = e {
                map.insert(name, *value);
            }
        }
        let mut out: Vec<(String, u64)> = map.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        out.sort();
        out
    }

    /// Final histogram snapshots (last per name wins).
    pub fn histograms(&self) -> Vec<&Event> {
        let mut map: HashMap<&str, &Event> = HashMap::new();
        for e in &self.events {
            if let Event::Histogram { name, .. } = e {
                map.insert(name, e);
            }
        }
        let mut out: Vec<&Event> = map.into_values().collect();
        out.sort_by_key(|e| match e {
            Event::Histogram { name, .. } => name.clone(),
            _ => String::new(),
        });
        out
    }

    /// All annotation events, in order.
    pub fn annotations(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Annotation { .. }))
            .collect()
    }

    /// The accuracy-vs-budget curve, joining the `run.budget_spent_fraction`,
    /// `run.labelled_fraction` and `run.acc_on_labelled` gauges by step.
    /// Batch runs tag steps with the workflow iteration; async runs with the
    /// refresh index.
    pub fn accuracy_budget_curve(&self) -> Vec<CurvePoint> {
        let budget = self.gauge_series("run.budget_spent_fraction");
        let labelled = self.gauge_series("run.labelled_fraction");
        let acc = self.gauge_series("run.acc_on_labelled");
        let by_step = |series: &[(Option<f64>, f64)]| -> HashMap<u64, f64> {
            series
                .iter()
                .filter_map(|(s, v)| s.map(|s| (s.to_bits(), *v)))
                .collect()
        };
        let labelled = by_step(&labelled);
        let acc = by_step(&acc);
        let mut points: Vec<CurvePoint> = budget
            .into_iter()
            .filter_map(|(step, b)| {
                step.map(|s| CurvePoint {
                    step: s,
                    budget_fraction: b,
                    labelled_fraction: labelled.get(&s.to_bits()).copied(),
                    accuracy: acc.get(&s.to_bits()).copied(),
                })
            })
            .collect();
        points.sort_by(|a, b| a.step.total_cmp(&b.step));
        points
    }

    /// EM-convergence summaries for every family with recorded iterations.
    pub fn em_summaries(&self) -> Vec<EmSummary> {
        let mut out = Vec::new();
        for prefix in ["em.joint", "em.ds"] {
            let ll = self.gauge_series(&format!("{prefix}.ll"));
            let delta = self.gauge_series(&format!("{prefix}.delta"));
            if ll.is_empty() {
                continue;
            }
            let runs = self
                .counters()
                .iter()
                .find(|(n, _)| n == &format!("{prefix}.runs"))
                .map(|(_, v)| *v)
                .unwrap_or(0);
            let (mean_iters, max_iters) = self
                .histograms()
                .iter()
                .find_map(|e| match e {
                    Event::Histogram {
                        name,
                        count,
                        sum,
                        max,
                        ..
                    } if name == &format!("{prefix}.iters") && *count > 0 => {
                        Some((sum / *count as f64, *max))
                    }
                    _ => None,
                })
                .unwrap_or((0.0, 0.0));
            // The last run is the final maximal stretch of non-increasing
            // iteration tags.
            let mut start = 0;
            for i in 1..ll.len() {
                let prev = ll[i - 1].0.unwrap_or(0.0);
                let cur = ll[i].0.unwrap_or(0.0);
                if cur <= prev {
                    start = i;
                }
            }
            let last_run = ll[start..]
                .iter()
                .enumerate()
                .map(|(k, (step, v))| {
                    let d = delta.get(start + k).map(|(_, d)| *d).unwrap_or(f64::NAN);
                    (step.unwrap_or(k as f64), *v, d)
                })
                .collect();
            out.push(EmSummary {
                prefix: prefix.to_owned(),
                runs,
                mean_iters,
                max_iters,
                last_run,
            });
        }
        out
    }
}

/// Split a `project.<id>.`-scoped metric or span name into the project
/// id and the unscoped remainder; `None` for unscoped names.
pub fn split_project_scope(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("project.")?;
    let dot = rest.find('.')?;
    let id: usize = rest[..dot].parse().ok()?;
    let tail = &rest[dot + 1..];
    if tail.is_empty() {
        return None;
    }
    Some((id, tail))
}

/// Compare two profiles; a phase regresses when its total time grows by
/// more than `threshold` (fractional, e.g. 0.25 = +25%) *and* by more than
/// 1ms absolute (to avoid flagging noise on sub-millisecond phases).
pub fn diff_profiles(a: &[PhaseStat], b: &[PhaseStat], threshold: f64) -> Vec<PhaseDiff> {
    let a_by: HashMap<&str, &PhaseStat> = a.iter().map(|p| (p.name.as_str(), p)).collect();
    let b_by: HashMap<&str, &PhaseStat> = b.iter().map(|p| (p.name.as_str(), p)).collect();
    let mut names: Vec<&str> = a_by.keys().chain(b_by.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();
    let mut out = Vec::new();
    for name in names {
        let ta = a_by.get(name).map_or(0, |p| p.total_ns);
        let tb = b_by.get(name).map_or(0, |p| p.total_ns);
        let ratio = if ta == 0 {
            if tb == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (tb as f64 - ta as f64) / ta as f64
        };
        let regressed = ratio > threshold && tb.saturating_sub(ta) > 1_000_000;
        out.push(PhaseDiff {
            name: name.to_owned(),
            total_a_ns: ta,
            total_b_ns: tb,
            ratio,
            regressed,
        });
    }
    out.sort_by(|x, y| {
        y.regressed
            .cmp(&x.regressed)
            .then(y.ratio.total_cmp(&x.ratio))
    });
    out
}

/// Format nanoseconds with a human-friendly unit.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_secs(s: f64) -> String {
    fmt_ns((s * 1e9).max(0.0) as u64)
}

/// The full human-readable analyzer report for one trace.
pub fn report(trace: &Trace) -> String {
    let mut out = String::new();

    let profile = trace.profile();
    out.push_str("-- phase profile (wall time) --\n");
    if profile.is_empty() {
        out.push_str("(no completed spans)\n");
    } else {
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>12} {:>12}",
            "phase", "calls", "total", "self", "mean/call"
        );
        for p in &profile {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {:>12}",
                p.name,
                p.calls,
                fmt_ns(p.total_ns),
                fmt_ns(p.self_ns),
                fmt_ns(p.mean_ns())
            );
        }
    }

    // Multi-tenant service traces: the same profile, grouped per
    // project (spans carry a `project.<id>.` scope prefix).
    let by_project = trace.profile_by_project();
    if !by_project.is_empty() {
        out.push_str("\n-- per-project phase profile --\n");
        let _ = writeln!(
            out,
            "{:<9} {:<22} {:>7} {:>12} {:>12} {:>12}",
            "project", "phase", "calls", "total", "self", "mean/call"
        );
        for (project, stats) in &by_project {
            for p in stats {
                let _ = writeln!(
                    out,
                    "{:<9} {:<22} {:>7} {:>12} {:>12} {:>12}",
                    project,
                    p.name,
                    p.calls,
                    fmt_ns(p.total_ns),
                    fmt_ns(p.self_ns),
                    fmt_ns(p.mean_ns())
                );
            }
        }
    }

    let curve = trace.accuracy_budget_curve();
    if !curve.is_empty() {
        out.push_str("\n-- accuracy vs budget --\n");
        let _ = writeln!(
            out,
            "{:>8} {:>9} {:>10} {:>8}",
            "step", "budget%", "labelled%", "acc%"
        );
        for p in &curve {
            let pct = |o: Option<f64>| o.map_or("-".to_owned(), |v| format!("{:.1}", v * 100.0));
            let _ = writeln!(
                out,
                "{:>8} {:>9.1} {:>10} {:>8}",
                p.step,
                p.budget_fraction * 100.0,
                pct(p.labelled_fraction),
                pct(p.accuracy)
            );
        }
    }

    for em in trace.em_summaries() {
        let _ = writeln!(
            out,
            "\n-- EM convergence ({}) --\nruns {} · iterations mean {:.1} max {:.0}",
            em.prefix, em.runs, em.mean_iters, em.max_iters
        );
        if !em.last_run.is_empty() {
            out.push_str("last run (iter: log-likelihood, delta):\n");
            for (it, ll, d) in &em.last_run {
                let _ = writeln!(out, "  {it:>3.0}: {ll:>14.4}  Δ {d:.2e}");
            }
        }
    }

    let dqn = trace.gauge_series("dqn.loss");
    if !dqn.is_empty() {
        let n = dqn.len();
        let mean: f64 = dqn.iter().map(|(_, v)| v).sum::<f64>() / n as f64;
        let last = dqn[n - 1].1;
        let replay = trace
            .gauge_series("dqn.replay_size")
            .last()
            .map_or(0.0, |(_, v)| *v);
        let _ = writeln!(
            out,
            "\n-- DQN --\ntraining steps {n} · mean loss {mean:.4} · final loss {last:.4} · replay size {replay:.0}"
        );
    }

    // Fault injection & recovery: present only when the chaos layer or
    // the supervision machinery (retries, quarantine, checkpoints)
    // actually fired during the run.
    let recovery: Vec<(String, u64)> = trace
        .counters()
        .into_iter()
        .filter(|(name, _)| {
            name.starts_with("fault.injected.")
                || name == "retry.count"
                || name.starts_with("quarantine.")
                || name.starts_with("checkpoint.")
                || name.starts_with("service.checkpoint.")
                || name == "service.project_failed"
                || name.starts_with("admission.")
        })
        .collect();
    if !recovery.is_empty() {
        out.push_str("\n-- fault & recovery --\n");
        let injected: u64 = recovery
            .iter()
            .filter(|(n, _)| n.starts_with("fault.injected."))
            .map(|(_, v)| *v)
            .sum();
        if injected > 0 {
            let _ = writeln!(out, "faults injected              {injected}");
        }
        for (name, v) in &recovery {
            let _ = writeln!(out, "{name:<28} {v}");
        }
        for gauge in [
            "checkpoint.write_ns",
            "checkpoint.restore_ns",
            "service.checkpoint.write_ns",
            "service.checkpoint.restore_ns",
        ] {
            let series = trace.gauge_series(gauge);
            if series.is_empty() {
                continue;
            }
            let n = series.len();
            let mean = series.iter().map(|(_, v)| v).sum::<f64>() / n as f64;
            let max = series.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
            let _ = writeln!(
                out,
                "{:<28} mean {} · max {}",
                gauge,
                fmt_ns(mean as u64),
                fmt_ns(max as u64)
            );
        }
    }

    let hists = trace.histograms();
    if !hists.is_empty() {
        out.push_str("\n-- histograms --\n");
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "min", "max"
        );
        // Histogram values are unit-less; by convention duration
        // histograms come from `histogram_seconds` and live under the
        // `pool.` namespace or carry a `_s` suffix. Everything else
        // (iteration counts, sizes) prints as a plain number.
        let fmt_val = |name: &str, v: f64| -> String {
            if name.starts_with("pool.") || name.ends_with("_s") {
                fmt_secs(v)
            } else {
                format!("{v:.3}")
            }
        };
        for e in hists {
            if let Event::Histogram {
                name,
                count,
                sum,
                min,
                max,
                ..
            } = e
            {
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                let _ = writeln!(
                    out,
                    "{:<28} {:>9} {:>10} {:>10} {:>10}",
                    name,
                    count,
                    fmt_val(name, mean),
                    fmt_val(name, *min),
                    fmt_val(name, *max)
                );
            }
        }
    }

    let counters = trace.counters();
    if !counters.is_empty() {
        out.push_str("\n-- counters --\n");
        for (name, v) in counters {
            let _ = writeln!(out, "{name:<28} {v}");
        }
    }

    let notes = trace.annotations();
    if !notes.is_empty() {
        out.push_str("\n-- annotations --\n");
        // Surface the slowest eval seeds first, then everything else in order.
        let mut seeds: Vec<(&str, f64)> = Vec::new();
        for e in &notes {
            if let Event::Annotation {
                name, message, kv, ..
            } = e
            {
                if name == "eval.seed" {
                    let wall = kv
                        .iter()
                        .find(|(k, _)| k == "wall_s")
                        .map_or(0.0, |(_, v)| *v);
                    seeds.push((message, wall));
                }
            }
        }
        if !seeds.is_empty() {
            seeds.sort_by(|a, b| b.1.total_cmp(&a.1));
            let _ = writeln!(out, "slowest eval seeds (of {}):", seeds.len());
            for (msg, wall) in seeds.iter().take(5) {
                let _ = writeln!(out, "  {} ({})", msg, fmt_secs(*wall));
            }
        }
        for e in notes {
            if let Event::Annotation { name, message, .. } = e {
                if name != "eval.seed" {
                    let _ = writeln!(out, "[{name}] {message}");
                }
            }
        }
    }

    out
}

/// Human-readable diff report; returns the text and whether any phase
/// regressed beyond the threshold.
pub fn diff_report(a: &Trace, b: &Trace, threshold: f64) -> (String, bool) {
    let diffs = diff_profiles(&a.profile(), &b.profile(), threshold);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- phase diff (threshold +{:.0}%) --",
        threshold * 100.0
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>9}",
        "phase", "baseline", "new", "change"
    );
    let mut any = false;
    for d in &diffs {
        let change = if d.ratio.is_infinite() {
            "new".to_owned()
        } else {
            format!("{:+.1}%", d.ratio * 100.0)
        };
        let flag = if d.regressed {
            any = true;
            "  << REGRESSED"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>9}{}",
            d.name,
            fmt_ns(d.total_a_ns),
            fmt_ns(d.total_b_ns),
            change,
            flag
        );
    }
    (out, any)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: &str) -> Event {
        Event::parse_line(line).unwrap()
    }

    #[test]
    fn profile_computes_self_and_total() {
        let trace = Trace {
            events: vec![
                ev(r#"{"t":"ss","id":1,"n":"run","w":0}"#),
                ev(r#"{"t":"ss","id":2,"p":1,"n":"inner","w":100}"#),
                ev(r#"{"t":"se","id":2,"w":400}"#),
                ev(r#"{"t":"ss","id":3,"p":1,"n":"inner","w":500}"#),
                ev(r#"{"t":"se","id":3,"w":600}"#),
                ev(r#"{"t":"se","id":1,"w":1000}"#),
            ],
        };
        let profile = trace.profile();
        assert_eq!(profile.len(), 2);
        let run = profile.iter().find(|p| p.name == "run").unwrap();
        assert_eq!((run.calls, run.total_ns, run.self_ns), (1, 1000, 600));
        let inner = profile.iter().find(|p| p.name == "inner").unwrap();
        assert_eq!((inner.calls, inner.total_ns, inner.self_ns), (2, 400, 400));
        assert_eq!(inner.mean_ns(), 200);
    }

    #[test]
    fn curve_joins_gauges_by_step() {
        let trace = Trace {
            events: vec![
                ev(r#"{"t":"g","n":"run.budget_spent_fraction","v":0.1,"w":1,"s":0}"#),
                ev(r#"{"t":"g","n":"run.acc_on_labelled","v":0.7,"w":2,"s":0}"#),
                ev(r#"{"t":"g","n":"run.budget_spent_fraction","v":0.3,"w":3,"s":1}"#),
            ],
        };
        let curve = trace.accuracy_budget_curve();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].accuracy, Some(0.7));
        assert_eq!(curve[1].accuracy, None);
        assert_eq!(curve[1].budget_fraction, 0.3);
    }

    #[test]
    fn diff_flags_large_regressions_only() {
        let a = vec![PhaseStat {
            name: "hot".into(),
            calls: 1,
            total_ns: 10_000_000,
            self_ns: 10_000_000,
        }];
        let b = vec![PhaseStat {
            name: "hot".into(),
            calls: 1,
            total_ns: 20_000_000,
            self_ns: 20_000_000,
        }];
        let d = diff_profiles(&a, &b, 0.25);
        assert!(d[0].regressed);
        // Same growth ratio but under the 1ms absolute floor: not flagged.
        let a2 = vec![PhaseStat {
            name: "tiny".into(),
            calls: 1,
            total_ns: 1000,
            self_ns: 1000,
        }];
        let b2 = vec![PhaseStat {
            name: "tiny".into(),
            calls: 1,
            total_ns: 2000,
            self_ns: 2000,
        }];
        let d2 = diff_profiles(&a2, &b2, 0.25);
        assert!(!d2[0].regressed);
    }

    #[test]
    fn profile_groups_by_project_scope() {
        let trace = Trace {
            events: vec![
                ev(r#"{"t":"ss","id":1,"n":"service.run","w":0}"#),
                ev(r#"{"t":"ss","id":2,"p":1,"n":"project.0.serve.refresh","w":100}"#),
                ev(r#"{"t":"se","id":2,"w":300}"#),
                ev(r#"{"t":"ss","id":3,"p":1,"n":"project.7.serve.refresh","w":300}"#),
                ev(r#"{"t":"se","id":3,"w":900}"#),
                ev(r#"{"t":"se","id":1,"w":1000}"#),
            ],
        };
        let grouped = trace.profile_by_project();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, 0);
        assert_eq!(grouped[0].1[0].name, "serve.refresh");
        assert_eq!(grouped[0].1[0].total_ns, 200);
        assert_eq!(grouped[1].0, 7);
        assert_eq!(grouped[1].1[0].total_ns, 600);
        // The unscoped service.run span stays out of the grouping.
        assert!(grouped
            .iter()
            .all(|(_, s)| s.iter().all(|p| p.name != "service.run")));
        let text = report(&trace);
        assert!(text.contains("per-project phase profile"));
    }

    #[test]
    fn project_scope_parser_rejects_non_project_names() {
        assert_eq!(
            split_project_scope("project.3.serve.refresh"),
            Some((3, "serve.refresh"))
        );
        assert_eq!(split_project_scope("serve.refresh"), None);
        assert_eq!(split_project_scope("project.x.run"), None);
        assert_eq!(split_project_scope("project.3."), None);
    }

    #[test]
    fn counters_keep_last_snapshot() {
        let trace = Trace {
            events: vec![
                ev(r#"{"t":"c","n":"x","v":3,"w":1}"#),
                ev(r#"{"t":"c","n":"x","v":9,"w":2}"#),
            ],
        };
        assert_eq!(trace.counters(), vec![("x".to_owned(), 9)]);
    }
}
