//! Minimal JSON support: string escaping for the trace writer and a small
//! recursive-descent parser for the analyzer's reader.
//!
//! The trace schema only needs objects, arrays, strings, finite numbers,
//! booleans and null, so this stays deliberately tiny instead of pulling in
//! a serialization framework (the workspace has a zero-external-dependency
//! policy for this crate).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; trace integers stay exact below
    /// 2^53, far beyond any id or count we emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an unsigned integer, if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Render this value as a compact JSON document that [`parse`] reads
    /// back identically. Object keys emit in `BTreeMap` order, so the
    /// rendering is deterministic — the checkpoint layer relies on this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Append `v` to `out` as compact JSON. Non-finite numbers follow
/// [`write_num`]'s conventions (NaN → `null`, infinities clamped).
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Append `s` to `out` as a JSON string literal (including the quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a finite `f64` so it round-trips through [`parse`].
///
/// Rust's shortest-representation `{}` formatting already guarantees
/// round-tripping for finite values; non-finite values (which JSON cannot
/// express) are clamped to `null`-safe sentinels by the caller and never
/// reach here in practice, but we defend anyway.
pub fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("null");
    } else if v > 0.0 {
        out.push_str("1e308");
    } else {
        out.push_str("-1e308");
    }
}

/// Parse a complete JSON document from `text`.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8 in string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode é";
        let mut line = String::from("{\"s\":");
        write_escaped(&mut line, nasty);
        line.push('}');
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_round_trip() {
        for x in [0.0, -1.5, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_num(&mut s, x);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn render_round_trips_nested_values() {
        let doc = r#"{"a":[1,2.5,-300],"b":{"c":"x\ny","d":true,"e":null},"z":[]}"#;
        let v = parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        // Deterministic: rendering twice gives identical bytes.
        assert_eq!(rendered, v.render());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }
}
