//! The trace event schema: one JSON object per line.
//!
//! | `"t"`  | event            | fields                                            |
//! |--------|------------------|---------------------------------------------------|
//! | `meta` | trace header     | `v` schema version                                |
//! | `ss`   | span start       | `id`, `p` (parent id, absent for roots), `n` name, `w` wall ns |
//! | `se`   | span end         | `id`, `w` wall ns                                 |
//! | `g`    | gauge sample     | `n` name, `v` value, `w` wall ns, `s` step (optional) |
//! | `c`    | counter snapshot | `n` name, `v` cumulative count, `w` wall ns       |
//! | `h`    | histogram snapshot | `n` name, `count`, `sum`, `min`, `max`, `b` `[[upper_bound, count], ...]` |
//! | `a`    | annotation       | `n` name, `m` message, `w` wall ns, `kv` numeric pairs |
//!
//! Wall time (`w`) is nanoseconds since the recorder was installed — the
//! profiling clock. The optional step (`s`) is the semantic clock: an
//! iteration index, EM iteration, DQN training step, or a `SimTime` reading
//! converted with `as_f64()`. Counter and histogram snapshots are
//! *cumulative*: the analyzer keeps the last snapshot per name, so
//! checkpointing several times during a run is harmless.

use crate::json::{self, Value};
use std::fmt::Write as _;

/// Current schema version, written in the `meta` header line.
pub const SCHEMA_VERSION: u64 = 1;

/// One line of a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Trace header.
    Meta {
        /// Schema version.
        version: u64,
    },
    /// A span was entered.
    SpanStart {
        /// Unique span id (process-wide, monotonically assigned).
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name, e.g. `workflow.inference`.
        name: String,
        /// Wall clock, nanoseconds since recorder install.
        wall_ns: u64,
    },
    /// A span was exited.
    SpanEnd {
        /// Id from the matching [`Event::SpanStart`].
        id: u64,
        /// Wall clock, nanoseconds since recorder install.
        wall_ns: u64,
    },
    /// A point-in-time sample of a named value.
    Gauge {
        /// Metric name, e.g. `run.acc_on_labelled`.
        name: String,
        /// Sampled value.
        value: f64,
        /// Wall clock, nanoseconds since recorder install.
        wall_ns: u64,
        /// Semantic clock: iteration / training step / simulated time.
        step: Option<f64>,
    },
    /// Cumulative counter snapshot.
    Counter {
        /// Counter name, e.g. `em.joint.runs`.
        name: String,
        /// Total since recorder install.
        value: u64,
        /// Wall clock, nanoseconds since recorder install.
        wall_ns: u64,
    },
    /// Cumulative fixed-bucket histogram snapshot.
    Histogram {
        /// Histogram name, e.g. `pool.execute.matmul`.
        name: String,
        /// Number of recorded samples.
        count: u64,
        /// Sum of recorded samples.
        sum: f64,
        /// Smallest recorded sample.
        min: f64,
        /// Largest recorded sample.
        max: f64,
        /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
        buckets: Vec<(f64, u64)>,
    },
    /// A run-level fact, e.g. "enrichment added 37 labels at budget 0.42".
    Annotation {
        /// Annotation channel, e.g. `workflow.enrichment`.
        name: String,
        /// Human-readable message.
        message: String,
        /// Wall clock, nanoseconds since recorder install.
        wall_ns: u64,
        /// Numeric key/value pairs for machine consumption.
        kv: Vec<(String, f64)>,
    },
}

impl Event {
    /// Serialize to a single JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            Event::Meta { version } => {
                let _ = write!(s, "{{\"t\":\"meta\",\"v\":{version}}}");
            }
            Event::SpanStart {
                id,
                parent,
                name,
                wall_ns,
            } => {
                let _ = write!(s, "{{\"t\":\"ss\",\"id\":{id}");
                if let Some(p) = parent {
                    let _ = write!(s, ",\"p\":{p}");
                }
                s.push_str(",\"n\":");
                json::write_escaped(&mut s, name);
                let _ = write!(s, ",\"w\":{wall_ns}}}");
            }
            Event::SpanEnd { id, wall_ns } => {
                let _ = write!(s, "{{\"t\":\"se\",\"id\":{id},\"w\":{wall_ns}}}");
            }
            Event::Gauge {
                name,
                value,
                wall_ns,
                step,
            } => {
                s.push_str("{\"t\":\"g\",\"n\":");
                json::write_escaped(&mut s, name);
                s.push_str(",\"v\":");
                json::write_num(&mut s, *value);
                let _ = write!(s, ",\"w\":{wall_ns}");
                if let Some(st) = step {
                    s.push_str(",\"s\":");
                    json::write_num(&mut s, *st);
                }
                s.push('}');
            }
            Event::Counter {
                name,
                value,
                wall_ns,
            } => {
                s.push_str("{\"t\":\"c\",\"n\":");
                json::write_escaped(&mut s, name);
                let _ = write!(s, ",\"v\":{value},\"w\":{wall_ns}}}");
            }
            Event::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } => {
                s.push_str("{\"t\":\"h\",\"n\":");
                json::write_escaped(&mut s, name);
                let _ = write!(s, ",\"count\":{count},\"sum\":");
                json::write_num(&mut s, *sum);
                s.push_str(",\"min\":");
                json::write_num(&mut s, *min);
                s.push_str(",\"max\":");
                json::write_num(&mut s, *max);
                s.push_str(",\"b\":[");
                for (i, (bound, n)) in buckets.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    json::write_num(&mut s, *bound);
                    let _ = write!(s, ",{n}]");
                }
                s.push_str("]}");
            }
            Event::Annotation {
                name,
                message,
                wall_ns,
                kv,
            } => {
                s.push_str("{\"t\":\"a\",\"n\":");
                json::write_escaped(&mut s, name);
                s.push_str(",\"m\":");
                json::write_escaped(&mut s, message);
                let _ = write!(s, ",\"w\":{wall_ns}");
                if !kv.is_empty() {
                    s.push_str(",\"kv\":{");
                    for (i, (k, v)) in kv.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        json::write_escaped(&mut s, k);
                        s.push(':');
                        json::write_num(&mut s, *v);
                    }
                    s.push('}');
                }
                s.push('}');
            }
        }
        s
    }

    /// Parse one JSON line back into an event.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let v = json::parse(line)?;
        let tag = v
            .get("t")
            .and_then(Value::as_str)
            .ok_or("missing \"t\" tag")?;
        let name = |v: &Value| -> Result<String, String> {
            v.get("n")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| "missing \"n\"".into())
        };
        let wall = |v: &Value| v.get("w").and_then(Value::as_u64).unwrap_or(0);
        match tag {
            "meta" => Ok(Event::Meta {
                version: v.get("v").and_then(Value::as_u64).unwrap_or(0),
            }),
            "ss" => Ok(Event::SpanStart {
                id: v.get("id").and_then(Value::as_u64).ok_or("ss: no id")?,
                parent: v.get("p").and_then(Value::as_u64),
                name: name(&v)?,
                wall_ns: wall(&v),
            }),
            "se" => Ok(Event::SpanEnd {
                id: v.get("id").and_then(Value::as_u64).ok_or("se: no id")?,
                wall_ns: wall(&v),
            }),
            "g" => Ok(Event::Gauge {
                name: name(&v)?,
                value: v.get("v").and_then(Value::as_f64).ok_or("g: no v")?,
                wall_ns: wall(&v),
                step: v.get("s").and_then(Value::as_f64),
            }),
            "c" => Ok(Event::Counter {
                name: name(&v)?,
                value: v.get("v").and_then(Value::as_u64).ok_or("c: no v")?,
                wall_ns: wall(&v),
            }),
            "h" => {
                let mut buckets = Vec::new();
                if let Some(arr) = v.get("b").and_then(Value::as_arr) {
                    for pair in arr {
                        let pair = pair.as_arr().ok_or("h: bad bucket")?;
                        if pair.len() != 2 {
                            return Err("h: bucket is not a pair".into());
                        }
                        buckets.push((
                            pair[0].as_f64().ok_or("h: bad bound")?,
                            pair[1].as_u64().ok_or("h: bad count")?,
                        ));
                    }
                }
                Ok(Event::Histogram {
                    name: name(&v)?,
                    count: v.get("count").and_then(Value::as_u64).unwrap_or(0),
                    sum: v.get("sum").and_then(Value::as_f64).unwrap_or(0.0),
                    min: v.get("min").and_then(Value::as_f64).unwrap_or(0.0),
                    max: v.get("max").and_then(Value::as_f64).unwrap_or(0.0),
                    buckets,
                })
            }
            "a" => {
                let mut kv = Vec::new();
                if let Some(Value::Obj(m)) = v.get("kv") {
                    for (k, val) in m {
                        kv.push((k.clone(), val.as_f64().ok_or("a: non-numeric kv")?));
                    }
                }
                Ok(Event::Annotation {
                    name: name(&v)?,
                    message: v
                        .get("m")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                    wall_ns: wall(&v),
                    kv,
                })
            }
            other => Err(format!("unknown event tag {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            Event::Meta {
                version: SCHEMA_VERSION,
            },
            Event::SpanStart {
                id: 7,
                parent: Some(3),
                name: "workflow.iter".into(),
                wall_ns: 1234,
            },
            Event::SpanStart {
                id: 3,
                parent: None,
                name: "workflow.run".into(),
                wall_ns: 50,
            },
            Event::SpanEnd {
                id: 7,
                wall_ns: 9999,
            },
            Event::Gauge {
                name: "run.acc".into(),
                value: 0.875,
                wall_ns: 42,
                step: Some(3.0),
            },
            Event::Gauge {
                name: "run.loss".into(),
                value: -1.5e-3,
                wall_ns: 43,
                step: None,
            },
            Event::Counter {
                name: "em.runs".into(),
                value: 12,
                wall_ns: 100,
            },
            Event::Histogram {
                name: "pool.execute.matmul".into(),
                count: 3,
                sum: 0.0075,
                min: 0.001,
                max: 0.005,
                buckets: vec![(0.001, 1), (0.002, 1), (0.005, 1)],
            },
            Event::Annotation {
                name: "workflow.enrichment".into(),
                message: "added 37 \"labels\" at budget 0.42".into(),
                wall_ns: 77,
                kv: vec![("added".into(), 37.0), ("budget".into(), 0.42)],
            },
        ];
        for e in events {
            let line = e.to_line();
            let back = Event::parse_line(&line).unwrap_or_else(|err| {
                panic!("failed to parse {line:?}: {err}");
            });
            assert_eq!(back, e, "line was {line:?}");
        }
    }
}
