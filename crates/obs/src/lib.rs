//! # crowdrl-obs — structured tracing and metrics
//!
//! A zero-external-dependency observability layer for the crowdrl stack.
//! It records four kinds of signal into a JSONL trace file (one event per
//! line):
//!
//! * **spans** — named enter/exit pairs with nested parent ids, used for
//!   per-phase wall-time profiling;
//! * **gauges** — point-in-time samples of a value, optionally tagged with a
//!   *step* (iteration index, EM iteration, training step, or simulated
//!   time), so semantic curves like accuracy-vs-budget survive alongside
//!   wall-clock data;
//! * **counters** and **fixed-bucket histograms** — aggregated in-process
//!   and emitted as snapshots, cheap enough for hot paths like the worker
//!   pool;
//! * **annotations** — run-level facts ("enrichment added 37 labels at
//!   budget 0.42") with optional numeric key/values.
//!
//! ## Two clocks
//!
//! Every emitted event carries monotonic wall time (nanoseconds since the
//! recorder was installed) for profiling. Events that describe *semantic*
//! progress additionally carry a step value — an iteration index or a
//! simulated-time reading — because wall time means nothing for curves like
//! accuracy-vs-budget. The two clocks never mix: wall time exists only in
//! trace output and is never fed back into any computation, which is what
//! keeps golden-trace and determinism tests byte-identical whether or not a
//! recorder is installed.
//!
//! ## Usage
//!
//! ```
//! use crowdrl_obs as obs;
//!
//! let sink = obs::BufferSink::new();
//! obs::Recorder::to_writer(Box::new(sink.clone())).install();
//! {
//!     let _run = obs::span("demo.run");
//!     obs::gauge_step("demo.acc", 0.0, 0.5);
//!     obs::counter_add("demo.events", 3);
//! }
//! obs::shutdown();
//! let trace = obs::analyze::parse_trace(&sink.contents()).unwrap();
//! assert!(!trace.events.is_empty());
//! ```
//!
//! When no recorder is installed (or `Recorder::disabled()` was installed),
//! every recording call is a single relaxed atomic load plus a branch.
//! `init_from_env()` installs a file recorder when the `CROWDRL_TRACE`
//! environment variable names a path; the long-running entry points
//! (`CrowdRl::run`, `AsyncRuntime::run`, `ExperimentGrid::run`) call it for
//! you.

pub mod analyze;
pub mod event;
pub mod json;
mod recorder;

pub use event::Event;
pub use recorder::{
    annotate, annotate_kv, checkpoint, counter_add, enabled, flush, gauge, gauge_step, histogram,
    histogram_seconds, init_from_env, shutdown, span, BufferSink, Recorder, SpanGuard,
};
