//! The global recorder: a branch-cheap front door for spans, gauges,
//! counters and histograms, writing JSONL events to an installed sink.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** With no recorder installed (or
//!    [`Recorder::disabled`] installed) every recording function is one
//!    relaxed atomic load and a branch — no allocation, no lock, no clock
//!    read. This is what lets instrumentation live permanently in hot paths
//!    like the worker pool.
//! 2. **Recording never feeds back.** The recorder only *reads* values
//!    handed to it; wall-clock readings exist solely in trace output. An
//!    enabled run must produce bit-identical experiment results to a
//!    disabled one (pinned by `tests/determinism.rs`).
//! 3. **Cheap aggregation for hot signals.** Counters and histograms
//!    accumulate in-process and are written only at [`checkpoint`] /
//!    [`shutdown`], so a million pool chunks cost a map update each, not a
//!    line of I/O each.

use crate::event::{Event, SCHEMA_VERSION};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

/// Fast "is anything recording?" flag; the only cost on the disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink plus in-process aggregates.
static GLOBAL: Mutex<Option<Inner>> = Mutex::new(None);

/// Process-wide span id allocator (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// One-shot guard for [`init_from_env`].
static ENV_INIT: Once = Once::new();

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of the
    /// next span started here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct Inner {
    start: Instant,
    sink: Box<dyn Write + Send>,
    counters: HashMap<String, u64>,
    hists: HashMap<String, Hist>,
}

impl Inner {
    fn wall_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn write_event(&mut self, e: &Event) {
        let mut line = e.to_line();
        line.push('\n');
        // I/O errors must never take down an experiment; drop the line.
        let _ = self.sink.write_all(line.as_bytes());
    }

    /// Write cumulative counter/histogram snapshots and flush the sink.
    fn checkpoint(&mut self) {
        let wall_ns = self.wall_ns();
        let mut counters: Vec<(String, u64)> =
            self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        counters.sort();
        for (name, value) in counters {
            self.write_event(&Event::Counter {
                name,
                value,
                wall_ns,
            });
        }
        let mut hists: Vec<(String, Hist)> = self
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in hists {
            self.write_event(&h.snapshot(name));
        }
        let _ = self.sink.flush();
    }
}

/// Inclusive upper bounds for every histogram: a 1–2–5 series spanning
/// 1e-9 .. 1e9, fixed so any two traces bucket identically and snapshots
/// can be diffed. Values above the last bound land in an overflow bucket.
fn bucket_bounds() -> &'static [f64] {
    static BOUNDS: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = Vec::with_capacity(19 * 3);
        for exp in -9i32..=9 {
            for mant in [1.0, 2.0, 5.0] {
                b.push(mant * 10f64.powi(exp));
            }
        }
        b
    })
}

#[derive(Clone)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// One slot per bound plus a final overflow slot.
    buckets: Vec<u64>,
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; bucket_bounds().len() + 1],
        }
    }

    fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bounds = bucket_bounds();
        let idx = bounds.partition_point(|&b| b < v);
        self.buckets[idx] += 1;
    }

    fn snapshot(&self, name: String) -> Event {
        let bounds = bucket_bounds();
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bounds.get(i).copied().unwrap_or(f64::MAX), n))
            .collect();
        Event::Histogram {
            name,
            count: self.count,
            sum: self.sum,
            min: if self.count > 0 { self.min } else { 0.0 },
            max: if self.count > 0 { self.max } else { 0.0 },
            buckets,
        }
    }
}

/// A configured (but not yet installed) trace recorder.
///
/// `Recorder::disabled()` is the no-op variant: installing it keeps all
/// recording functions on their single-branch fast path. The other
/// constructors attach a JSONL sink; call [`Recorder::install`] to make it
/// the process-global recorder.
pub struct Recorder {
    sink: Option<Box<dyn Write + Send>>,
}

impl Recorder {
    /// A recorder that records nothing; its overhead is a branch.
    pub fn disabled() -> Self {
        Recorder { sink: None }
    }

    /// Record to a JSONL file at `path` (created/truncated).
    pub fn to_file(path: &str) -> io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Recorder {
            sink: Some(Box::new(BufWriter::new(f))),
        })
    }

    /// Record to an arbitrary writer (e.g. a [`BufferSink`] in tests).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        Recorder { sink: Some(w) }
    }

    /// Build from the `CROWDRL_TRACE` environment variable: a file recorder
    /// when it names a path, [`Recorder::disabled`] otherwise.
    pub fn from_env() -> io::Result<Self> {
        match std::env::var("CROWDRL_TRACE") {
            Ok(path) if !path.trim().is_empty() => Recorder::to_file(path.trim()),
            _ => Ok(Recorder::disabled()),
        }
    }

    /// Whether this recorder will actually record once installed.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Install as the process-global recorder, replacing (and
    /// checkpointing) any previous one.
    pub fn install(self) {
        let mut guard = GLOBAL.lock().unwrap();
        if let Some(prev) = guard.as_mut() {
            prev.checkpoint();
        }
        match self.sink {
            Some(sink) => {
                let mut inner = Inner {
                    start: Instant::now(),
                    sink,
                    counters: HashMap::new(),
                    hists: HashMap::new(),
                };
                inner.write_event(&Event::Meta {
                    version: SCHEMA_VERSION,
                });
                *guard = Some(inner);
                ENABLED.store(true, Ordering::Relaxed);
            }
            None => {
                *guard = None;
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    }
}

/// Install a file recorder if `CROWDRL_TRACE` names a path and no recorder
/// is active yet. Idempotent and cheap; the long-running entry points call
/// this so `CROWDRL_TRACE=run.jsonl cargo run ...` "just works".
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        if enabled() {
            return;
        }
        match Recorder::from_env() {
            Ok(r) => {
                if r.is_enabled() {
                    r.install();
                }
            }
            Err(e) => eprintln!("crowdrl-obs: cannot open CROWDRL_TRACE file: {e}"),
        }
    });
}

/// Is a recording sink installed? The disabled-path cost of every
/// recording function is exactly this check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_inner(f: impl FnOnce(&mut Inner)) {
    if let Ok(mut guard) = GLOBAL.lock() {
        if let Some(inner) = guard.as_mut() {
            f(inner);
        }
    }
}

/// Write counter/histogram snapshots and flush buffered lines to the sink.
///
/// Call at natural barriers (end of a run); snapshots are cumulative so
/// repeated checkpoints are harmless — the analyzer keeps the last one.
pub fn checkpoint() {
    if !enabled() {
        return;
    }
    with_inner(Inner::checkpoint);
}

/// Flush buffered trace lines without writing snapshots.
pub fn flush() {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        let _ = inner.sink.flush();
    });
}

/// Checkpoint, flush, and uninstall the recorder (back to disabled).
pub fn shutdown() {
    let mut guard = GLOBAL.lock().unwrap();
    if let Some(inner) = guard.as_mut() {
        inner.checkpoint();
    }
    *guard = None;
    ENABLED.store(false, Ordering::Relaxed);
}

/// RAII guard for an open span; emits the end event on drop.
///
/// Returned by [`span`]. When recording is disabled the guard is inert
/// (id 0) and drop does nothing.
pub struct SpanGuard {
    id: u64,
}

/// Enter a named span. Nesting is tracked per thread: the innermost open
/// span on this thread becomes the parent.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0 };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    with_inner(|inner| {
        let wall_ns = inner.wall_ns();
        inner.write_event(&Event::SpanStart {
            id,
            parent,
            name: name.to_owned(),
            wall_ns,
        });
    });
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard { id }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                // Out-of-order drop (shouldn't happen with lexical guards,
                // but don't corrupt the stack if it does).
                stack.retain(|&x| x != self.id);
            }
        });
        if enabled() {
            with_inner(|inner| {
                let wall_ns = inner.wall_ns();
                inner.write_event(&Event::SpanEnd {
                    id: self.id,
                    wall_ns,
                });
            });
        }
    }
}

/// Sample a gauge on the wall clock only.
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        let wall_ns = inner.wall_ns();
        inner.write_event(&Event::Gauge {
            name: name.to_owned(),
            value,
            wall_ns,
            step: None,
        });
    });
}

/// Sample a gauge tagged with a semantic step (iteration index, training
/// step, or simulated time) in addition to the wall clock.
pub fn gauge_step(name: &str, step: f64, value: f64) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        let wall_ns = inner.wall_ns();
        inner.write_event(&Event::Gauge {
            name: name.to_owned(),
            value,
            wall_ns,
            step: Some(step),
        });
    });
}

/// Add `delta` to a named cumulative counter (written at checkpoints).
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        if let Some(c) = inner.counters.get_mut(name) {
            *c += delta;
        } else {
            inner.counters.insert(name.to_owned(), delta);
        }
    });
}

/// Record `value` into a named fixed-bucket histogram (written at
/// checkpoints). Unit-agnostic; durations use seconds by convention.
pub fn histogram(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        if let Some(h) = inner.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Hist::new();
            h.record(value);
            inner.hists.insert(name.to_owned(), h);
        }
    });
}

/// Record a duration into a histogram, in seconds.
pub fn histogram_seconds(name: &str, d: std::time::Duration) {
    if !enabled() {
        return;
    }
    histogram(name, d.as_secs_f64());
}

/// Emit a run-level annotation.
pub fn annotate(name: &str, message: &str) {
    annotate_kv(name, message, &[]);
}

/// Emit a run-level annotation with numeric key/value pairs.
pub fn annotate_kv(name: &str, message: &str, kv: &[(&str, f64)]) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        let wall_ns = inner.wall_ns();
        inner.write_event(&Event::Annotation {
            name: name.to_owned(),
            message: message.to_owned(),
            wall_ns,
            kv: kv.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        });
    });
}

/// A `Write` sink backed by a shared in-memory buffer, for tests and the
/// round-trip suite. Clones share the same buffer.
#[derive(Clone, Default)]
pub struct BufferSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl BufferSink {
    /// A new, empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer contents decoded as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.buf.lock().unwrap().clone()).expect("trace is valid utf-8")
    }
}

impl Write for BufferSink {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}
