//! Small probability utilities used by inference and learning code:
//! normalization, log-sum-exp, entropy, and stable argmax.

/// Normalize `v` in place so it sums to one.
///
/// If the sum is zero or non-finite the vector is reset to the uniform
/// distribution — the safe fallback for EM posteriors that underflowed.
pub fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for x in v.iter_mut() {
            *x /= sum;
        }
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

/// `log(sum_i exp(x_i))` computed stably.
///
/// Returns negative infinity for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Softmax of unnormalized log-probabilities in a single exponentiation
/// pass: fills `q` with the normalized posterior and returns
/// `log_sum_exp(logp)`.
///
/// The returned log-sum is bit-identical to [`log_sum_exp`] (same
/// operations in the same order). The posterior is the mathematically
/// identical `exp(x - max) / sum` instead of re-exponentiating every
/// entry against the log-sum, which halves the `exp` calls on the EM
/// E-step hot path.
pub fn softmax_from_logs(logp: &[f64], q: &mut Vec<f64>) -> f64 {
    q.clear();
    let m = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        q.resize(logp.len(), 0.0);
        normalize(q);
        return f64::NEG_INFINITY;
    }
    q.extend(logp.iter().map(|&x| (x - m).exp()));
    let sum: f64 = q.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for v in q.iter_mut() {
            *v /= sum;
        }
    } else {
        normalize(q);
    }
    m + sum.ln()
}

/// Shannon entropy (nats) of a distribution. Zero-probability entries
/// contribute zero, matching the `p log p -> 0` limit.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum()
}

/// Index of the maximum element; ties break toward the lowest index so the
/// result is deterministic. Returns `None` for an empty slice or if every
/// element is NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// The margin between the largest and second-largest entries.
///
/// This is the quantity CrowdRL's labelled-set enrichment thresholds
/// (Algorithm 1, lines 9–13): an object is auto-labelled only when
/// `phi_cj(o) - phi_ck(o) > epsilon` for the top two classes `c_j, c_k`.
/// For a single-class distribution the margin is the sole probability.
pub fn top_two_margin(p: &[f64]) -> f64 {
    match p.len() {
        0 => 0.0,
        1 => p[0],
        _ => {
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            for &x in p {
                if x > best {
                    second = best;
                    best = x;
                } else if x > second {
                    second = x;
                }
            }
            best - second
        }
    }
}

/// True when `p` is a valid probability distribution over `k` outcomes
/// (length `k`, entries in `[0,1]`, sums to one within `tol`).
pub fn is_distribution(p: &[f64], k: usize, tol: f64) -> bool {
    p.len() == k
        && p.iter()
            .all(|&x| x.is_finite() && (-tol..=1.0 + tol).contains(&x))
        && (p.iter().sum::<f64>() - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_produces_distribution() {
        let mut v = vec![2.0, 6.0];
        normalize(&mut v);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_sum_falls_back_to_uniform() {
        let mut v = vec![0.0, 0.0, 0.0, 0.0];
        normalize(&mut v);
        assert!(v.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn normalize_nan_sum_falls_back_to_uniform() {
        let mut v = vec![f64::NAN, 1.0];
        normalize(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let xs: [f64; 3] = [0.1, -0.3, 0.7];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn entropy_uniform_is_log_k() {
        let p = [0.25; 4];
        assert!((entropy(&p) - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn softmax_from_logs_matches_two_pass_formulation() {
        let logp = [-3.2, -0.7, -15.0, -0.9];
        let mut q = Vec::new();
        let lse = softmax_from_logs(&logp, &mut q);
        // The log-sum is the exact same operation sequence.
        assert_eq!(lse.to_bits(), log_sum_exp(&logp).to_bits());
        // The posterior agrees with the re-exponentiated form.
        let two_pass: Vec<f64> = logp.iter().map(|&lp| (lp - lse).exp()).collect();
        for (a, b) in q.iter().zip(&two_pass) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Degenerate input falls back to uniform, like `normalize`.
        let lse = softmax_from_logs(&[f64::NEG_INFINITY; 3], &mut q);
        assert_eq!(lse, f64::NEG_INFINITY);
        assert_eq!(q, vec![1.0 / 3.0; 3]);
        assert_eq!(softmax_from_logs(&[], &mut q), f64::NEG_INFINITY);
        assert!(q.is_empty());
    }

    #[test]
    fn entropy_point_mass_is_zero() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0, f64::NAN]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn top_two_margin_behaviour() {
        assert!((top_two_margin(&[0.9, 0.1]) - 0.8).abs() < 1e-12);
        assert!((top_two_margin(&[0.4, 0.35, 0.25]) - 0.05).abs() < 1e-12);
        assert_eq!(top_two_margin(&[1.0]), 1.0);
        assert_eq!(top_two_margin(&[]), 0.0);
    }

    #[test]
    fn is_distribution_checks_bounds_and_sum() {
        assert!(is_distribution(&[0.5, 0.5], 2, 1e-9));
        assert!(!is_distribution(&[0.5, 0.6], 2, 1e-9));
        assert!(!is_distribution(&[0.5, 0.5], 3, 1e-9));
        assert!(!is_distribution(&[1.5, -0.5], 2, 1e-9));
        assert!(!is_distribution(&[f64::NAN, 1.0], 2, 1e-9));
    }
}
