//! Typed identifiers for objects, classes and annotators.
//!
//! The paper indexes objects `o_i`, classes `c_j` and annotators `w_j` by
//! position; we keep that convention but wrap the indices in newtypes so the
//! three index spaces cannot be mixed up silently.

use std::fmt;

/// Index of an object `o_i` in the dataset (row of the labelling-history
/// matrix `S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub usize);

/// Index of a class `c_j` in the label set `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

/// Index of an annotator `w_j` in the pool `W` (column of the
/// labelling-history matrix `S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AnnotatorId(pub usize);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for AnnotatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl ObjectId {
    /// The raw index, for use as a slice/matrix offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl ClassId {
    /// The raw index, for use as a slice/matrix offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl AnnotatorId {
    /// The raw index, for use as a slice/matrix offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The two kinds of human annotators CrowdRL distinguishes (§II-A).
///
/// Experts are assumed more reliable but more expensive; the joint inference
/// model additionally *bounds* expert quality from below so an EM pass cannot
/// erode an expert's confidence after a rare mistake (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnnotatorKind {
    /// A crowdsourcing-marketplace worker: cheap, noisy.
    Worker,
    /// A domain expert: expensive, near-perfect.
    Expert,
}

impl fmt::Display for AnnotatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotatorKind::Worker => write!(f, "worker"),
            AnnotatorKind::Expert => write!(f, "expert"),
        }
    }
}

/// Public, observable facts about an annotator: identity, kind, and the
/// per-answer monetary cost charged against the labelling [`Budget`].
///
/// The annotator's true confusion matrix `Π^j` is *not* part of the profile:
/// it is latent (owned by the simulator) and only ever estimated (`Π̂^j`)
/// by inference algorithms, mirroring the paper's setup.
///
/// [`Budget`]: crate::Budget
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatorProfile {
    /// Position of this annotator in the pool.
    pub id: AnnotatorId,
    /// Worker or expert.
    pub kind: AnnotatorKind,
    /// Monetary cost of one answer from this annotator, in budget units.
    /// The paper uses 1 for workers and 5 or 10 for experts.
    pub cost: f64,
}

impl AnnotatorProfile {
    /// Create a profile, validating that the cost is finite and positive.
    pub fn new(id: AnnotatorId, kind: AnnotatorKind, cost: f64) -> crate::Result<Self> {
        if !cost.is_finite() || cost <= 0.0 {
            return Err(crate::Error::InvalidParameter(format!(
                "annotator cost must be finite and positive, got {cost}"
            )));
        }
        Ok(Self { id, kind, cost })
    }

    /// True if this annotator is an expert.
    #[inline]
    pub fn is_expert(&self) -> bool {
        self.kind == AnnotatorKind::Expert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_paper_prefixes() {
        assert_eq!(ObjectId(3).to_string(), "o3");
        assert_eq!(ClassId(0).to_string(), "c0");
        assert_eq!(AnnotatorId(7).to_string(), "w7");
    }

    #[test]
    fn ids_expose_raw_index() {
        assert_eq!(ObjectId(5).index(), 5);
        assert_eq!(ClassId(2).index(), 2);
        assert_eq!(AnnotatorId(9).index(), 9);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(AnnotatorId(0) < AnnotatorId(10));
    }

    #[test]
    fn profile_rejects_nonpositive_cost() {
        assert!(AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, 0.0).is_err());
        assert!(AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, -1.0).is_err());
        assert!(AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, f64::NAN).is_err());
        assert!(
            AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, f64::INFINITY).is_err()
        );
    }

    #[test]
    fn profile_accepts_paper_costs() {
        let w = AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, 1.0).unwrap();
        let e = AnnotatorProfile::new(AnnotatorId(1), AnnotatorKind::Expert, 10.0).unwrap();
        assert!(!w.is_expert());
        assert!(e.is_expert());
        assert_eq!(e.cost, 10.0);
    }

    #[test]
    fn kind_displays_lowercase() {
        assert_eq!(AnnotatorKind::Worker.to_string(), "worker");
        assert_eq!(AnnotatorKind::Expert.to_string(), "expert");
    }
}
