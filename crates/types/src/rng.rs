//! Deterministic-randomness helpers.
//!
//! Every stochastic component in the workspace takes an explicit
//! [`rand::Rng`]; experiments construct a seeded [`StdRng`] via [`seeded`]
//! so that any run is reproducible bit-for-bit from its seed. Gaussian
//! sampling is provided here via the Box–Muller transform so the workspace
//! does not need the `rand_distr` crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a deterministic RNG from a 64-bit seed.
///
/// All experiment entry points thread seeds derived from a single master
/// seed through this function; re-running with the same seed reproduces the
/// run exactly.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// This is a SplitMix64 step — enough to decorrelate per-task RNG streams in
/// parallel sweeps without sharing mutable RNG state across threads.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample a standard normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from zero so ln(u1) is finite.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample `N(mu, sigma^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Sample an index from an (unnormalized) non-negative weight vector.
///
/// Returns `None` when the weights are empty or sum to zero.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if !total.is_finite() || total <= 0.0 {
        return None;
    }
    let mut point = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        point -= w;
        if point <= 0.0 {
            return Some(i);
        }
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Fisher–Yates shuffle producing a permutation of `0..n`.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Sample `k` distinct indices from `0..n` uniformly (partial Fisher–Yates).
///
/// When `k >= n` this returns a full permutation.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s = 1234;
        let d0 = derive_seed(s, 0);
        let d1 = derive_seed(s, 1);
        let d2 = derive_seed(s, 2);
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
        assert_ne!(d0, d2);
        // Deterministic.
        assert_eq!(derive_seed(s, 1), d1);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn sample_weighted_respects_proportions() {
        let mut rng = seeded(11);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_weighted(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn sample_weighted_handles_degenerate_inputs() {
        let mut rng = seeded(1);
        assert_eq!(sample_weighted(&mut rng, &[]), None);
        assert_eq!(sample_weighted(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(sample_weighted(&mut rng, &[f64::NAN]), None);
        assert_eq!(sample_weighted(&mut rng, &[0.0, 5.0]), Some(1));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(3);
        let p = permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut rng = seeded(5);
        let s = sample_indices(&mut rng, 50, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_caps_at_population() {
        let mut rng = seeded(5);
        let s = sample_indices(&mut rng, 4, 100);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
