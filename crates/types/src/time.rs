//! Simulated time for the asynchronous labelling runtime.
//!
//! The discrete-event scheduler in `crowdrl-serve` orders work by a
//! virtual clock, not wall time: [`SimTime`] is a non-negative `f64` of
//! abstract "time units" (think seconds of annotator latency). A newtype
//! keeps it from mixing with budgets and probabilities and gives it a
//! total order (`NaN` is rejected at construction) so it can key a
//! priority queue directly.

use crate::error::{Error, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on (or duration of) the simulated clock, in abstract time
/// units. Always finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the clock's initial value.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wrap a raw value; fails on NaN, infinity, or negatives.
    pub fn new(t: f64) -> Result<Self> {
        if !t.is_finite() || t < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "SimTime must be finite and non-negative, got {t}"
            )));
        }
        Ok(SimTime(t))
    }

    /// The raw value in time units.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

// SimTime is constructed only through `new`, which rejects NaN, so the
// total order is genuine.
impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}tu", self.0)
    }
}

/// Identifier of one dispatched (object, annotator) question in the
/// asynchronous runtime's ledger. Monotonically increasing per run, so it
/// doubles as a deterministic tiebreaker and a per-assignment RNG stream
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AssignmentId(pub u64);

impl fmt::Display for AssignmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_values() {
        assert!(SimTime::new(f64::NAN).is_err());
        assert!(SimTime::new(f64::INFINITY).is_err());
        assert!(SimTime::new(-0.001).is_err());
        assert!(SimTime::new(0.0).is_ok());
    }

    #[test]
    fn orders_and_adds() {
        let a = SimTime::new(1.5).unwrap();
        let b = SimTime::new(2.0).unwrap();
        assert!(a < b);
        assert_eq!((a + b).as_f64(), 3.5);
        let mut c = SimTime::ZERO;
        c += b;
        assert_eq!(c, b);
        // Saturating subtraction: durations never go negative.
        assert_eq!((a - b).as_f64(), 0.0);
        assert_eq!((b - a).as_f64(), 0.5);
    }

    #[test]
    fn usable_as_priority_queue_key() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        for t in [3.0, 1.0, 2.0] {
            heap.push(Reverse(SimTime::new(t).unwrap()));
        }
        assert_eq!(heap.pop().unwrap().0.as_f64(), 1.0);
        assert_eq!(heap.pop().unwrap().0.as_f64(), 2.0);
        assert_eq!(heap.pop().unwrap().0.as_f64(), 3.0);
    }

    #[test]
    fn assignment_ids_order_and_display() {
        assert!(AssignmentId(1) < AssignmentId(2));
        assert_eq!(AssignmentId(7).to_string(), "a7");
        assert_eq!(SimTime::new(1.25).unwrap().to_string(), "1.250tu");
    }
}
