//! Error type shared across the CrowdRL workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by CrowdRL components.
///
/// The workspace deliberately keeps a single flat error enum: the library is
/// a research system whose failure modes are configuration mistakes and
/// budget exhaustion, not recoverable I/O conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A parameter was outside its documented domain (negative cost,
    /// probability outside `[0,1]`, empty class set, ...).
    InvalidParameter(String),
    /// Two components disagreed about a dimension (e.g. a confusion matrix
    /// sized for `k` classes applied to a dataset with `k' != k`).
    DimensionMismatch {
        expected: usize,
        actual: usize,
        context: String,
    },
    /// An index referred past the end of its collection.
    IndexOutOfBounds {
        index: usize,
        len: usize,
        context: String,
    },
    /// A charge would overdraw the labelling budget.
    BudgetExhausted { requested: f64, remaining: f64 },
    /// An iterative algorithm failed to make progress (e.g. EM produced a
    /// non-finite likelihood).
    NumericalFailure(String),
    /// The asynchronous labelling runtime broke an internal invariant or
    /// lost a worker thread (e.g. a panicked scoring thread, an event for
    /// an unknown assignment).
    ServiceFailure(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            Error::IndexOutOfBounds {
                index,
                len,
                context,
            } => {
                write!(f, "index {index} out of bounds (len {len}) in {context}")
            }
            Error::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested {requested:.3} units but only {remaining:.3} remain"
            ),
            Error::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
            Error::ServiceFailure(msg) => write!(f, "service failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidParameter("alpha must be in (0,1)".into());
        assert!(e.to_string().contains("alpha"));

        let e = Error::DimensionMismatch {
            expected: 2,
            actual: 3,
            context: "confusion".into(),
        };
        assert!(e.to_string().contains("expected 2"));
        assert!(e.to_string().contains("got 3"));

        let e = Error::IndexOutOfBounds {
            index: 9,
            len: 4,
            context: "dataset".into(),
        };
        assert!(e.to_string().contains("index 9"));

        let e = Error::BudgetExhausted {
            requested: 5.0,
            remaining: 1.0,
        };
        assert!(e.to_string().contains("5.000"));

        let e = Error::NumericalFailure("nan likelihood".into());
        assert!(e.to_string().contains("nan"));

        let e = Error::ServiceFailure("agent thread disconnected".into());
        assert!(e.to_string().contains("agent thread"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::NumericalFailure("x".into()));
    }
}
