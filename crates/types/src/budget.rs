//! Monetary budget accounting.
//!
//! The labelling process stops when "the budget of asking annotators to
//! label objects is used up" (§II-A). [`Budget`] is a simple ledger with a
//! hard ceiling: a charge either fits entirely or fails — partial spends
//! never happen, so the invariant `spent <= total` holds at all times.

use crate::{Error, Result};

/// A monetary budget with a hard ceiling.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    total: f64,
    spent: f64,
    /// Number of successful charges, for reporting.
    charges: usize,
}

impl Budget {
    /// A budget of `total` units. `total` must be finite and non-negative.
    pub fn new(total: f64) -> Result<Self> {
        if !total.is_finite() || total < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "budget must be finite and non-negative, got {total}"
            )));
        }
        Ok(Self {
            total,
            spent: 0.0,
            charges: 0,
        })
    }

    /// Rebuild a ledger from checkpointed accounting. `spent` must be the
    /// exact (bit-level) value a prior run accumulated — restoring and then
    /// charging must behave identically to never having stopped, and the
    /// charge-order float sum is not re-derivable from the charge list.
    pub fn restore(total: f64, spent: f64, charges: usize) -> Result<Self> {
        let mut b = Self::new(total)?;
        if !spent.is_finite() || spent < 0.0 || spent > total + 1e-9 {
            return Err(Error::InvalidParameter(format!(
                "restored spent must be finite and within the total, got {spent}"
            )));
        }
        b.spent = spent;
        b.charges = charges;
        Ok(b)
    }

    /// Total budget.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Amount spent so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Amount still available.
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Fraction of the budget spent, in `[0,1]`. A zero budget counts as
    /// fully spent.
    pub fn fraction_spent(&self) -> f64 {
        if self.total > 0.0 {
            (self.spent / self.total).min(1.0)
        } else {
            1.0
        }
    }

    /// Number of successful charges so far.
    #[inline]
    pub fn charge_count(&self) -> usize {
        self.charges
    }

    /// True when `amount` can still be charged.
    pub fn can_afford(&self, amount: f64) -> bool {
        amount.is_finite() && amount >= 0.0 && self.spent + amount <= self.total + 1e-9
    }

    /// Charge `amount` units, or fail without spending anything.
    pub fn charge(&mut self, amount: f64) -> Result<()> {
        if !amount.is_finite() || amount < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "charge must be finite and non-negative, got {amount}"
            )));
        }
        if !self.can_afford(amount) {
            return Err(Error::BudgetExhausted {
                requested: amount,
                remaining: self.remaining(),
            });
        }
        self.spent += amount;
        self.charges += 1;
        Ok(())
    }

    /// True when nothing meaningful can be charged any more (less than
    /// `min_cost` remains). The workflow uses the cheapest annotator's cost
    /// as `min_cost`.
    pub fn exhausted_for(&self, min_cost: f64) -> bool {
        !self.can_afford(min_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_accounting() {
        let mut b = Budget::new(30.0).unwrap();
        assert_eq!(b.total(), 30.0);
        assert_eq!(b.remaining(), 30.0);
        b.charge(1.0).unwrap();
        b.charge(5.0).unwrap();
        assert_eq!(b.spent(), 6.0);
        assert_eq!(b.remaining(), 24.0);
        assert_eq!(b.charge_count(), 2);
        assert!((b.fraction_spent() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_overdraft_atomically() {
        let mut b = Budget::new(10.0).unwrap();
        b.charge(8.0).unwrap();
        let err = b.charge(5.0).unwrap_err();
        assert!(matches!(err, Error::BudgetExhausted { .. }));
        // Nothing was spent by the failed charge.
        assert_eq!(b.spent(), 8.0);
        assert_eq!(b.charge_count(), 1);
        // A smaller charge still fits.
        b.charge(2.0).unwrap();
        assert!(b.exhausted_for(1.0));
    }

    #[test]
    fn rejects_invalid_amounts() {
        let mut b = Budget::new(10.0).unwrap();
        assert!(b.charge(-1.0).is_err());
        assert!(b.charge(f64::NAN).is_err());
        assert!(b.charge(f64::INFINITY).is_err());
        assert!(Budget::new(-5.0).is_err());
        assert!(Budget::new(f64::NAN).is_err());
    }

    #[test]
    fn restore_resumes_exact_accounting() {
        let mut b = Budget::new(10.0).unwrap();
        b.charge(0.1).unwrap();
        b.charge(0.2).unwrap();
        let r = Budget::restore(b.total(), b.spent(), b.charge_count()).unwrap();
        assert_eq!(r, b);
        assert!(Budget::restore(10.0, 11.0, 0).is_err());
        assert!(Budget::restore(10.0, f64::NAN, 0).is_err());
        assert!(Budget::restore(10.0, -1.0, 0).is_err());
    }

    #[test]
    fn zero_budget_is_exhausted() {
        let b = Budget::new(0.0).unwrap();
        assert!(b.exhausted_for(1.0));
        assert_eq!(b.fraction_spent(), 1.0);
        // Zero-cost charges are still fine.
        let mut b = Budget::new(0.0).unwrap();
        b.charge(0.0).unwrap();
    }

    #[test]
    fn can_afford_tolerates_float_slack() {
        let mut b = Budget::new(3.0).unwrap();
        for _ in 0..30 {
            b.charge(0.1).unwrap();
        }
        // 30 * 0.1 may not be exactly 3.0 in floating point; the epsilon in
        // can_afford absorbs that.
        assert!(b.spent() <= 3.0 + 1e-9);
    }

    proptest! {
        /// spent never exceeds total, under any charge sequence.
        #[test]
        fn prop_never_overspends(total in 0.0f64..100.0,
                                 charges in proptest::collection::vec(0.0f64..20.0, 0..64)) {
            let mut b = Budget::new(total).unwrap();
            for c in charges {
                let _ = b.charge(c);
                prop_assert!(b.spent() <= b.total() + 1e-9);
                prop_assert!(b.remaining() >= 0.0);
                prop_assert!((0.0..=1.0).contains(&b.fraction_spent()));
            }
        }
    }
}
