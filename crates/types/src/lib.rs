//! # crowdrl-types
//!
//! Core data model shared by every crate in the CrowdRL workspace.
//!
//! CrowdRL (ICDE 2021) labels a set of *objects* `O = {o_i}` with classes
//! from `C = {c_j}` by asking *annotators* `W = {w_j}` (crowd workers and
//! experts) and a trained classifier. This crate defines the vocabulary used
//! throughout: typed identifiers, datasets with hidden ground truth,
//! annotator profiles and confusion matrices, answer sets, and budget
//! accounting — plus small deterministic-randomness and probability helpers
//! that keep heavier crates dependency-free.
//!
//! Everything here is plain data with no I/O; simulation lives in
//! `crowdrl-sim`, learning in `crowdrl-nn`/`crowdrl-rl`, and inference in
//! `crowdrl-inference`.

pub mod answers;
pub mod budget;
pub mod confusion;
pub mod dataset;
pub mod error;
pub mod ids;
pub mod prob;
pub mod rng;
pub mod time;

pub use answers::{Answer, AnswerSet, LabelState, LabelledSet};
pub use budget::Budget;
pub use confusion::ConfusionMatrix;
pub use dataset::Dataset;
pub use error::{Error, Result};
pub use ids::{AnnotatorId, AnnotatorKind, AnnotatorProfile, ClassId, ObjectId};
pub use time::{AssignmentId, SimTime};
