//! Datasets: feature vectors plus *hidden* ground truth.
//!
//! The paper's data model (§II-A) is a set of objects `O = {o_i}`, each with
//! an unknown true label `y_i` from a class set `C`. Objects carry feature
//! vectors (the speech datasets have "contextual" and "prosodic" feature
//! blocks) that the classifier `φ` learns from.
//!
//! Ground truth is stored in the dataset but is accessible only through
//! [`Dataset::truth`], which labelling algorithms must never call — it exists
//! for the answer simulator (annotators see the truth through their
//! confusion matrices) and for final evaluation. The workflow code in
//! `crowdrl-core` only ever touches features and annotator answers.

use crate::ids::ClassId;
use crate::{Error, Result};

/// An immutable labelled dataset with dense `f32` features.
///
/// Features are stored row-major (`len * dim`); rows are objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    features: Vec<f32>,
    dim: usize,
    truth: Vec<ClassId>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset, validating shapes and label ranges.
    pub fn new(
        name: impl Into<String>,
        features: Vec<f32>,
        dim: usize,
        truth: Vec<ClassId>,
        num_classes: usize,
    ) -> Result<Self> {
        if num_classes == 0 {
            return Err(Error::InvalidParameter(
                "num_classes must be positive".into(),
            ));
        }
        if dim == 0 {
            return Err(Error::InvalidParameter(
                "feature dim must be positive".into(),
            ));
        }
        if truth.is_empty() {
            return Err(Error::InvalidParameter(
                "dataset must contain at least one object".into(),
            ));
        }
        if features.len() != truth.len() * dim {
            return Err(Error::DimensionMismatch {
                expected: truth.len() * dim,
                actual: features.len(),
                context: "dataset feature buffer".into(),
            });
        }
        if let Some(bad) = truth.iter().find(|c| c.index() >= num_classes) {
            return Err(Error::InvalidParameter(format!(
                "ground-truth label {bad} out of range for {num_classes} classes"
            )));
        }
        if features.iter().any(|x| !x.is_finite()) {
            return Err(Error::InvalidParameter(
                "features contain non-finite values".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            features,
            dim,
            truth,
            num_classes,
        })
    }

    /// Dataset name (e.g. `"speech12-cp"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of objects `|O|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True when the dataset has no objects (never, per the constructor).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `|C|`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature row for object `i`.
    #[inline]
    pub fn features(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole row-major feature buffer.
    #[inline]
    pub fn feature_buffer(&self) -> &[f32] {
        &self.features
    }

    /// **Evaluation/simulation only.** The hidden true label of object `i`.
    ///
    /// Labelling algorithms must not consult this; it exists so the answer
    /// simulator can sample annotator responses and so experiments can score
    /// the final labels.
    #[inline]
    pub fn truth(&self, i: usize) -> ClassId {
        self.truth[i]
    }

    /// **Evaluation/simulation only.** All hidden true labels.
    #[inline]
    pub fn truth_slice(&self) -> &[ClassId] {
        &self.truth
    }

    /// A new dataset containing only the objects at `indices`, in order.
    ///
    /// Used by the paper's scalability experiment (Fig. 5), which samples
    /// `{0.1,…,0.5}` of each dataset.
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        if indices.is_empty() {
            return Err(Error::InvalidParameter(
                "subset must keep at least one object".into(),
            ));
        }
        let mut features = Vec::with_capacity(indices.len() * self.dim);
        let mut truth = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: self.len(),
                    context: "dataset subset".into(),
                });
            }
            features.extend_from_slice(self.features(i));
            truth.push(self.truth[i]);
        }
        Ok(Self {
            name: format!("{}[{}]", self.name, indices.len()),
            features,
            dim: self.dim,
            truth,
            num_classes: self.num_classes,
        })
    }

    /// A new dataset keeping only feature columns `cols` (in order).
    ///
    /// Reproduces the paper's feature views: contextual-only (C),
    /// prosodic-only (P) and concatenated (CP) slices of the same objects.
    pub fn select_columns(&self, cols: &[usize], name: impl Into<String>) -> Result<Self> {
        if cols.is_empty() {
            return Err(Error::InvalidParameter(
                "must keep at least one feature column".into(),
            ));
        }
        if let Some(&bad) = cols.iter().find(|&&c| c >= self.dim) {
            return Err(Error::IndexOutOfBounds {
                index: bad,
                len: self.dim,
                context: "dataset column selection".into(),
            });
        }
        let mut features = Vec::with_capacity(self.len() * cols.len());
        for i in 0..self.len() {
            let row = self.features(i);
            features.extend(cols.iter().map(|&c| row[c]));
        }
        Ok(Self {
            name: name.into(),
            features,
            dim: cols.len(),
            truth: self.truth.clone(),
            num_classes: self.num_classes,
        })
    }

    /// A copy of this dataset under a different name (experiment harnesses
    /// use this to distinguish sweep conditions over the same data).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Empirical class prior of the hidden truth (evaluation/reporting only).
    pub fn class_prior(&self) -> Vec<f64> {
        let mut prior = vec![0.0; self.num_classes];
        for c in &self.truth {
            prior[c.index()] += 1.0;
        }
        crate::prob::normalize(&mut prior);
        prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            2,
            vec![ClassId(0), ClassId(1), ClassId(0)],
            2,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.features(1), &[2.0, 3.0]);
        assert_eq!(d.truth(2), ClassId(0));
        assert_eq!(d.name(), "toy");
        assert_eq!(d.feature_buffer().len(), 6);
    }

    #[test]
    fn rejects_shape_mismatches() {
        assert!(Dataset::new("x", vec![0.0; 5], 2, vec![ClassId(0); 3], 2).is_err());
        assert!(Dataset::new("x", vec![], 2, vec![], 2).is_err());
        assert!(Dataset::new("x", vec![0.0; 2], 0, vec![ClassId(0)], 2).is_err());
        assert!(Dataset::new("x", vec![0.0; 2], 2, vec![ClassId(0)], 0).is_err());
        assert!(Dataset::new("x", vec![0.0; 2], 2, vec![ClassId(5)], 2).is_err());
        assert!(Dataset::new("x", vec![f32::NAN, 0.0], 2, vec![ClassId(0)], 2).is_err());
    }

    #[test]
    fn subset_selects_rows_in_order() {
        let d = toy();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.features(0), &[4.0, 5.0]);
        assert_eq!(s.truth(1), ClassId(0));
        assert!(d.subset(&[]).is_err());
        assert!(d.subset(&[7]).is_err());
    }

    #[test]
    fn select_columns_projects_features() {
        let d = toy();
        let c = d.select_columns(&[1], "toy-p").unwrap();
        assert_eq!(c.dim(), 1);
        assert_eq!(c.features(0), &[1.0]);
        assert_eq!(c.features(2), &[5.0]);
        assert_eq!(c.name(), "toy-p");
        assert_eq!(c.truth_slice(), d.truth_slice());
        assert!(d.select_columns(&[], "x").is_err());
        assert!(d.select_columns(&[2], "x").is_err());
    }

    #[test]
    fn class_prior_is_empirical_frequency() {
        let d = toy();
        let p = d.class_prior();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }
}
