//! Annotator confusion matrices.
//!
//! Following the paper (§II-A, after \[48\], \[49\]), the expertise of annotator
//! `w_j` is a `|C| x |C|` row-stochastic matrix `Π^j = {π^j_{cl}}` where
//! `π^j_{cl}` is the probability that an object whose true label is `c`
//! receives label `l` from `w_j`. The *true* matrix is latent; inference
//! algorithms maintain an estimate `Π̂^j` that is refined each iteration.

use crate::ids::ClassId;
use crate::prob;
use crate::{Error, Result};
use rand::Rng;

/// A row-stochastic `k x k` confusion matrix over `k` classes.
///
/// Row = true class, column = reported class. Rows always sum to one (the
/// constructors normalize and [`ConfusionMatrix::validate`] checks).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    k: usize,
    /// Row-major `k*k` probabilities.
    p: Vec<f64>,
}

impl ConfusionMatrix {
    /// The identity matrix: a perfect annotator.
    pub fn identity(k: usize) -> Result<Self> {
        Self::check_k(k)?;
        let mut p = vec![0.0; k * k];
        for c in 0..k {
            p[c * k + c] = 1.0;
        }
        Ok(Self { k, p })
    }

    /// The maximally-uninformative annotator: every row uniform.
    pub fn uniform(k: usize) -> Result<Self> {
        Self::check_k(k)?;
        Ok(Self {
            k,
            p: vec![1.0 / k as f64; k * k],
        })
    }

    /// A "diagonal-accuracy" annotator: probability `acc` of reporting the
    /// true class, with the remaining mass spread uniformly over the other
    /// classes. This is the one-parameter annotator model many truth
    /// inference papers use and the shape our simulator samples around.
    pub fn with_accuracy(k: usize, acc: f64) -> Result<Self> {
        Self::check_k(k)?;
        if !(0.0..=1.0).contains(&acc) {
            return Err(Error::InvalidParameter(format!(
                "accuracy must be in [0,1], got {acc}"
            )));
        }
        if k == 1 {
            return Self::identity(1);
        }
        let off = (1.0 - acc) / (k - 1) as f64;
        let mut p = vec![off; k * k];
        for c in 0..k {
            p[c * k + c] = acc;
        }
        Ok(Self { k, p })
    }

    /// Build from explicit rows, normalizing each row to sum to one.
    ///
    /// Fails if the shape is not `k x k`, any entry is negative or
    /// non-finite, or a row sums to zero.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let k = rows.len();
        Self::check_k(k)?;
        let mut p = Vec::with_capacity(k * k);
        for (c, row) in rows.iter().enumerate() {
            if row.len() != k {
                return Err(Error::DimensionMismatch {
                    expected: k,
                    actual: row.len(),
                    context: format!("confusion matrix row {c}"),
                });
            }
            if row.iter().any(|&x| !x.is_finite() || x < 0.0) {
                return Err(Error::InvalidParameter(format!(
                    "confusion matrix row {c} has a negative or non-finite entry"
                )));
            }
            let sum: f64 = row.iter().sum();
            if sum <= 0.0 {
                return Err(Error::InvalidParameter(format!(
                    "confusion matrix row {c} sums to zero"
                )));
            }
            p.extend(row.iter().map(|&x| x / sum));
        }
        Ok(Self { k, p })
    }

    fn check_k(k: usize) -> Result<()> {
        if k == 0 {
            return Err(Error::InvalidParameter(
                "class count must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// `π_{cl}`: probability of reporting `reported` when the truth is
    /// `truth`.
    #[inline]
    pub fn get(&self, truth: ClassId, reported: ClassId) -> f64 {
        debug_assert!(truth.index() < self.k && reported.index() < self.k);
        self.p[truth.index() * self.k + reported.index()]
    }

    /// One row (fixed true class) of the matrix.
    #[inline]
    pub fn row(&self, truth: ClassId) -> &[f64] {
        let c = truth.index();
        &self.p[c * self.k..(c + 1) * self.k]
    }

    /// Overall estimated quality `tr(Π)/|C|` — the paper's scalar summary of
    /// an annotator, shown in the state's quality column (§III-B).
    pub fn quality(&self) -> f64 {
        let trace: f64 = (0..self.k).map(|c| self.p[c * self.k + c]).sum();
        trace / self.k as f64
    }

    /// Sample the label this annotator reports for an object whose true
    /// class is `truth`.
    pub fn sample_answer<R: Rng + ?Sized>(&self, truth: ClassId, rng: &mut R) -> ClassId {
        let row = self.row(truth);
        match crate::rng::sample_weighted(rng, row) {
            Some(i) => ClassId(i),
            // Degenerate row (all zeros after aggressive mutation): report truth.
            None => truth,
        }
    }

    /// Replace the matrix with soft-count estimates, normalizing rows.
    ///
    /// `counts` is a row-major `k x k` matrix of (possibly fractional)
    /// observation counts from an EM M-step. `smoothing` (Laplace) is added
    /// to every cell so unseen classes keep nonzero probability.
    pub fn set_from_counts(&mut self, counts: &[f64], smoothing: f64) -> Result<()> {
        if counts.len() != self.k * self.k {
            return Err(Error::DimensionMismatch {
                expected: self.k * self.k,
                actual: counts.len(),
                context: "confusion matrix counts".into(),
            });
        }
        if smoothing < 0.0 || !smoothing.is_finite() {
            return Err(Error::InvalidParameter(format!(
                "smoothing must be finite and non-negative, got {smoothing}"
            )));
        }
        for c in 0..self.k {
            let row = &counts[c * self.k..(c + 1) * self.k];
            if row.iter().any(|&x| !x.is_finite() || x < 0.0) {
                return Err(Error::NumericalFailure(format!(
                    "negative or non-finite count in confusion row {c}"
                )));
            }
            let dst = &mut self.p[c * self.k..(c + 1) * self.k];
            for (d, &s) in dst.iter_mut().zip(row) {
                *d = s + smoothing;
            }
            prob::normalize(dst);
        }
        Ok(())
    }

    /// CrowdRL's expert-quality bounding (§V-A): if a diagonal entry of an
    /// *expert's* estimated matrix fell below `1 - epsilon`, clamp it back to
    /// `1 - epsilon` and spread `epsilon` uniformly over the other classes.
    ///
    /// Returns `true` if any row was clamped.
    pub fn bound_diagonal(&mut self, epsilon: f64) -> Result<bool> {
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(Error::InvalidParameter(format!(
                "epsilon must be in [0,1], got {epsilon}"
            )));
        }
        let floor = 1.0 - epsilon;
        let mut clamped = false;
        for c in 0..self.k {
            if self.p[c * self.k + c] < floor {
                clamped = true;
                if self.k == 1 {
                    self.p[0] = 1.0;
                    continue;
                }
                let off = epsilon / (self.k - 1) as f64;
                for l in 0..self.k {
                    self.p[c * self.k + l] = if l == c { floor } else { off };
                }
            }
        }
        Ok(clamped)
    }

    /// Ensure every diagonal entry is at least `floor`, rescaling the
    /// off-diagonal mass of affected rows proportionally.
    ///
    /// EM truth inference can "invert" a weak annotator (estimate their
    /// diagonal below 0.5 and then trust their answers *negated*), which is
    /// catastrophic when most of the panel is weak. Clamping encodes the
    /// standard non-adversarial assumption: annotators are at least as good
    /// as chance. Returns `true` if any row changed.
    pub fn clamp_diagonal_min(&mut self, floor: f64) -> Result<bool> {
        if !(0.0..=1.0).contains(&floor) {
            return Err(Error::InvalidParameter(format!(
                "diagonal floor must be in [0,1], got {floor}"
            )));
        }
        let mut changed = false;
        for c in 0..self.k {
            let diag = self.p[c * self.k + c];
            if diag >= floor {
                continue;
            }
            changed = true;
            let off_mass = 1.0 - diag;
            let new_off_mass = 1.0 - floor;
            let scale = if off_mass > 0.0 {
                new_off_mass / off_mass
            } else {
                0.0
            };
            for l in 0..self.k {
                let v = &mut self.p[c * self.k + l];
                *v = if l == c { floor } else { *v * scale };
            }
            // Guard against an all-zero off-diagonal row when k == 1.
            if self.k == 1 {
                self.p[0] = 1.0;
            }
        }
        Ok(changed)
    }

    /// Check row-stochasticity within `tol`; used by tests and as a debug
    /// assertion after M-steps.
    pub fn validate(&self, tol: f64) -> Result<()> {
        for c in 0..self.k {
            let row = &self.p[c * self.k..(c + 1) * self.k];
            if !prob::is_distribution(row, self.k, tol) {
                return Err(Error::NumericalFailure(format!(
                    "confusion matrix row {c} is not a distribution: {row:?}"
                )));
            }
        }
        Ok(())
    }

    /// Raw row-major probabilities (read-only), handy for featurization.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use proptest::prelude::*;

    #[test]
    fn identity_quality_is_one() {
        let m = ConfusionMatrix::identity(3).unwrap();
        assert_eq!(m.quality(), 1.0);
        m.validate(1e-12).unwrap();
        assert_eq!(m.get(ClassId(1), ClassId(1)), 1.0);
        assert_eq!(m.get(ClassId(1), ClassId(2)), 0.0);
    }

    #[test]
    fn uniform_quality_is_one_over_k() {
        let m = ConfusionMatrix::uniform(4).unwrap();
        assert!((m.quality() - 0.25).abs() < 1e-12);
        m.validate(1e-12).unwrap();
    }

    #[test]
    fn with_accuracy_matches_paper_example() {
        // Table IV: worker w1 with 0.60 / 0.40 rows would be accuracy 0.6/0.7;
        // our one-parameter form uses a shared diagonal.
        let m = ConfusionMatrix::with_accuracy(2, 0.985).unwrap();
        assert!((m.quality() - 0.985).abs() < 1e-12);
        assert!((m.get(ClassId(0), ClassId(1)) - 0.015).abs() < 1e-12);
    }

    #[test]
    fn with_accuracy_rejects_out_of_range() {
        assert!(ConfusionMatrix::with_accuracy(2, 1.5).is_err());
        assert!(ConfusionMatrix::with_accuracy(2, -0.1).is_err());
        assert!(ConfusionMatrix::with_accuracy(0, 0.5).is_err());
    }

    #[test]
    fn single_class_is_always_identity() {
        let m = ConfusionMatrix::with_accuracy(1, 0.3).unwrap();
        assert_eq!(m.quality(), 1.0);
    }

    #[test]
    fn from_rows_normalizes() {
        let m = ConfusionMatrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!((m.get(ClassId(0), ClassId(0)) - 0.75).abs() < 1e-12);
        assert!((m.get(ClassId(1), ClassId(0)) - 0.5).abs() < 1e-12);
        m.validate(1e-12).unwrap();
    }

    #[test]
    fn from_rows_rejects_bad_shapes_and_values() {
        assert!(ConfusionMatrix::from_rows(&[]).is_err());
        assert!(ConfusionMatrix::from_rows(&[vec![1.0], vec![1.0, 0.0]]).is_err());
        assert!(ConfusionMatrix::from_rows(&[vec![1.0, -0.5], vec![0.5, 0.5]]).is_err());
        assert!(ConfusionMatrix::from_rows(&[vec![0.0, 0.0], vec![0.5, 0.5]]).is_err());
        assert!(ConfusionMatrix::from_rows(&[vec![f64::NAN, 1.0], vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn sample_answer_follows_row_distribution() {
        let m = ConfusionMatrix::with_accuracy(2, 0.9).unwrap();
        let mut rng = seeded(21);
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| m.sample_answer(ClassId(0), &mut rng) == ClassId(0))
            .count();
        let frac = correct as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn set_from_counts_normalizes_with_smoothing() {
        let mut m = ConfusionMatrix::uniform(2).unwrap();
        m.set_from_counts(&[8.0, 2.0, 0.0, 0.0], 1.0).unwrap();
        // Row 0: (9, 3)/12; row 1: (1,1)/2 via smoothing only.
        assert!((m.get(ClassId(0), ClassId(0)) - 0.75).abs() < 1e-12);
        assert!((m.get(ClassId(1), ClassId(0)) - 0.5).abs() < 1e-12);
        m.validate(1e-12).unwrap();
    }

    #[test]
    fn set_from_counts_rejects_bad_input() {
        let mut m = ConfusionMatrix::uniform(2).unwrap();
        assert!(m.set_from_counts(&[1.0; 3], 0.0).is_err());
        assert!(m.set_from_counts(&[1.0, 1.0, 1.0, -1.0], 0.0).is_err());
        assert!(m.set_from_counts(&[1.0; 4], -0.5).is_err());
    }

    #[test]
    fn bound_diagonal_clamps_low_experts() {
        let mut m = ConfusionMatrix::with_accuracy(3, 0.5).unwrap();
        let clamped = m.bound_diagonal(0.05).unwrap();
        assert!(clamped);
        for c in 0..3 {
            assert!((m.get(ClassId(c), ClassId(c)) - 0.95).abs() < 1e-12);
        }
        m.validate(1e-12).unwrap();
        // Already-good matrix is untouched.
        let mut good = ConfusionMatrix::with_accuracy(3, 0.99).unwrap();
        assert!(!good.bound_diagonal(0.05).unwrap());
        assert!((good.quality() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn clamp_diagonal_min_prevents_inversion() {
        let mut m = ConfusionMatrix::from_rows(&[vec![0.3, 0.7], vec![0.2, 0.8]]).unwrap();
        let changed = m.clamp_diagonal_min(0.5).unwrap();
        assert!(changed);
        assert!((m.get(ClassId(0), ClassId(0)) - 0.5).abs() < 1e-12);
        assert!((m.get(ClassId(0), ClassId(1)) - 0.5).abs() < 1e-12);
        // Already-good row untouched.
        assert!((m.get(ClassId(1), ClassId(1)) - 0.8).abs() < 1e-12);
        assert!((m.get(ClassId(1), ClassId(0)) - 0.2).abs() < 1e-12);
        m.validate(1e-9).unwrap();
        // No-op on a good matrix.
        let mut good = ConfusionMatrix::with_accuracy(3, 0.9).unwrap();
        assert!(!good.clamp_diagonal_min(0.5).unwrap());
        assert!(good.clamp_diagonal_min(1.5).is_err());
    }

    #[test]
    fn bound_diagonal_rejects_bad_epsilon() {
        let mut m = ConfusionMatrix::uniform(2).unwrap();
        assert!(m.bound_diagonal(-0.1).is_err());
        assert!(m.bound_diagonal(1.1).is_err());
    }

    proptest! {
        #[test]
        fn prop_from_rows_is_row_stochastic(rows in proptest::collection::vec(
            proptest::collection::vec(0.01f64..10.0, 4), 4)) {
            let m = ConfusionMatrix::from_rows(&rows).unwrap();
            prop_assert!(m.validate(1e-9).is_ok());
        }

        #[test]
        fn prop_bound_diagonal_preserves_stochasticity(
            acc in 0.0f64..1.0, eps in 0.0f64..1.0) {
            let mut m = ConfusionMatrix::with_accuracy(3, acc).unwrap();
            m.bound_diagonal(eps).unwrap();
            prop_assert!(m.validate(1e-9).is_ok());
        }

        #[test]
        fn prop_quality_bounded(acc in 0.0f64..1.0) {
            let m = ConfusionMatrix::with_accuracy(5, acc).unwrap();
            prop_assert!((0.0..=1.0).contains(&m.quality()));
        }

        #[test]
        fn prop_set_from_counts_row_stochastic(counts in proptest::collection::vec(0.0f64..100.0, 9)) {
            let mut m = ConfusionMatrix::uniform(3).unwrap();
            m.set_from_counts(&counts, 0.5).unwrap();
            prop_assert!(m.validate(1e-9).is_ok());
        }
    }
}
