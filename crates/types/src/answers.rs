//! Answer sets and the evolving labelled set.
//!
//! [`AnswerSet`] is the paper's `ψ_i` collections: every (object, annotator,
//! reported label) triple gathered so far — exactly the labelling-history
//! matrix `S[i,j]` of §III-B in sparse form.
//!
//! [`LabelledSet`] tracks the per-object labelling state as the workflow
//! advances: unlabelled, inferred from annotator answers (truth inference),
//! or auto-labelled by the classifier (labelled-set enrichment).

use crate::ids::{AnnotatorId, ClassId, ObjectId};
use crate::{Error, Result};

/// One answer: annotator `annotator` claims object `object` has class
/// `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    pub object: ObjectId,
    pub annotator: AnnotatorId,
    pub label: ClassId,
}

/// All annotator answers collected so far, indexed by object.
///
/// This is the sparse representation of the `|O| x |W|` history matrix `S`:
/// `S[i,j] = c` when annotator `j` answered `c` for object `i`, and `-1`
/// (absent here) otherwise. An annotator answers each object at most once —
/// CrowdRL masks repeat (object, annotator) actions with `Q = -inf` (§IV-B),
/// and [`AnswerSet::record`] enforces the same invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnswerSet {
    /// `per_object[i]` = answers for object `i`, in arrival order.
    per_object: Vec<Vec<(AnnotatorId, ClassId)>>,
    /// Total number of answers across all objects.
    total: usize,
}

impl AnswerSet {
    /// An empty answer set over `num_objects` objects.
    pub fn new(num_objects: usize) -> Self {
        Self {
            per_object: vec![Vec::new(); num_objects],
            total: 0,
        }
    }

    /// Number of objects this set is sized for.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.per_object.len()
    }

    /// Total answers recorded.
    #[inline]
    pub fn total_answers(&self) -> usize {
        self.total
    }

    /// Record an answer. Fails if the object is out of range or the
    /// annotator already answered this object.
    pub fn record(&mut self, answer: Answer) -> Result<()> {
        let i = answer.object.index();
        if i >= self.per_object.len() {
            return Err(Error::IndexOutOfBounds {
                index: i,
                len: self.per_object.len(),
                context: "answer set".into(),
            });
        }
        if self.per_object[i]
            .iter()
            .any(|(a, _)| *a == answer.annotator)
        {
            return Err(Error::InvalidParameter(format!(
                "annotator {} already answered object {}",
                answer.annotator, answer.object
            )));
        }
        self.per_object[i].push((answer.annotator, answer.label));
        self.total += 1;
        Ok(())
    }

    /// The answers `ψ_i` for object `i` (empty slice if none).
    #[inline]
    pub fn answers_for(&self, object: ObjectId) -> &[(AnnotatorId, ClassId)] {
        &self.per_object[object.index()]
    }

    /// Whether `annotator` already answered `object`.
    pub fn has_answered(&self, object: ObjectId, annotator: AnnotatorId) -> bool {
        self.per_object[object.index()]
            .iter()
            .any(|(a, _)| *a == annotator)
    }

    /// The label `annotator` gave `object`, if any (the matrix entry
    /// `S[i,j]`).
    pub fn answer_of(&self, object: ObjectId, annotator: AnnotatorId) -> Option<ClassId> {
        self.per_object[object.index()]
            .iter()
            .find(|(a, _)| *a == annotator)
            .map(|&(_, c)| c)
    }

    /// Iterate over every answer as a flat stream.
    pub fn iter(&self) -> impl Iterator<Item = Answer> + '_ {
        self.per_object.iter().enumerate().flat_map(|(i, v)| {
            v.iter().map(move |&(annotator, label)| Answer {
                object: ObjectId(i),
                annotator,
                label,
            })
        })
    }

    /// Objects with at least one answer.
    pub fn answered_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.per_object
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, _)| ObjectId(i))
    }

    /// Per-annotator answer counts over a pool of `num_annotators`.
    pub fn answer_counts(&self, num_annotators: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_annotators];
        for v in &self.per_object {
            for &(a, _) in v {
                if a.index() < num_annotators {
                    counts[a.index()] += 1;
                }
            }
        }
        counts
    }
}

/// How an object acquired its current label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelState {
    /// No label yet.
    Unlabelled,
    /// Label inferred from annotator answers by a truth-inference model.
    Inferred(ClassId),
    /// Label assigned by the classifier during labelled-set enrichment
    /// (Algorithm 1, lines 4–14).
    Enriched(ClassId),
}

impl LabelState {
    /// The label, if the object has one.
    #[inline]
    pub fn label(self) -> Option<ClassId> {
        match self {
            LabelState::Unlabelled => None,
            LabelState::Inferred(c) | LabelState::Enriched(c) => Some(c),
        }
    }

    /// True when the object has any label.
    #[inline]
    pub fn is_labelled(self) -> bool {
        !matches!(self, LabelState::Unlabelled)
    }
}

/// The evolving labelling of the whole object set.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledSet {
    states: Vec<LabelState>,
    labelled: usize,
}

impl LabelledSet {
    /// All objects unlabelled.
    pub fn new(num_objects: usize) -> Self {
        Self {
            states: vec![LabelState::Unlabelled; num_objects],
            labelled: 0,
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when there are no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of object `i`.
    #[inline]
    pub fn state(&self, object: ObjectId) -> LabelState {
        self.states[object.index()]
    }

    /// Set (or overwrite) a label. Re-labelling is allowed — truth inference
    /// refines labels across iterations as more answers arrive.
    pub fn set(&mut self, object: ObjectId, state: LabelState) -> Result<()> {
        let i = object.index();
        if i >= self.states.len() {
            return Err(Error::IndexOutOfBounds {
                index: i,
                len: self.states.len(),
                context: "labelled set".into(),
            });
        }
        let was = self.states[i].is_labelled();
        let now = state.is_labelled();
        self.states[i] = state;
        match (was, now) {
            (false, true) => self.labelled += 1,
            (true, false) => self.labelled -= 1,
            _ => {}
        }
        Ok(())
    }

    /// Count of labelled objects (inferred + enriched).
    #[inline]
    pub fn labelled_count(&self) -> usize {
        self.labelled
    }

    /// Count of unlabelled objects.
    #[inline]
    pub fn unlabelled_count(&self) -> usize {
        self.states.len() - self.labelled
    }

    /// Count of objects auto-labelled by the classifier.
    pub fn enriched_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, LabelState::Enriched(_)))
            .count()
    }

    /// True when every object has a label.
    #[inline]
    pub fn all_labelled(&self) -> bool {
        self.labelled == self.states.len()
    }

    /// Objects still without a label.
    pub fn unlabelled_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_labelled())
            .map(|(i, _)| ObjectId(i))
    }

    /// Objects with a label, paired with it.
    pub fn labelled_objects(&self) -> impl Iterator<Item = (ObjectId, ClassId)> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.label().map(|c| (ObjectId(i), c)))
    }

    /// Final labels as a dense vector, with `None` for unlabelled objects.
    pub fn to_labels(&self) -> Vec<Option<ClassId>> {
        self.states.iter().map(|s| s.label()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ans(o: usize, a: usize, c: usize) -> Answer {
        Answer {
            object: ObjectId(o),
            annotator: AnnotatorId(a),
            label: ClassId(c),
        }
    }

    #[test]
    fn record_and_query_answers() {
        let mut set = AnswerSet::new(3);
        set.record(ans(0, 0, 1)).unwrap();
        set.record(ans(0, 1, 0)).unwrap();
        set.record(ans(2, 0, 1)).unwrap();
        assert_eq!(set.total_answers(), 3);
        assert_eq!(set.num_objects(), 3);
        assert_eq!(set.answers_for(ObjectId(0)).len(), 2);
        assert_eq!(set.answers_for(ObjectId(1)).len(), 0);
        assert!(set.has_answered(ObjectId(0), AnnotatorId(1)));
        assert!(!set.has_answered(ObjectId(1), AnnotatorId(1)));
        assert_eq!(set.answer_of(ObjectId(0), AnnotatorId(0)), Some(ClassId(1)));
        assert_eq!(set.answer_of(ObjectId(0), AnnotatorId(2)), None);
        let answered: Vec<_> = set.answered_objects().collect();
        assert_eq!(answered, vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(set.answer_counts(2), vec![2, 1]);
    }

    #[test]
    fn duplicate_answers_rejected() {
        let mut set = AnswerSet::new(2);
        set.record(ans(0, 0, 1)).unwrap();
        assert!(set.record(ans(0, 0, 0)).is_err());
        assert_eq!(set.total_answers(), 1);
    }

    #[test]
    fn out_of_range_object_rejected() {
        let mut set = AnswerSet::new(2);
        assert!(set.record(ans(5, 0, 0)).is_err());
    }

    #[test]
    fn iter_yields_all_answers() {
        let mut set = AnswerSet::new(2);
        set.record(ans(1, 0, 0)).unwrap();
        set.record(ans(0, 2, 1)).unwrap();
        let all: Vec<_> = set.iter().collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&ans(1, 0, 0)));
        assert!(all.contains(&ans(0, 2, 1)));
    }

    #[test]
    fn labelled_set_counts_transitions() {
        let mut ls = LabelledSet::new(4);
        assert_eq!(ls.labelled_count(), 0);
        assert_eq!(ls.unlabelled_count(), 4);
        assert!(!ls.all_labelled());

        ls.set(ObjectId(0), LabelState::Inferred(ClassId(1)))
            .unwrap();
        ls.set(ObjectId(1), LabelState::Enriched(ClassId(0)))
            .unwrap();
        assert_eq!(ls.labelled_count(), 2);
        assert_eq!(ls.enriched_count(), 1);

        // Re-labelling does not double-count.
        ls.set(ObjectId(0), LabelState::Inferred(ClassId(0)))
            .unwrap();
        assert_eq!(ls.labelled_count(), 2);

        // Un-labelling decrements.
        ls.set(ObjectId(0), LabelState::Unlabelled).unwrap();
        assert_eq!(ls.labelled_count(), 1);

        ls.set(ObjectId(0), LabelState::Inferred(ClassId(1)))
            .unwrap();
        ls.set(ObjectId(2), LabelState::Inferred(ClassId(1)))
            .unwrap();
        ls.set(ObjectId(3), LabelState::Enriched(ClassId(1)))
            .unwrap();
        assert!(ls.all_labelled());
        assert!(ls.set(ObjectId(9), LabelState::Unlabelled).is_err());
    }

    #[test]
    fn labelled_set_iterators_and_export() {
        let mut ls = LabelledSet::new(3);
        ls.set(ObjectId(1), LabelState::Inferred(ClassId(1)))
            .unwrap();
        let unl: Vec<_> = ls.unlabelled_objects().collect();
        assert_eq!(unl, vec![ObjectId(0), ObjectId(2)]);
        let lab: Vec<_> = ls.labelled_objects().collect();
        assert_eq!(lab, vec![(ObjectId(1), ClassId(1))]);
        assert_eq!(ls.to_labels(), vec![None, Some(ClassId(1)), None]);
    }

    #[test]
    fn label_state_accessors() {
        assert_eq!(LabelState::Unlabelled.label(), None);
        assert_eq!(LabelState::Inferred(ClassId(2)).label(), Some(ClassId(2)));
        assert_eq!(LabelState::Enriched(ClassId(0)).label(), Some(ClassId(0)));
        assert!(!LabelState::Unlabelled.is_labelled());
        assert!(LabelState::Enriched(ClassId(0)).is_labelled());
    }

    proptest! {
        /// The labelled counter always equals a fresh scan of the states,
        /// under any sequence of set() operations.
        #[test]
        fn prop_labelled_count_matches_scan(ops in proptest::collection::vec(
            (0usize..8, 0usize..3), 0..64)) {
            let mut ls = LabelledSet::new(8);
            for (obj, kind) in ops {
                let state = match kind {
                    0 => LabelState::Unlabelled,
                    1 => LabelState::Inferred(ClassId(0)),
                    _ => LabelState::Enriched(ClassId(1)),
                };
                ls.set(ObjectId(obj), state).unwrap();
                let scan = (0..8).filter(|&i| ls.state(ObjectId(i)).is_labelled()).count();
                prop_assert_eq!(ls.labelled_count(), scan);
                prop_assert_eq!(ls.unlabelled_count(), 8 - scan);
            }
        }

        /// total_answers always equals the flat iteration length.
        #[test]
        fn prop_answer_total_matches_iter(answers in proptest::collection::vec(
            (0usize..6, 0usize..4, 0usize..3), 0..24)) {
            let mut set = AnswerSet::new(6);
            for (o, a, c) in answers {
                // Ignore duplicate rejections; invariant must hold regardless.
                let _ = set.record(ans(o, a, c));
                prop_assert_eq!(set.total_answers(), set.iter().count());
            }
        }
    }
}
