//! # crowdrl-eval
//!
//! Metrics and experiment infrastructure for reproducing the CrowdRL
//! evaluation (§VI):
//!
//! * [`metrics`] — precision, recall, F1 and accuracy over a final
//!   labelling (the paper's three metrics, §VI-A.3), plus macro-averaged
//!   variants for multi-class tasks;
//! * [`runner`] — run a set of [`LabellingStrategy`]s over datasets and
//!   seeds, in parallel via crossbeam scoped threads, aggregating
//!   mean ± std across repetitions; includes the paper's offline
//!   cross-training helper (§VI-A.4);
//! * [`table`] — paper-style result rows and CSV output.
//!
//! [`LabellingStrategy`]: crowdrl_baselines::LabellingStrategy

pub mod metrics;
pub mod runner;
pub mod table;

pub use metrics::{evaluate_labels, Metrics};
pub use runner::{cross_train, CellResult, Condition, ExperimentGrid};
