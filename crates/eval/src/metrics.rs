//! Labelling-quality metrics (§VI-A.3): precision, recall, F1, accuracy.
//!
//! The paper's datasets are binary with `positive` as the class of
//! interest; we fix class 0 as positive by convention (the generators put
//! the "positive" class first). Unlabelled objects count as *not*
//! predicted positive and as incorrect for accuracy — a framework that
//! runs out of budget is penalized for what it failed to label, exactly as
//! a deployment would be.

use crowdrl_types::{ClassId, Dataset, Error, ObjectId, Result};

/// Quality metrics for one labelling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Fraction of all objects labelled correctly (unlabelled = wrong).
    pub accuracy: f64,
    /// Binary precision of the positive class (class 0).
    pub precision: f64,
    /// Binary recall of the positive class.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Macro-averaged precision over all classes.
    pub macro_precision: f64,
    /// Macro-averaged recall over all classes.
    pub macro_recall: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Fraction of objects that received any label.
    pub coverage: f64,
}

/// Score `labels` against the dataset's hidden ground truth.
#[allow(clippy::needless_range_loop)] // index spans several parallel structures
pub fn evaluate_labels(dataset: &Dataset, labels: &[Option<ClassId>]) -> Result<Metrics> {
    if labels.len() != dataset.len() {
        return Err(Error::DimensionMismatch {
            expected: dataset.len(),
            actual: labels.len(),
            context: "metrics labels".into(),
        });
    }
    let k = dataset.num_classes();
    let n = dataset.len();
    // Per-class counts: tp, predicted (fp+tp), actual (fn+tp).
    let mut tp = vec![0usize; k];
    let mut predicted = vec![0usize; k];
    let mut actual = vec![0usize; k];
    let mut correct = 0usize;
    let mut covered = 0usize;
    for i in 0..n {
        let truth = dataset.truth(i);
        actual[truth.index()] += 1;
        if let Some(pred) = labels[i] {
            if pred.index() >= k {
                return Err(Error::IndexOutOfBounds {
                    index: pred.index(),
                    len: k,
                    context: format!("predicted label for {}", ObjectId(i)),
                });
            }
            covered += 1;
            predicted[pred.index()] += 1;
            if pred == truth {
                correct += 1;
                tp[pred.index()] += 1;
            }
        }
    }
    let prec = |c: usize| {
        if predicted[c] > 0 {
            tp[c] as f64 / predicted[c] as f64
        } else {
            0.0
        }
    };
    let rec = |c: usize| {
        if actual[c] > 0 {
            tp[c] as f64 / actual[c] as f64
        } else {
            0.0
        }
    };
    let f1_of = |p: f64, r: f64| {
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    };

    let precision = prec(0);
    let recall = rec(0);
    let macro_precision = (0..k).map(prec).sum::<f64>() / k as f64;
    let macro_recall = (0..k).map(rec).sum::<f64>() / k as f64;
    let macro_f1 = (0..k).map(|c| f1_of(prec(c), rec(c))).sum::<f64>() / k as f64;
    Ok(Metrics {
        accuracy: correct as f64 / n as f64,
        precision,
        recall,
        f1: f1_of(precision, recall),
        macro_precision,
        macro_recall,
        macro_f1,
        coverage: covered as f64 / n as f64,
    })
}

impl Metrics {
    /// Element-wise mean of several metric sets (seed aggregation).
    pub fn mean(items: &[Metrics]) -> Option<Metrics> {
        if items.is_empty() {
            return None;
        }
        let n = items.len() as f64;
        let sum = |f: fn(&Metrics) -> f64| items.iter().map(f).sum::<f64>() / n;
        Some(Metrics {
            accuracy: sum(|m| m.accuracy),
            precision: sum(|m| m.precision),
            recall: sum(|m| m.recall),
            f1: sum(|m| m.f1),
            macro_precision: sum(|m| m.macro_precision),
            macro_recall: sum(|m| m.macro_recall),
            macro_f1: sum(|m| m.macro_f1),
            coverage: sum(|m| m.coverage),
        })
    }

    /// Standard deviation of the accuracy across repetitions.
    pub fn accuracy_std(items: &[Metrics]) -> f64 {
        if items.len() < 2 {
            return 0.0;
        }
        let mean = items.iter().map(|m| m.accuracy).sum::<f64>() / items.len() as f64;
        let var = items
            .iter()
            .map(|m| (m.accuracy - mean).powi(2))
            .sum::<f64>()
            / (items.len() - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dataset(truths: &[usize], k: usize) -> Dataset {
        Dataset::new(
            "t",
            vec![0.0; truths.len()],
            1,
            truths.iter().map(|&c| ClassId(c)).collect(),
            k,
        )
        .unwrap()
    }

    fn labels(preds: &[Option<usize>]) -> Vec<Option<ClassId>> {
        preds.iter().map(|p| p.map(ClassId)).collect()
    }

    #[test]
    fn perfect_labelling_scores_one() {
        let d = dataset(&[0, 1, 0, 1], 2);
        let m = evaluate_labels(&d, &labels(&[Some(0), Some(1), Some(0), Some(1)])).unwrap();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.macro_f1, 1.0);
        assert_eq!(m.coverage, 1.0);
    }

    #[test]
    fn known_confusion_case() {
        // truth:  0 0 0 1 1
        // pred:   0 0 1 0 1
        let d = dataset(&[0, 0, 0, 1, 1], 2);
        let m =
            evaluate_labels(&d, &labels(&[Some(0), Some(0), Some(1), Some(0), Some(1)])).unwrap();
        assert!((m.accuracy - 0.6).abs() < 1e-12);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12); // 2 tp / 3 predicted 0
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12); // 2 tp / 3 actual 0
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unlabelled_objects_hurt_accuracy_and_recall() {
        let d = dataset(&[0, 0, 1, 1], 2);
        let m = evaluate_labels(&d, &labels(&[Some(0), None, Some(1), None])).unwrap();
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        assert!((m.coverage - 0.5).abs() < 1e-12);
        // All *made* predictions were right: precision 1, recall ½.
        assert_eq!(m.precision, 1.0);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_zero_not_nan() {
        // Never predicts positive.
        let d = dataset(&[0, 0], 2);
        let m = evaluate_labels(&d, &labels(&[Some(1), Some(1)])).unwrap();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        // Nothing labelled at all.
        let m = evaluate_labels(&d, &labels(&[None, None])).unwrap();
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.coverage, 0.0);
        assert!(!m.f1.is_nan());
    }

    #[test]
    fn multiclass_macro_averages() {
        // 3 classes, one mistake.
        let d = dataset(&[0, 1, 2], 3);
        let m = evaluate_labels(&d, &labels(&[Some(0), Some(1), Some(1)])).unwrap();
        assert!((m.accuracy - 2.0 / 3.0).abs() < 1e-12);
        // prec: c0=1, c1=1/2, c2=0 -> macro 0.5
        assert!((m.macro_precision - 0.5).abs() < 1e-12);
        // rec: 1, 1, 0 -> 2/3
        assert!((m.macro_recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shape_errors() {
        let d = dataset(&[0, 1], 2);
        assert!(evaluate_labels(&d, &labels(&[Some(0)])).is_err());
        assert!(evaluate_labels(&d, &labels(&[Some(0), Some(7)])).is_err());
    }

    #[test]
    fn mean_and_std_aggregate() {
        let d = dataset(&[0, 1], 2);
        let a = evaluate_labels(&d, &labels(&[Some(0), Some(1)])).unwrap();
        let b = evaluate_labels(&d, &labels(&[Some(1), Some(0)])).unwrap();
        let mean = Metrics::mean(&[a, b]).unwrap();
        assert!((mean.accuracy - 0.5).abs() < 1e-12);
        assert!(Metrics::accuracy_std(&[a, b]) > 0.0);
        assert_eq!(Metrics::accuracy_std(&[a]), 0.0);
        assert!(Metrics::mean(&[]).is_none());
    }

    proptest! {
        /// All metrics stay within [0,1] and F1 is the harmonic mean.
        #[test]
        fn prop_metrics_bounded(truths in proptest::collection::vec(0usize..2, 1..32),
                                preds in proptest::collection::vec(
                                    proptest::option::of(0usize..2), 1..32)) {
            let n = truths.len().min(preds.len());
            let d = dataset(&truths[..n], 2);
            let m = evaluate_labels(&d, &labels(&preds[..n])).unwrap();
            for v in [m.accuracy, m.precision, m.recall, m.f1, m.coverage,
                      m.macro_precision, m.macro_recall, m.macro_f1] {
                prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
            }
            if m.precision + m.recall > 0.0 {
                let want = 2.0 * m.precision * m.recall / (m.precision + m.recall);
                prop_assert!((m.f1 - want).abs() < 1e-9);
            } else {
                prop_assert_eq!(m.f1, 0.0);
            }
        }
    }
}
