//! Paper-style result tables and CSV output.

use crate::runner::CellResult;
use std::fmt::Write as _;
use std::path::Path;

/// Render a metric (selected by `pick`) as a strategies × datasets table,
/// strategies as rows — the layout of the paper's figures.
pub fn format_grid(title: &str, cells: &[CellResult], pick: fn(&CellResult) -> f64) -> String {
    let mut datasets: Vec<String> = Vec::new();
    let mut strategies: Vec<String> = Vec::new();
    for c in cells {
        if !datasets.contains(&c.dataset) {
            datasets.push(c.dataset.clone());
        }
        if !strategies.contains(&c.strategy) {
            strategies.push(c.strategy.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:<12}", "method");
    for d in &datasets {
        let _ = write!(out, "{d:>12}");
    }
    let _ = writeln!(out);
    for s in &strategies {
        let _ = write!(out, "{s:<12}");
        for d in &datasets {
            let cell = cells.iter().find(|c| &c.strategy == s && &c.dataset == d);
            match cell {
                Some(c) => {
                    let _ = write!(out, "{:>12.4}", pick(c));
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Write cells as CSV: one row per (strategy, dataset) with all metrics.
pub fn write_csv(path: &Path, cells: &[CellResult]) -> std::io::Result<()> {
    let mut out = String::from(
        "strategy,dataset,accuracy,accuracy_std,precision,recall,f1,\
         macro_f1,coverage,budget_spent,runs\n",
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{}",
            c.strategy,
            c.dataset,
            c.metrics.accuracy,
            c.accuracy_std,
            c.metrics.precision,
            c.metrics.recall,
            c.metrics.f1,
            c.metrics.macro_f1,
            c.metrics.coverage,
            c.budget_spent,
            c.runs
        );
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn cell(strategy: &str, dataset: &str, acc: f64) -> CellResult {
        CellResult {
            strategy: strategy.into(),
            dataset: dataset.into(),
            metrics: Metrics {
                accuracy: acc,
                precision: acc,
                recall: acc,
                f1: acc,
                macro_precision: acc,
                macro_recall: acc,
                macro_f1: acc,
                coverage: 1.0,
            },
            accuracy_std: 0.01,
            budget_spent: 100.0,
            runs: 3,
        }
    }

    #[test]
    fn format_grid_lays_out_rows_and_columns() {
        let cells = vec![
            cell("DLTA", "s12cp", 0.8),
            cell("DLTA", "fashion", 0.85),
            cell("CrowdRL", "s12cp", 0.92),
            cell("CrowdRL", "fashion", 0.95),
        ];
        let s = format_grid("Fig 4: precision", &cells, |c| c.metrics.precision);
        assert!(s.contains("# Fig 4: precision"));
        assert!(s.contains("s12cp"));
        assert!(s.contains("fashion"));
        assert!(s.contains("DLTA"));
        assert!(s.contains("0.9200"));
        // Missing cells render as '-'.
        let partial = vec![cell("DLTA", "a", 0.5), cell("CrowdRL", "b", 0.6)];
        let s = format_grid("t", &partial, |c| c.metrics.accuracy);
        assert!(s.contains('-'));
    }

    #[test]
    fn write_csv_round_trips() {
        let dir = std::env::temp_dir().join("crowdrl-eval-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(&path, &[cell("CrowdRL", "s3cp", 0.9)]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("strategy,dataset"));
        assert!(content.contains("CrowdRL,s3cp,0.900000"));
        std::fs::remove_file(&path).unwrap();
    }
}
