//! Experiment runner: strategies × datasets × seeds, in parallel.
//!
//! Every (strategy, dataset, repetition) cell gets its own RNG stream
//! derived from the master seed, so results are reproducible regardless of
//! thread scheduling; workers pull jobs from a shared queue over crossbeam
//! channels.

use crate::metrics::{evaluate_labels, Metrics};
use crowdrl_baselines::{BaselineParams, LabellingStrategy};
use crowdrl_core::{CrowdRl, CrowdRlConfig};
use crowdrl_obs as obs;
use crowdrl_sim::AnnotatorPool;
use crowdrl_types::rng::{derive_seed, seeded};
use crowdrl_types::{Dataset, Error, Result};
use std::time::Instant;

/// One experiment condition: a dataset, its annotator pool, and the shared
/// budget parameters.
pub struct Condition {
    /// The dataset to label.
    pub dataset: Dataset,
    /// The annotator pool.
    pub pool: AnnotatorPool,
    /// Budget and shared knobs.
    pub params: BaselineParams,
}

/// Aggregated result of one (strategy, condition) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Strategy display name.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Mean metrics over repetitions.
    pub metrics: Metrics,
    /// Standard deviation of accuracy over repetitions.
    pub accuracy_std: f64,
    /// Mean budget spent.
    pub budget_spent: f64,
    /// Repetitions that completed.
    pub runs: usize,
}

/// A strategies × conditions experiment grid.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    /// Independent repetitions per cell (different seeds).
    pub repetitions: usize,
    /// Master seed; every cell derives its own stream.
    pub master_seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for ExperimentGrid {
    fn default() -> Self {
        Self {
            repetitions: 3,
            master_seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

impl ExperimentGrid {
    /// Run every strategy on every condition; returns one [`CellResult`]
    /// per (strategy, condition) in row-major order (strategy-major).
    pub fn run(
        &self,
        strategies: &[Box<dyn LabellingStrategy>],
        conditions: &[Condition],
    ) -> Result<Vec<CellResult>> {
        if self.repetitions == 0 {
            return Err(Error::InvalidParameter(
                "repetitions must be positive".into(),
            ));
        }
        obs::init_from_env();
        let grid_span = obs::span("eval.grid");
        let jobs: Vec<(usize, usize, usize)> = (0..strategies.len())
            .flat_map(|s| {
                (0..conditions.len())
                    .flat_map(move |c| (0..self.repetitions).map(move |r| (s, c, r)))
            })
            .collect();
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.threads
        }
        .min(jobs.len().max(1));

        // (strategy, condition) -> per-rep (metrics, spent)
        let mut collected: Vec<Vec<(Metrics, f64)>> =
            vec![Vec::new(); strategies.len() * conditions.len()];

        let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, usize, usize)>();
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<Result<(usize, usize, Metrics, f64)>>();
        for job in &jobs {
            if job_tx.send(*job).is_err() {
                return Err(Error::NumericalFailure(
                    "experiment job queue disconnected".into(),
                ));
            }
        }
        drop(job_tx);

        crossbeam::scope(|scope| {
            for _ in 0..threads {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let master = self.master_seed;
                scope.spawn(move |_| {
                    while let Ok((si, ci, rep)) = job_rx.recv() {
                        let condition = &conditions[ci];
                        let stream = (si as u64) << 32 | (ci as u64) << 16 | rep as u64;
                        let seed = derive_seed(master, stream);
                        // A panicking strategy must not poison the whole
                        // grid: trap the panic per job and surface it as an
                        // `Err` naming the derived seed, so the failing run
                        // is reproducible in isolation. The collector keeps
                        // draining, so nothing hangs.
                        let job_start = Instant::now();
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut rng = seeded(seed);
                            strategies[si]
                                .run(
                                    &condition.dataset,
                                    &condition.pool,
                                    &condition.params,
                                    &mut rng,
                                )
                                .and_then(|outcome| {
                                    evaluate_labels(&condition.dataset, &outcome.labels)
                                        .map(|m| (si, ci, m, outcome.budget_spent))
                                })
                        }))
                        .unwrap_or_else(|_| {
                            Err(Error::NumericalFailure(format!(
                                "experiment worker panicked on strategy {si}, \
                                 condition {ci}, rep {rep} (seed {seed})"
                            )))
                        });
                        if obs::enabled() {
                            // Trace which derived seed each cell ran under
                            // and how long the rep took, so a slow or
                            // failing run can be replayed in isolation.
                            let wall_s = job_start.elapsed().as_secs_f64();
                            obs::annotate_kv(
                                "eval.seed",
                                &format!(
                                    "strategy {si} condition {ci} rep {rep} \
                                     seed {seed} wall {wall_s:.3}s"
                                ),
                                &[
                                    ("strategy", si as f64),
                                    ("condition", ci as f64),
                                    ("rep", rep as f64),
                                    ("seed", seed as f64),
                                    ("wall_s", wall_s),
                                ],
                            );
                        }
                        if res_tx.send(out).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            for res in res_rx.iter() {
                let (si, ci, m, spent) = res?;
                collected[si * conditions.len() + ci].push((m, spent));
            }
            Ok::<(), Error>(())
        })
        .map_err(|_| Error::NumericalFailure("experiment worker panicked".into()))??;
        drop(grid_span);
        obs::checkpoint();

        let mut out = Vec::with_capacity(collected.len());
        for (idx, cell) in collected.into_iter().enumerate() {
            let si = idx / conditions.len();
            let ci = idx % conditions.len();
            let metrics_only: Vec<Metrics> = cell.iter().map(|(m, _)| *m).collect();
            let mean = Metrics::mean(&metrics_only).ok_or_else(|| {
                Error::NumericalFailure(format!(
                    "no completed runs for {} on {}",
                    strategies[si].name(),
                    conditions[ci].dataset.name()
                ))
            })?;
            out.push(CellResult {
                strategy: strategies[si].name().to_string(),
                dataset: conditions[ci].dataset.name().to_string(),
                metrics: mean,
                accuracy_std: Metrics::accuracy_std(&metrics_only),
                budget_spent: cell.iter().map(|(_, s)| s).sum::<f64>() / cell.len() as f64,
                runs: cell.len(),
            });
        }
        Ok(out)
    }
}

/// How many chained passes [`cross_train`] makes over the donor list.
///
/// A DQN trained for a single episode is mostly noise — its replay pool
/// sees one trajectory and the learned preferences barely beat the random
/// init. Several episodes, each seeded from the previous pass's
/// parameters, is what "offline training" means in the paper; five passes
/// is where transfer quality stops improving on the built-in simulator
/// while keeping cross-training affordable in tests.
pub const CROSS_TRAIN_EPISODES: usize = 5;

/// The paper's offline cross-training (§VI-A.4): train the Q-network by
/// running CrowdRL on *other* datasets for [`CROSS_TRAIN_EPISODES`] passes,
/// chaining the learned parameters between runs, and return the final
/// parameter vector for deployment on the target dataset.
pub fn cross_train(
    base_config: &CrowdRlConfig,
    donors: &[Condition],
    master_seed: u64,
) -> Result<Vec<f32>> {
    let mut params: Option<Vec<f32>> = None;
    for (i, donor) in donors
        .iter()
        .cycle()
        .take(donors.len() * CROSS_TRAIN_EPISODES)
        .enumerate()
    {
        let mut config = base_config.clone();
        config.budget = donor.params.budget;
        config.initial_ratio = donor.params.initial_ratio;
        config.assignment_k = donor.params.assignment_k;
        config.batch_per_iter = donor.params.batch_per_iter;
        config.pretrained_dqn = params.clone();
        let mut rng = seeded(derive_seed(master_seed, i as u64));
        let (_, trained) =
            CrowdRl::new(config).run_detailed(&donor.dataset, &donor.pool, &mut rng)?;
        params = Some(trained);
    }
    params.ok_or_else(|| Error::InvalidParameter("cross_train needs at least one donor".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_baselines::CrowdRlStrategy;
    use crowdrl_sim::{DatasetSpec, PoolSpec};

    fn condition(n: usize, budget: f64, seed: u64) -> Condition {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("grid-test", n, 3, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        Condition {
            dataset,
            pool,
            params: BaselineParams::with_budget(budget),
        }
    }

    #[test]
    fn grid_runs_all_cells_deterministically() {
        let strategies: Vec<Box<dyn LabellingStrategy>> = vec![
            Box::new(crowdrl_baselines::Dlta::default()),
            Box::new(CrowdRlStrategy::full()),
        ];
        let conditions = vec![condition(30, 100.0, 1)];
        let grid = ExperimentGrid {
            repetitions: 2,
            master_seed: 7,
            threads: 2,
        };
        let a = grid.run(&strategies, &conditions).unwrap();
        let b = grid.run(&strategies, &conditions).unwrap();
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.strategy, y.strategy);
            assert_eq!(x.metrics.accuracy, y.metrics.accuracy);
            assert_eq!(x.runs, 2);
        }
        // Cells are strategy-major.
        assert_eq!(a[0].strategy, "DLTA");
        assert_eq!(a[1].strategy, "CrowdRL");
    }

    /// A strategy that dies mid-run: the grid must surface a proper error
    /// naming the failing seed instead of hanging or unwinding the caller.
    struct PanickingStrategy;

    impl LabellingStrategy for PanickingStrategy {
        fn name(&self) -> &'static str {
            "Panic"
        }

        fn run(
            &self,
            _dataset: &Dataset,
            _pool: &AnnotatorPool,
            _params: &BaselineParams,
            _rng: &mut dyn rand::RngCore,
        ) -> Result<crowdrl_core::LabellingOutcome> {
            panic!("poisoned job");
        }
    }

    #[test]
    fn panicking_strategy_reports_failing_seed_without_hanging() {
        let strategies: Vec<Box<dyn LabellingStrategy>> = vec![Box::new(PanickingStrategy)];
        let conditions = vec![condition(10, 30.0, 6)];
        let grid = ExperimentGrid {
            repetitions: 2,
            master_seed: 9,
            threads: 1, // deterministic job order: rep 0 fails first
        };
        let err = grid.run(&strategies, &conditions).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "{msg}");
        let expected_seed = derive_seed(9, 0);
        assert!(msg.contains(&format!("seed {expected_seed}")), "{msg}");
    }

    #[test]
    fn rejects_zero_repetitions() {
        let grid = ExperimentGrid {
            repetitions: 0,
            ..Default::default()
        };
        assert!(grid.run(&[], &[]).is_err());
    }

    #[test]
    fn cross_train_produces_params() {
        let config = CrowdRlConfig::builder().budget(60.0).build().unwrap();
        let donors = vec![condition(20, 60.0, 2), condition(20, 60.0, 3)];
        let params = cross_train(&config, &donors, 11).unwrap();
        assert!(!params.is_empty());
        assert!(params.iter().all(|p| p.is_finite()));
        // Pretrained params feed a new run.
        let target = condition(20, 60.0, 4);
        let config = CrowdRlConfig::builder()
            .budget(60.0)
            .pretrained_dqn(params)
            .build()
            .unwrap();
        let mut rng = seeded(5);
        let outcome = CrowdRl::new(config)
            .run(&target.dataset, &target.pool, &mut rng)
            .unwrap();
        assert!(outcome.coverage() > 0.0);
        assert!(cross_train(
            &CrowdRlConfig::builder().budget(1.0).build().unwrap(),
            &[],
            0
        )
        .is_err());
    }
}
