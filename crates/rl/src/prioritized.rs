//! Prioritized experience replay (Schaul et al., the paper's \[30\]):
//! transitions are sampled proportionally to their last TD error, so the
//! network rehearses the experiences it predicts worst.
//!
//! Proportional variant with a sum-tree for O(log n) sampling and updates.
//! Priorities are `(|δ| + ε)^α`; importance-sampling weights are left to
//! the caller (the CrowdRL loop's small batches make uncorrected updates
//! acceptable, matching the paper's plain-DQN usage — this type exists for
//! the ablation comparing uniform vs prioritized replay).

use crate::replay::Transition;
use rand::Rng;

/// A fixed-capacity prioritized replay pool (proportional, sum-tree).
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    capacity: usize,
    /// Priority exponent α (0 = uniform).
    alpha: f64,
    /// Small constant keeping every priority positive.
    epsilon: f64,
    /// Sum-tree over `2*capacity` nodes; leaves at `capacity..2*capacity`.
    tree: Vec<f64>,
    data: Vec<Option<Transition>>,
    /// Next write slot (ring).
    head: usize,
    len: usize,
    /// Priority assigned to fresh transitions (max seen so far).
    max_priority: f64,
}

impl PrioritizedReplay {
    /// A pool of at most `capacity` transitions with priority exponent
    /// `alpha`. Panics if capacity is zero or alpha is negative.
    pub fn new(capacity: usize, alpha: f64) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        Self {
            capacity,
            alpha,
            epsilon: 1e-3,
            tree: vec![0.0; 2 * capacity],
            data: vec![None; capacity],
            head: 0,
            len: 0,
            max_priority: 1.0,
        }
    }

    /// Current size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no transition is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total priority mass (diagnostics/tests).
    pub fn total_priority(&self) -> f64 {
        self.tree[1]
    }

    fn set_leaf(&mut self, slot: usize, priority: f64) {
        let mut idx = self.capacity + slot;
        self.tree[idx] = priority;
        while idx > 1 {
            idx /= 2;
            self.tree[idx] = self.tree[2 * idx] + self.tree[2 * idx + 1];
        }
    }

    /// Insert a transition with maximal priority (it will be replayed soon
    /// and its true TD error learned).
    pub fn push(&mut self, t: Transition) {
        let slot = self.head;
        self.data[slot] = Some(t);
        let p = self.max_priority;
        self.set_leaf(slot, p);
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Sample `batch` slots proportionally to priority. Returns
    /// `(slot, &transition)` pairs; pass the slots back to
    /// [`PrioritizedReplay::update_priority`] after computing TD errors.
    /// Slots may repeat (sampling is with replacement, as in the paper).
    pub fn sample<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> Vec<(usize, &Transition)> {
        let total = self.tree[1];
        if self.len == 0 || total <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(batch);
        for _ in 0..batch.min(self.len * 4) {
            let mut mass = rng.random::<f64>() * total;
            let mut idx = 1;
            while idx < self.capacity {
                let left = self.tree[2 * idx];
                if mass < left {
                    idx *= 2;
                } else {
                    mass -= left;
                    idx = 2 * idx + 1;
                }
            }
            let slot = idx - self.capacity;
            if let Some(t) = self.data[slot].as_ref() {
                out.push((slot, t));
            }
            if out.len() == batch {
                break;
            }
        }
        out
    }

    /// Update a slot's priority from its freshly-computed TD error.
    pub fn update_priority(&mut self, slot: usize, td_error: f64) {
        if slot >= self.capacity || self.data[slot].is_none() {
            return;
        }
        let p = (td_error.abs() + self.epsilon).powf(self.alpha);
        self.max_priority = self.max_priority.max(p);
        self.set_leaf(slot, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    fn t(tag: f32) -> Transition {
        Transition {
            state_action: vec![tag],
            reward: tag,
            next_candidates: vec![].into(),
            terminal: true,
        }
    }

    #[test]
    fn push_and_ring_eviction() {
        let mut pr = PrioritizedReplay::new(3, 0.6);
        assert!(pr.is_empty());
        for i in 0..5 {
            pr.push(t(i as f32));
        }
        assert_eq!(pr.len(), 3);
        // Slots now hold transitions 3, 4, 2 (ring).
        let mut rng = seeded(1);
        let tags: Vec<i32> = pr
            .sample(16, &mut rng)
            .iter()
            .map(|(_, tr)| tr.reward as i32)
            .collect();
        assert!(tags.iter().all(|&x| x >= 2));
    }

    #[test]
    fn high_priority_transitions_dominate_sampling() {
        let mut pr = PrioritizedReplay::new(4, 1.0);
        for i in 0..4 {
            pr.push(t(i as f32));
        }
        // Give slot 0 a huge TD error, the rest tiny ones.
        pr.update_priority(0, 100.0);
        for slot in 1..4 {
            pr.update_priority(slot, 0.001);
        }
        let mut rng = seeded(2);
        let mut hits = 0;
        let draws = 2000;
        for _ in 0..draws {
            for (slot, _) in pr.sample(1, &mut rng) {
                if slot == 0 {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 / draws as f64 > 0.95, "hits {hits}/{draws}");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let mut pr = PrioritizedReplay::new(4, 0.0);
        for i in 0..4 {
            pr.push(t(i as f32));
        }
        pr.update_priority(0, 100.0);
        pr.update_priority(1, 0.001);
        pr.update_priority(2, 0.001);
        pr.update_priority(3, 0.001);
        let mut rng = seeded(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            for (slot, _) in pr.sample(1, &mut rng) {
                counts[slot] += 1;
            }
        }
        // With alpha = 0 all priorities are 1 regardless of TD error.
        for &c in &counts {
            assert!((c as f64 / 8000.0 - 0.25).abs() < 0.03, "counts {counts:?}");
        }
    }

    #[test]
    fn total_priority_tracks_leaves() {
        let mut pr = PrioritizedReplay::new(8, 1.0);
        assert_eq!(pr.total_priority(), 0.0);
        pr.push(t(1.0));
        pr.push(t(2.0));
        let before = pr.total_priority();
        pr.update_priority(0, 9.0);
        assert!(pr.total_priority() > before);
        // Updating a vacant slot is a no-op.
        let now = pr.total_priority();
        pr.update_priority(7, 50.0);
        assert_eq!(pr.total_priority(), now);
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let pr = PrioritizedReplay::new(4, 0.5);
        let mut rng = seeded(4);
        assert!(pr.sample(3, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "replay capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PrioritizedReplay::new(0, 0.5);
    }
}
