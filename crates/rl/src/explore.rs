//! Exploration policies for action selection.
//!
//! The paper replaces plain greedy selection with a UCB1-style bonus
//! (Eq. 6):
//!
//! ```text
//! A(t) = argmax_{A'} [ Q(S(t), A') + sqrt(2 ln n' / n) ]
//! ```
//!
//! where `n` counts how often action `A'` was chosen and `n'` counts total
//! selections — repeatedly-picked actions lose their bonus, under-explored
//! ones gain. [`EpsilonGreedy`] is provided as the classical alternative
//! for the exploration-strategy ablation bench.

use rand::Rng;
use std::collections::HashMap;

/// UCB1 exploration state: per-action pick counts plus a global counter.
///
/// Actions are identified by an opaque `u64` key (CrowdRL packs
/// object/annotator indices). Unpicked actions receive the maximal bonus so
/// every action is tried before any is repeated, as in classical UCB1.
#[derive(Debug, Clone)]
pub struct UcbExplorer {
    counts: HashMap<u64, u64>,
    total: u64,
    /// Bonus scale multiplier (1.0 = the paper's Eq. 6).
    pub scale: f64,
}

impl Default for UcbExplorer {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl UcbExplorer {
    /// Explorer with a bonus multiplier (1.0 reproduces Eq. 6).
    pub fn new(scale: f64) -> Self {
        assert!(scale >= 0.0, "scale must be non-negative");
        Self {
            counts: HashMap::new(),
            total: 0,
            scale,
        }
    }

    /// The exploration-adjusted score `Q + scale * sqrt(2 ln n' / n)`.
    ///
    /// Never-picked actions score `f64::INFINITY` (forced first trial),
    /// unless the explorer has made no selections at all yet (bonus 0).
    pub fn score(&self, q: f64, action: u64) -> f64 {
        if self.total == 0 || self.scale == 0.0 {
            return q;
        }
        match self.counts.get(&action) {
            None | Some(0) => f64::INFINITY,
            Some(&n) => q + self.scale * (2.0 * (self.total as f64).ln() / n as f64).sqrt(),
        }
    }

    /// Like [`UcbExplorer::score`], but never-picked actions are scored as
    /// if picked once (`q + scale·sqrt(2 ln n')`) instead of infinity.
    ///
    /// Classical UCB1 forces every arm to be tried before any repeats; with
    /// CrowdRL's `|O|·|W|` action space and a budget far smaller than one
    /// trial per pair, that degenerates to index-order selection. The soft
    /// bonus keeps unexplored actions attractive without drowning the
    /// Q-values.
    pub fn score_soft(&self, q: f64, action: u64) -> f64 {
        if self.total == 0 || self.scale == 0.0 {
            return q;
        }
        let n = self.counts.get(&action).copied().unwrap_or(0).max(1);
        q + self.scale * (2.0 * (self.total as f64).ln() / n as f64).sqrt()
    }

    /// The additive bonus term of [`UcbExplorer::score_soft`]:
    /// `score_soft(q, a) == q + bonus_soft(a)` for every finite `q`, with
    /// the identical floating-point expression — the decide path's
    /// shortlist bounds rely on the bonus being a per-action constant it
    /// can add to a Q upper bound.
    pub fn bonus_soft(&self, action: u64) -> f64 {
        if self.total == 0 || self.scale == 0.0 {
            return 0.0;
        }
        let n = self.counts.get(&action).copied().unwrap_or(0).max(1);
        self.scale * (2.0 * (self.total as f64).ln() / n as f64).sqrt()
    }

    /// Record that `action` was selected.
    pub fn record(&mut self, action: u64) {
        *self.counts.entry(action).or_insert(0) += 1;
        self.total += 1;
    }

    /// Times `action` has been selected.
    pub fn count(&self, action: u64) -> u64 {
        self.counts.get(&action).copied().unwrap_or(0)
    }

    /// Total selections across all actions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Forget all counts (new episode).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// The per-action counts sorted by action key (deterministic order),
    /// for checkpointing.
    pub fn export_counts(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable();
        out
    }

    /// Restore counts captured by [`UcbExplorer::export_counts`]. The
    /// total is re-derived as their sum.
    pub fn restore_counts(&mut self, counts: &[(u64, u64)]) {
        self.counts = counts.iter().copied().collect();
        self.total = counts.iter().map(|&(_, n)| n).sum();
    }
}

/// Classical ε-greedy with linear decay.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    /// Initial exploration probability.
    pub epsilon_start: f64,
    /// Final exploration probability.
    pub epsilon_end: f64,
    /// Steps over which ε decays linearly.
    pub decay_steps: u64,
    steps: u64,
}

impl EpsilonGreedy {
    /// A policy decaying from `start` to `end` over `decay_steps` calls.
    pub fn new(start: f64, end: f64, decay_steps: u64) -> Self {
        assert!((0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end));
        Self {
            epsilon_start: start,
            epsilon_end: end,
            decay_steps: decay_steps.max(1),
            steps: 0,
        }
    }

    /// Current ε.
    pub fn epsilon(&self) -> f64 {
        let frac = (self.steps as f64 / self.decay_steps as f64).min(1.0);
        self.epsilon_start + (self.epsilon_end - self.epsilon_start) * frac
    }

    /// Decide whether to explore this step (advances the decay clock).
    pub fn should_explore<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let explore = rng.random::<f64>() < self.epsilon();
        self.steps += 1;
        explore
    }

    /// Decay-clock position, for checkpointing.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Restore the decay clock captured by [`EpsilonGreedy::steps`].
    pub fn set_steps(&mut self, steps: u64) {
        self.steps = steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    #[test]
    fn unpicked_actions_get_infinite_bonus_after_first_pick() {
        let mut ucb = UcbExplorer::default();
        assert_eq!(ucb.score(0.5, 1), 0.5); // nothing recorded yet
        ucb.record(1);
        assert_eq!(ucb.score(0.5, 2), f64::INFINITY);
        assert!(ucb.score(0.5, 1).is_finite());
    }

    #[test]
    fn bonus_decays_with_repeated_selection() {
        let mut ucb = UcbExplorer::default();
        for _ in 0..10 {
            ucb.record(1);
        }
        ucb.record(2);
        let bonus = |n: u64, total: u64| (2.0 * (total as f64).ln() / n as f64).sqrt();
        let s1 = ucb.score(0.0, 1);
        let s2 = ucb.score(0.0, 2);
        assert!(
            s2 > s1,
            "rarely-picked action must score higher: {s2} vs {s1}"
        );
        assert!((s1 - bonus(10, 11)).abs() < 1e-12);
        assert!((s2 - bonus(1, 11)).abs() < 1e-12);
    }

    #[test]
    fn higher_q_wins_at_equal_counts() {
        let mut ucb = UcbExplorer::default();
        ucb.record(1);
        ucb.record(2);
        assert!(ucb.score(1.0, 1) > ucb.score(0.0, 2));
    }

    #[test]
    fn scale_zero_is_pure_greedy() {
        let mut ucb = UcbExplorer::new(0.0);
        ucb.record(1);
        assert_eq!(ucb.score(0.7, 2), 0.7);
        assert_eq!(ucb.score(0.7, 1), 0.7);
    }

    #[test]
    fn reset_clears_counts() {
        let mut ucb = UcbExplorer::default();
        ucb.record(1);
        ucb.record(1);
        assert_eq!(ucb.count(1), 2);
        assert_eq!(ucb.total(), 2);
        ucb.reset();
        assert_eq!(ucb.count(1), 0);
        assert_eq!(ucb.total(), 0);
    }

    #[test]
    fn soft_score_is_finite_and_favors_unexplored() {
        let mut ucb = UcbExplorer::default();
        for _ in 0..8 {
            ucb.record(1);
        }
        let fresh = ucb.score_soft(0.0, 2);
        let stale = ucb.score_soft(0.0, 1);
        assert!(fresh.is_finite());
        assert!(fresh > stale);
        // Before any recording, soft score is the raw Q.
        let empty = UcbExplorer::default();
        assert_eq!(empty.score_soft(0.3, 9), 0.3);
    }

    #[test]
    fn bonus_soft_is_the_additive_term_of_score_soft() {
        let mut ucb = UcbExplorer::default();
        assert_eq!(ucb.bonus_soft(7), 0.0);
        for _ in 0..5 {
            ucb.record(1);
        }
        ucb.record(2);
        for action in [1u64, 2, 3] {
            for q in [-1.5f64, 0.0, 0.25, 3.0] {
                let direct = ucb.score_soft(q, action);
                let composed = q + ucb.bonus_soft(action);
                assert_eq!(direct.to_bits(), composed.to_bits());
            }
        }
        let off = UcbExplorer::new(0.0);
        assert_eq!(off.bonus_soft(1), 0.0);
    }

    #[test]
    fn epsilon_decays_linearly() {
        let mut eg = EpsilonGreedy::new(1.0, 0.1, 10);
        assert!((eg.epsilon() - 1.0).abs() < 1e-12);
        let mut rng = seeded(1);
        for _ in 0..5 {
            eg.should_explore(&mut rng);
        }
        assert!((eg.epsilon() - 0.55).abs() < 1e-12);
        for _ in 0..20 {
            eg.should_explore(&mut rng);
        }
        assert!((eg.epsilon() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn epsilon_one_always_explores() {
        let mut eg = EpsilonGreedy::new(1.0, 1.0, 1);
        let mut rng = seeded(2);
        assert!((0..50).all(|_| eg.should_explore(&mut rng)));
        let mut never = EpsilonGreedy::new(0.0, 0.0, 1);
        assert!((0..50).all(|_| !never.should_explore(&mut rng)));
    }
}
