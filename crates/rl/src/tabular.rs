//! Exact tabular Q-learning (Eq. 5) for tiny instances.
//!
//! The paper motivates the DQN by noting the exact Q-table update
//!
//! ```text
//! Q(S,A) ← (1-β) Q(S,A) + β (r + γ max_{A'} Q(S',A'))
//! ```
//!
//! is intractable at labelling scale (state space `(|C|+1)^{|O||W|}`). We
//! keep the exact version anyway: it validates the RL semantics on toy
//! MDPs in tests, and with `Q = -inf` initialization it demonstrates the
//! paper's invalid-action masking ("these Q values would retain to be -inf
//! if we initially set it as -inf").

use crowdrl_types::{Error, Result};
use std::collections::HashMap;

/// A sparse Q-table over opaque `(state, action)` keys.
#[derive(Debug, Clone)]
pub struct QTable {
    /// Learning rate β ∈ [0, 1].
    pub beta: f64,
    /// Discount γ ∈ (0, 1].
    pub gamma: f64,
    q: HashMap<(u64, u64), f64>,
    /// Default value for unseen pairs.
    default: f64,
}

impl QTable {
    /// A table with learning rate `beta`, discount `gamma`, and optimistic
    /// default 0.
    pub fn new(beta: f64, gamma: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&beta) {
            return Err(Error::InvalidParameter("beta must be in [0,1]".into()));
        }
        if !(0.0..=1.0).contains(&gamma) || gamma == 0.0 {
            return Err(Error::InvalidParameter("gamma must be in (0,1]".into()));
        }
        Ok(Self {
            beta,
            gamma,
            q: HashMap::new(),
            default: 0.0,
        })
    }

    /// Current estimate `Q(s, a)`.
    pub fn get(&self, state: u64, action: u64) -> f64 {
        self.q
            .get(&(state, action))
            .copied()
            .unwrap_or(self.default)
    }

    /// Mask an invalid action: set `Q(s, a) = -inf`, permanently
    /// (updates leave masked entries untouched, per §IV-B).
    pub fn mask(&mut self, state: u64, action: u64) {
        self.q.insert((state, action), f64::NEG_INFINITY);
    }

    /// One Bellman update (Eq. 5). `next_actions` lists the legal actions
    /// at the successor state (empty = terminal). Masked entries are
    /// skipped in the max and never updated.
    pub fn update(
        &mut self,
        state: u64,
        action: u64,
        reward: f64,
        next_state: u64,
        next_actions: &[u64],
    ) {
        let current = self.get(state, action);
        if current == f64::NEG_INFINITY {
            return; // masked: stays -inf forever
        }
        let next_max = next_actions
            .iter()
            .map(|&a| self.get(next_state, a))
            .filter(|v| *v != f64::NEG_INFINITY)
            .fold(f64::NEG_INFINITY, f64::max);
        let bootstrap = if next_max == f64::NEG_INFINITY {
            0.0
        } else {
            next_max
        };
        let target = reward + self.gamma * bootstrap;
        self.q.insert(
            (state, action),
            (1.0 - self.beta) * current + self.beta * target,
        );
    }

    /// The greedy action among `actions` at `state` (ties break toward the
    /// earlier listed action); `None` when every action is masked or the
    /// list is empty.
    pub fn greedy(&self, state: u64, actions: &[u64]) -> Option<u64> {
        let mut best: Option<(u64, f64)> = None;
        for &a in actions {
            let v = self.get(state, a);
            if v == f64::NEG_INFINITY {
                continue;
            }
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((a, v)),
            }
        }
        best.map(|(a, _)| a)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no entry has been written.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_hyperparameters() {
        assert!(QTable::new(-0.1, 0.9).is_err());
        assert!(QTable::new(1.1, 0.9).is_err());
        assert!(QTable::new(0.5, 0.0).is_err());
        assert!(QTable::new(0.5, 1.5).is_err());
    }

    #[test]
    fn update_moves_toward_target() {
        let mut q = QTable::new(0.5, 0.9).unwrap();
        q.update(0, 0, 1.0, 1, &[]); // terminal: target = 1
        assert!((q.get(0, 0) - 0.5).abs() < 1e-12);
        q.update(0, 0, 1.0, 1, &[]);
        assert!((q.get(0, 0) - 0.75).abs() < 1e-12);
    }

    /// A 3-state chain: s0 --a0--> s1 --a0--> s2(terminal, r=1).
    /// Value iteration should converge to Q(s0,a0)=γ, Q(s1,a0)=1.
    #[test]
    fn converges_on_chain_mdp() {
        let mut q = QTable::new(0.5, 0.9).unwrap();
        for _ in 0..200 {
            q.update(1, 0, 1.0, 2, &[]);
            q.update(0, 0, 0.0, 1, &[0]);
        }
        assert!((q.get(1, 0) - 1.0).abs() < 1e-6);
        assert!((q.get(0, 0) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn greedy_picks_best_unmasked() {
        let mut q = QTable::new(1.0, 0.9).unwrap();
        q.update(0, 0, 0.2, 9, &[]);
        q.update(0, 1, 0.8, 9, &[]);
        q.update(0, 2, 0.5, 9, &[]);
        assert_eq!(q.greedy(0, &[0, 1, 2]), Some(1));
        q.mask(0, 1);
        assert_eq!(q.greedy(0, &[0, 1, 2]), Some(2));
        q.mask(0, 0);
        q.mask(0, 2);
        assert_eq!(q.greedy(0, &[0, 1, 2]), None);
        assert_eq!(q.greedy(0, &[]), None);
    }

    #[test]
    fn masked_entries_survive_updates() {
        let mut q = QTable::new(0.5, 0.9).unwrap();
        q.mask(0, 0);
        q.update(0, 0, 100.0, 1, &[]);
        assert_eq!(q.get(0, 0), f64::NEG_INFINITY);
    }

    #[test]
    fn masked_successors_are_skipped_in_bootstrap() {
        let mut q = QTable::new(1.0, 1.0).unwrap();
        q.mask(1, 0);
        q.update(1, 1, 0.5, 2, &[]); // Q(1,1)=0.5
                                     // Bootstrap from state 1 must ignore the masked action 0.
        q.update(0, 0, 0.0, 1, &[0, 1]);
        assert!((q.get(0, 0) - 0.5).abs() < 1e-12);
        // All-masked successor bootstraps as 0.
        q.mask(1, 1);
        q.update(0, 1, 0.25, 1, &[0, 1]);
        assert!((q.get(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn len_tracks_entries() {
        let mut q = QTable::new(0.5, 0.9).unwrap();
        assert!(q.is_empty());
        q.update(0, 0, 1.0, 1, &[]);
        q.mask(3, 3);
        assert_eq!(q.len(), 2);
    }
}
