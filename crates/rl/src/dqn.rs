//! Deep Q-Network over state-action feature vectors.
//!
//! The paper's Q-function `Q(S(t), A(t); θ)` (Eq. 4) is approximated by an
//! MLP that maps a fixed-length embedding of (state, action) to a scalar
//! Q-value. Training minimizes the TD loss `L(θ)` (§IV-A) on minibatches
//! from the experience pool, against a periodically-synced *target*
//! network `θ⁻` (the classical DQN stabilizer):
//!
//! ```text
//! target = r + γ · max_{a'} Q(s', a'; θ⁻)        (0 if terminal)
//! L(θ)   = Huber(Q(s, a; θ) − target)
//! ```

use crate::replay::{ReplayBuffer, Transition};
use crowdrl_linalg::{Matrix, NumericMode};
use crowdrl_nn::{loss, Activation, Adam, Network};
use crowdrl_obs as obs;
use crowdrl_types::{Error, Result};
use rand::Rng;

/// DQN hyperparameters.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Width of the state-action feature embedding.
    pub input_dim: usize,
    /// Hidden-layer sizes of the Q-network.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Discount factor γ ∈ (0, 1].
    pub gamma: f32,
    /// Minibatch size for replay updates.
    pub batch_size: usize,
    /// Replay-pool capacity.
    pub replay_capacity: usize,
    /// Minimum pool size before training starts.
    pub min_replay: usize,
    /// Hard-sync the target network every this-many train steps.
    pub target_sync_every: usize,
    /// Huber loss threshold.
    pub huber_delta: f32,
    /// Per-tensor gradient clip (infinity norm).
    pub grad_clip: f32,
    /// Double-DQN targets (van Hasselt et al., the paper's \[38\], which
    /// §IV-B notes "can also be integrated into our framework"): the
    /// *online* network selects the best successor action and the *target*
    /// network evaluates it, removing the max-operator's overestimation
    /// bias. `false` uses classical DQN targets.
    pub double_dqn: bool,
    /// Matmul kernel selection for the Q-networks. `Reference` (default)
    /// is the bit-pinned blocked kernel; `Fast` enables the SIMD kernels
    /// for train-step forwards/backwards and batched inference.
    /// Checkpoints and traces are NOT interchangeable across modes.
    pub numeric: NumericMode,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            input_dim: 16,
            hidden: vec![64, 32],
            learning_rate: 1e-3,
            gamma: 0.99,
            batch_size: 32,
            replay_capacity: 10_000,
            min_replay: 64,
            target_sync_every: 100,
            huber_delta: 1.0,
            grad_clip: 5.0,
            double_dqn: false,
            numeric: NumericMode::default(),
        }
    }
}

impl DqnConfig {
    fn validate(&self) -> Result<()> {
        if self.input_dim == 0 {
            return Err(Error::InvalidParameter("input_dim must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.gamma) || self.gamma == 0.0 {
            return Err(Error::InvalidParameter("gamma must be in (0,1]".into()));
        }
        if self.batch_size == 0 || self.replay_capacity == 0 || self.target_sync_every == 0 {
            return Err(Error::InvalidParameter(
                "batch_size, replay_capacity and target_sync_every must be positive".into(),
            ));
        }
        if self.learning_rate <= 0.0 || self.huber_delta <= 0.0 || self.grad_clip <= 0.0 {
            return Err(Error::InvalidParameter(
                "learning_rate, huber_delta and grad_clip must be positive".into(),
            ));
        }
        if self.hidden.contains(&0) {
            return Err(Error::InvalidParameter(
                "hidden sizes must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A DQN agent: online network, target network, replay pool.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    config: DqnConfig,
    online: Network,
    target: Network,
    replay: ReplayBuffer,
    opt: Adam,
    train_steps: usize,
    /// Bumped whenever the *online* network's parameters change (gradient
    /// step, parameter import, snapshot restore). External caches keyed on
    /// this generation can never serve activations from stale weights.
    params_generation: u64,
    /// Bumped whenever the *target* network's parameters change (hard
    /// sync, parameter import, snapshot restore). Keys the per-slot
    /// bootstrap cache below.
    target_generation: u64,
    /// Per-replay-slot cached TD bootstrap `max_a' Q(s', a'; θ⁻)`, tagged
    /// with the target generation it was computed under. Classical-DQN
    /// bootstraps depend only on the stored successor candidates and the
    /// target parameters — both fixed between hard syncs — so a cached
    /// value is *bitwise* the value a fresh forward would produce (row
    /// independence of the forward kernels). Entries are invalidated by
    /// slot overwrite and by any target-generation bump; double-DQN
    /// bypasses the cache entirely (its argmax tracks the online network,
    /// which moves every step). This removes the dominant cost of
    /// `train_step`: the stacked successor forward, which profiles ~5-10×
    /// larger than the minibatch forward+backward itself.
    bootstrap_cache: Vec<Option<(u64, f32)>>,
    /// Reused minibatch buffers for [`train_step`](DqnAgent::train_step) —
    /// pure scratch (fully rewritten every step), excluded from snapshots.
    scratch_inputs: Option<Matrix>,
    scratch_targets: Option<Matrix>,
    scratch_bootstraps: Vec<f32>,
}

/// Reuse `slot` as an `rows x cols` scratch matrix when the shape already
/// matches; otherwise reallocate. Contents are unspecified on return — the
/// caller overwrites every element it reads.
fn ensure_shape(slot: &mut Option<Matrix>, rows: usize, cols: usize) -> &mut Matrix {
    match slot {
        Some(m) if m.rows() == rows && m.cols() == cols => {}
        _ => *slot = Some(Matrix::zeros(rows, cols)),
    }
    slot.as_mut().expect("scratch just ensured")
}

impl DqnAgent {
    /// Create an agent with freshly-initialized networks.
    pub fn new<R: Rng + ?Sized>(config: DqnConfig, rng: &mut R) -> Result<Self> {
        config.validate()?;
        let mut sizes = vec![config.input_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(1);
        let mut online = Network::mlp(&sizes, Activation::Relu, rng);
        online.set_numeric_mode(config.numeric);
        let mut target = online.clone();
        target.copy_params_from(&online);
        let replay = ReplayBuffer::new(config.replay_capacity);
        let opt = Adam::new(config.learning_rate);
        Ok(Self {
            config,
            online,
            target,
            replay,
            opt,
            train_steps: 0,
            params_generation: 0,
            target_generation: 0,
            bootstrap_cache: Vec::new(),
            scratch_inputs: None,
            scratch_targets: None,
            scratch_bootstraps: Vec::new(),
        })
    }

    /// The configuration (read-only).
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Number of gradient steps taken so far.
    pub fn train_steps(&self) -> usize {
        self.train_steps
    }

    /// Current replay-pool size.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Generation counter of the online network's parameters — bumped on
    /// every gradient step, [`import_params`](DqnAgent::import_params) and
    /// [`restore`](DqnAgent::restore). Cache activation partials keyed on
    /// this value.
    pub fn params_generation(&self) -> u64 {
        self.params_generation
    }

    /// The online network (read-only) — the decide path computes cached
    /// partials and interval bounds against its first layer directly.
    pub fn online_network(&self) -> &Network {
        &self.online
    }

    /// Q-value of one state-action embedding under the *online* network.
    pub fn q_value(&self, state_action: &[f32]) -> f32 {
        debug_assert_eq!(state_action.len(), self.config.input_dim);
        let x = Matrix::from_vec(1, state_action.len(), state_action.to_vec());
        self.online.forward_inference(&x).get(0, 0)
    }

    /// Q-values for a batch of embeddings under the online network.
    pub fn q_values(&self, state_actions: &[Vec<f32>]) -> Vec<f32> {
        if state_actions.is_empty() {
            return Vec::new();
        }
        let x = stack(state_actions, self.config.input_dim);
        let out = self.online.forward_inference(&x);
        (0..out.rows()).map(|i| out.get(i, 0)).collect()
    }

    /// Q-values for every pair of partial embeddings, where the full
    /// state-action vector of pair `(i, j)` is `concat(left[i], right[j])`.
    ///
    /// Returns pairs in row-major order: `result[i * right.len() + j]`.
    /// One factored forward (per-part first-layer partials summed per
    /// pair, then a single batched pass through the remaining layers)
    /// replaces `left.len() * right.len()` per-pair forwards; values
    /// match [`DqnAgent::q_value`] on the concatenated vector up to f32
    /// rounding (see `Network::forward_inference_outer`).
    pub fn q_values_outer(&self, left: &[Vec<f32>], right: &[Vec<f32>]) -> Vec<f32> {
        if left.is_empty() || right.is_empty() {
            return Vec::new();
        }
        let (dl, dr) = (left[0].len(), right[0].len());
        debug_assert_eq!(dl + dr, self.config.input_dim);
        let out = self
            .online
            .forward_inference_outer(&stack(left, dl), &stack(right, dr));
        (0..out.rows()).map(|i| out.get(i, 0)).collect()
    }

    /// Store a transition in the replay pool.
    pub fn remember(&mut self, t: Transition) {
        debug_assert_eq!(t.state_action.len(), self.config.input_dim);
        let slot = self.replay.push(t);
        if let Some(entry) = self.bootstrap_cache.get_mut(slot) {
            *entry = None;
        }
    }

    /// One minibatch TD update. Returns the Huber loss, or `None` when the
    /// pool is still below `min_replay`. Syncs the target network every
    /// `target_sync_every` steps.
    pub fn train_step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f32> {
        if self.replay.len() < self.config.min_replay.max(1) {
            return None;
        }
        let batch = self.replay.sample_slots(self.config.batch_size, rng);
        let n = batch.len();
        let inputs = ensure_shape(&mut self.scratch_inputs, n, self.config.input_dim);
        for (i, (_, t)) in batch.iter().enumerate() {
            inputs.row_mut(i).copy_from_slice(&t.state_action);
        }

        // TD bootstraps. Classical DQN: per-slot cache keyed on the target
        // generation — a hit is bitwise the value a fresh forward would
        // produce (forwards are row-independent), so only cache misses are
        // stacked into one target forward. Double DQN: the online argmax
        // moves every gradient step, so every transition is recomputed via
        // the original stacked path.
        self.scratch_bootstraps.clear();
        self.scratch_bootstraps.resize(n, 0.0);
        let bootstraps = &mut self.scratch_bootstraps;
        if self.config.double_dqn {
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            let mut successors: Vec<&[f32]> = Vec::new();
            for (_, t) in &batch {
                if !t.terminal {
                    successors.extend(t.next_candidates.iter().map(Vec::as_slice));
                }
                offsets.push(successors.len());
            }
            let (target_q, online_q) = if successors.is_empty() {
                (Vec::new(), Vec::new())
            } else {
                let stacked = stack_refs(&successors, self.config.input_dim);
                (
                    column0(&self.target.forward_inference(&stacked)),
                    column0(&self.online.forward_inference(&stacked)),
                )
            };
            for (i, _) in batch.iter().enumerate() {
                let (s, e) = (offsets[i], offsets[i + 1]);
                if s == e {
                    continue; // terminal, or no successor candidates
                }
                // Argmax under the online network, value under the target
                // network. `max_by` keeps the last maximum, matching the
                // per-transition scan.
                let best = online_q[s..e]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                bootstraps[i] = target_q[s + best];
            }
        } else {
            let generation = self.target_generation;
            let mut misses: Vec<usize> = Vec::new(); // positions in `batch`
            let mut miss_group: Vec<usize> = Vec::new(); // parallel to `misses`
                                                         // Transitions remembered from one assignment batch share one
                                                         // `Arc` of successor candidates, and the bootstrap is a pure
                                                         // function of that candidate set (row-independent forwards, max
                                                         // folded in candidate order) — so misses are grouped by Arc
                                                         // identity and each distinct set is forwarded once. After a
                                                         // target sync invalidates the whole cache this collapses the
                                                         // recompute storm by the sharing factor, without changing any
                                                         // bit of any bootstrap.
            let mut group_ptrs: Vec<*const Vec<f32>> = Vec::new();
            let mut offsets: Vec<usize> = Vec::new(); // per group
            let mut successors: Vec<&[f32]> = Vec::new();
            let mut hits = 0usize;
            for (i, (slot, t)) in batch.iter().enumerate() {
                if let Some(Some((cached_gen, value))) = self.bootstrap_cache.get(*slot) {
                    if *cached_gen == generation {
                        bootstraps[i] = *value;
                        hits += 1;
                        continue;
                    }
                }
                if t.terminal || t.next_candidates.is_empty() {
                    // Bootstrap is identically 0 — cache that too so the
                    // slot never re-enters the miss scan.
                    if self.bootstrap_cache.len() <= *slot {
                        self.bootstrap_cache.resize(*slot + 1, None);
                    }
                    self.bootstrap_cache[*slot] = Some((generation, 0.0));
                    continue;
                }
                let ptr = t.next_candidates.as_ptr();
                let group = group_ptrs.iter().position(|&p| std::ptr::eq(p, ptr));
                misses.push(i);
                miss_group.push(group.unwrap_or_else(|| {
                    group_ptrs.push(ptr);
                    offsets.push(successors.len());
                    successors.extend(t.next_candidates.iter().map(Vec::as_slice));
                    group_ptrs.len() - 1
                }));
            }
            offsets.push(successors.len());
            if !successors.is_empty() {
                let stacked = stack_refs(&successors, self.config.input_dim);
                let target_q = column0(&self.target.forward_inference(&stacked));
                let group_values: Vec<f32> = (0..group_ptrs.len())
                    .map(|g| {
                        target_q[offsets[g]..offsets[g + 1]]
                            .iter()
                            .copied()
                            .fold(f32::NEG_INFINITY, f32::max)
                    })
                    .collect();
                for (m, &i) in misses.iter().enumerate() {
                    let value = group_values[miss_group[m]];
                    bootstraps[i] = value;
                    let slot = batch[i].0;
                    if self.bootstrap_cache.len() <= slot {
                        self.bootstrap_cache.resize(slot + 1, None);
                    }
                    self.bootstrap_cache[slot] = Some((generation, value));
                }
            }
            if obs::enabled() {
                obs::counter_add("dqn.bootstrap.cache_hits", hits as u64);
                obs::counter_add("dqn.bootstrap.cache_misses", (n - hits) as u64);
            }
        }

        let targets = ensure_shape(&mut self.scratch_targets, n, 1);
        for (i, (_, t)) in batch.iter().enumerate() {
            targets.set(i, 0, t.reward + self.config.gamma * bootstraps[i]);
        }

        let fwd_span = obs::span("dqn.fwd");
        self.online.zero_grad();
        let pred = self.online.forward(&*inputs);
        let (l, d) = loss::huber(&pred, &*targets, self.config.huber_delta);
        drop(fwd_span);
        let bwd_span = obs::span("dqn.bwd");
        self.online.backward(&d);
        drop(bwd_span);
        let step_span = obs::span("dqn.step");
        self.online.step(&mut self.opt, Some(self.config.grad_clip));
        drop(step_span);
        self.train_steps += 1;
        self.params_generation += 1;
        if self
            .train_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.target.copy_params_from(&self.online);
            self.target_generation += 1;
        }
        if obs::enabled() {
            // Pure reads into the trace: loss, predicted-Q spread, and
            // replay size, keyed by the training-step clock.
            let step = self.train_steps as f64;
            let mut q_sum = 0.0f64;
            let mut q_max = f64::NEG_INFINITY;
            for i in 0..pred.rows() {
                let q = pred.get(i, 0) as f64;
                q_sum += q;
                q_max = q_max.max(q);
            }
            obs::gauge_step("dqn.loss", step, l as f64);
            obs::gauge_step("dqn.q_mean", step, q_sum / n as f64);
            obs::gauge_step("dqn.q_max", step, q_max);
            obs::gauge_step("dqn.replay_size", step, self.replay.len() as f64);
        }
        Some(l)
    }

    /// Force a target-network sync (e.g. at episode boundaries).
    pub fn sync_target(&mut self) {
        self.target.copy_params_from(&self.online);
        self.target_generation += 1;
    }

    /// Serialize the online network's parameters (for cross-training: train
    /// offline on other datasets, load here — §VI-A.4).
    pub fn export_params(&self) -> Vec<f32> {
        self.online.flatten_params()
    }

    /// Load parameters into both online and target networks.
    pub fn import_params(&mut self, params: &[f32]) -> Result<()> {
        if params.len() != self.online.param_count() {
            return Err(Error::DimensionMismatch {
                expected: self.online.param_count(),
                actual: params.len(),
                context: "DQN parameter import".into(),
            });
        }
        self.online.load_params(params);
        self.target.load_params(params);
        self.params_generation += 1;
        self.target_generation += 1;
        Ok(())
    }

    /// Capture the full training state — online and target weights, Adam
    /// moments, replay contents, step count — for checkpointing.
    pub fn snapshot(&self) -> DqnSnapshot {
        let (buf, head) = self.replay.contents();
        DqnSnapshot {
            online: self.online.flatten_params(),
            target: self.target.flatten_params(),
            opt_state: self.opt.state().to_vec(),
            replay: buf.to_vec(),
            replay_head: head,
            replay_pushed: self.replay.total_pushed(),
            train_steps: self.train_steps,
        }
    }

    /// Restore a state captured by [`DqnAgent::snapshot`] into an agent
    /// constructed with the same config. Training after a restore continues
    /// bit-identically to never having stopped.
    pub fn restore(&mut self, snap: DqnSnapshot) -> Result<()> {
        if snap.online.len() != self.online.param_count()
            || snap.target.len() != self.online.param_count()
        {
            return Err(Error::DimensionMismatch {
                expected: self.online.param_count(),
                actual: snap.online.len(),
                context: "DQN snapshot params".into(),
            });
        }
        if snap.replay.len() > self.config.replay_capacity {
            return Err(Error::InvalidParameter(format!(
                "restored replay ({}) exceeds capacity ({})",
                snap.replay.len(),
                self.config.replay_capacity
            )));
        }
        self.online.load_params(&snap.online);
        self.target.load_params(&snap.target);
        self.opt.restore_state(snap.opt_state);
        self.replay = ReplayBuffer::restore(
            self.config.replay_capacity,
            snap.replay,
            snap.replay_head,
            snap.replay_pushed,
        );
        self.train_steps = snap.train_steps;
        self.params_generation += 1;
        // The restored target weights and replay slots need not match
        // whatever this agent held before: discard every cached bootstrap.
        // (A resumed run recomputes values bitwise-identical to the warm
        // cache an uninterrupted run carries, so resume stays bit-exact.)
        self.target_generation += 1;
        self.bootstrap_cache.clear();
        Ok(())
    }
}

/// Serializable training state of a [`DqnAgent`].
#[derive(Debug, Clone)]
pub struct DqnSnapshot {
    /// Online-network parameters.
    pub online: Vec<f32>,
    /// Target-network parameters.
    pub target: Vec<f32>,
    /// Adam per-slot (first moment, second moment, step count).
    pub opt_state: Vec<(Vec<f32>, Vec<f32>, u64)>,
    /// Replay-pool transitions in physical (ring) order.
    pub replay: Vec<Transition>,
    /// Ring write head.
    pub replay_head: usize,
    /// Total transitions ever pushed.
    pub replay_pushed: usize,
    /// Gradient steps taken.
    pub train_steps: usize,
}

fn stack(rows: &[Vec<f32>], dim: usize) -> Matrix {
    let mut m = Matrix::zeros(rows.len(), dim);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), dim, "embedding width mismatch");
        m.row_mut(i).copy_from_slice(r);
    }
    m
}

fn stack_refs(rows: &[&[f32]], dim: usize) -> Matrix {
    let mut m = Matrix::zeros(rows.len(), dim);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), dim, "embedding width mismatch");
        m.row_mut(i).copy_from_slice(r);
    }
    m
}

fn column0(m: &Matrix) -> Vec<f32> {
    (0..m.rows()).map(|i| m.get(i, 0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    fn small_config() -> DqnConfig {
        DqnConfig {
            input_dim: 2,
            hidden: vec![16],
            learning_rate: 5e-3,
            gamma: 0.9,
            batch_size: 16,
            replay_capacity: 500,
            min_replay: 16,
            target_sync_every: 20,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation() {
        let mut rng = seeded(1);
        for mutate in [
            |c: &mut DqnConfig| c.input_dim = 0,
            |c: &mut DqnConfig| c.gamma = 0.0,
            |c: &mut DqnConfig| c.gamma = 1.5,
            |c: &mut DqnConfig| c.batch_size = 0,
            |c: &mut DqnConfig| c.learning_rate = -1.0,
            |c: &mut DqnConfig| c.hidden = vec![0],
            |c: &mut DqnConfig| c.target_sync_every = 0,
        ] {
            let mut c = small_config();
            mutate(&mut c);
            assert!(DqnAgent::new(c, &mut rng).is_err());
        }
    }

    #[test]
    fn q_values_outer_matches_per_pair_q_value() {
        let mut rng = seeded(12);
        let config = DqnConfig {
            input_dim: 5,
            hidden: vec![8, 4],
            ..Default::default()
        };
        let agent = DqnAgent::new(config, &mut rng).unwrap();
        let left = vec![vec![0.3, -0.1, 0.8], vec![1.0, 0.2, -0.5]];
        let right = vec![vec![0.7, -0.3], vec![0.0, 0.9], vec![-0.4, 0.1]];
        let outer = agent.q_values_outer(&left, &right);
        assert_eq!(outer.len(), left.len() * right.len());
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                let mut full = l.clone();
                full.extend_from_slice(r);
                let want = agent.q_value(&full);
                let got = outer[i * right.len() + j];
                assert!(
                    (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                    "pair ({i},{j}): {got} vs {want}"
                );
            }
        }
        assert!(agent.q_values_outer(&[], &right).is_empty());
        assert!(agent.q_values_outer(&left, &[]).is_empty());
    }

    #[test]
    fn no_training_below_min_replay() {
        let mut rng = seeded(2);
        let mut agent = DqnAgent::new(small_config(), &mut rng).unwrap();
        for _ in 0..10 {
            agent.remember(Transition {
                state_action: vec![0.0, 0.0],
                reward: 1.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        assert!(agent.train_step(&mut rng).is_none());
        assert_eq!(agent.train_steps(), 0);
    }

    /// Contextual bandit: reward = 1 for action embedding [1,0], 0 for
    /// [0,1]. After training, Q([1,0]) should clearly exceed Q([0,1]).
    #[test]
    fn learns_bandit_preferences() {
        let mut rng = seeded(3);
        let mut agent = DqnAgent::new(small_config(), &mut rng).unwrap();
        for _ in 0..200 {
            agent.remember(Transition {
                state_action: vec![1.0, 0.0],
                reward: 1.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
            agent.remember(Transition {
                state_action: vec![0.0, 1.0],
                reward: 0.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        for _ in 0..400 {
            agent.train_step(&mut rng);
        }
        let good = agent.q_value(&[1.0, 0.0]);
        let bad = agent.q_value(&[0.0, 1.0]);
        assert!(good > bad + 0.5, "good={good} bad={bad}");
        assert!(
            (good - 1.0).abs() < 0.3,
            "good should approach 1, got {good}"
        );
    }

    /// Two-step chain: action A leads to a state where a further action
    /// earns 1; action B ends with 0. With γ=0.9, Q(A) → 0.9.
    #[test]
    fn bootstraps_through_next_candidates() {
        let mut rng = seeded(4);
        let mut agent = DqnAgent::new(small_config(), &mut rng).unwrap();
        for _ in 0..200 {
            // First step: reward 0 now, successor candidate worth 1.
            agent.remember(Transition {
                state_action: vec![1.0, 0.0],
                reward: 0.0,
                next_candidates: vec![vec![0.0, 1.0]].into(),
                terminal: false,
            });
            // Successor action: terminal reward 1.
            agent.remember(Transition {
                state_action: vec![0.0, 1.0],
                reward: 1.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        for _ in 0..600 {
            agent.train_step(&mut rng);
        }
        let q_first = agent.q_value(&[1.0, 0.0]);
        assert!(
            (q_first - 0.9).abs() < 0.25,
            "Q(first) should approach γ*1=0.9, got {q_first}"
        );
    }

    /// Double DQN learns the same bandit and bounds Q closer to the true
    /// value than classical DQN's optimistic max under noise.
    #[test]
    fn double_dqn_learns_bandit() {
        let mut rng = seeded(9);
        let mut config = small_config();
        config.double_dqn = true;
        let mut agent = DqnAgent::new(config, &mut rng).unwrap();
        for _ in 0..200 {
            agent.remember(Transition {
                state_action: vec![1.0, 0.0],
                reward: 1.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
            agent.remember(Transition {
                state_action: vec![0.0, 1.0],
                reward: 0.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        for _ in 0..400 {
            agent.train_step(&mut rng);
        }
        assert!(agent.q_value(&[1.0, 0.0]) > agent.q_value(&[0.0, 1.0]) + 0.5);
    }

    /// Double-DQN bootstrapping uses online-argmax + target-eval and still
    /// converges on the two-step chain.
    #[test]
    fn double_dqn_bootstraps_chain() {
        let mut rng = seeded(10);
        let mut config = small_config();
        config.double_dqn = true;
        let mut agent = DqnAgent::new(config, &mut rng).unwrap();
        for _ in 0..200 {
            agent.remember(Transition {
                state_action: vec![1.0, 0.0],
                reward: 0.0,
                next_candidates: vec![vec![0.0, 1.0]].into(),
                terminal: false,
            });
            agent.remember(Transition {
                state_action: vec![0.0, 1.0],
                reward: 1.0,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        for _ in 0..600 {
            agent.train_step(&mut rng);
        }
        let q_first = agent.q_value(&[1.0, 0.0]);
        assert!((q_first - 0.9).abs() < 0.3, "Q(first) ≈ γ·1, got {q_first}");
    }

    /// The pre-batching train step: per-transition target-network
    /// forwards. Kept as the ground truth the stacked implementation must
    /// reproduce bit-for-bit.
    fn reference_train_step<R: Rng + ?Sized>(agent: &mut DqnAgent, rng: &mut R) -> Option<f32> {
        if agent.replay.len() < agent.config.min_replay.max(1) {
            return None;
        }
        let batch = agent.replay.sample(agent.config.batch_size, rng);
        let n = batch.len();
        let mut targets = Matrix::zeros(n, 1);
        let mut inputs = Matrix::zeros(n, agent.config.input_dim);
        for (i, t) in batch.iter().enumerate() {
            inputs.row_mut(i).copy_from_slice(&t.state_action);
            let bootstrap = if t.terminal || t.next_candidates.is_empty() {
                0.0
            } else if agent.config.double_dqn {
                let online = agent.q_values(&t.next_candidates);
                let best = online
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let x = stack(&t.next_candidates[best..best + 1], agent.config.input_dim);
                agent.target.forward_inference(&x).get(0, 0)
            } else {
                let x = stack(&t.next_candidates, agent.config.input_dim);
                column0(&agent.target.forward_inference(&x))
                    .into_iter()
                    .fold(f32::NEG_INFINITY, f32::max)
            };
            targets.set(i, 0, t.reward + agent.config.gamma * bootstrap);
        }
        agent.online.zero_grad();
        let pred = agent.online.forward(&inputs);
        let (l, d) = loss::huber(&pred, &targets, agent.config.huber_delta);
        agent.online.backward(&d);
        agent
            .online
            .step(&mut agent.opt, Some(agent.config.grad_clip));
        agent.train_steps += 1;
        Some(l)
    }

    #[test]
    fn batched_targets_match_per_transition_reference() {
        for double in [false, true] {
            let mut rng = seeded(21);
            let mut config = small_config();
            config.double_dqn = double;
            config.min_replay = 8;
            config.batch_size = 8;
            let mut agent = DqnAgent::new(config, &mut rng).unwrap();
            // Mix terminal, empty-candidate, and multi-candidate
            // transitions, including exact Q-value ties for the argmax.
            for i in 0..32 {
                let terminal = i % 3 == 0;
                let cands = match i % 4 {
                    0 => vec![],
                    1 => vec![vec![0.1 * i as f32, -0.2]],
                    2 => vec![vec![0.4, 0.1], vec![0.4, 0.1]], // tied rows
                    _ => vec![vec![0.3, 0.1], vec![-0.5, 0.9], vec![0.2, 0.2]],
                };
                agent.remember(Transition {
                    state_action: vec![i as f32 / 32.0, 1.0 - i as f32 / 32.0],
                    reward: (i % 5) as f32 / 5.0,
                    next_candidates: cands.into(),
                    terminal,
                });
            }
            let mut reference = agent.clone();
            let mut rng_a = seeded(22);
            let mut rng_b = seeded(22);
            let loss_new = agent.train_step(&mut rng_a).unwrap();
            let loss_ref = reference_train_step(&mut reference, &mut rng_b).unwrap();
            assert_eq!(loss_new.to_bits(), loss_ref.to_bits(), "double={double}");
            assert_eq!(
                agent.export_params(),
                reference.export_params(),
                "double={double}"
            );
        }
    }

    /// The bootstrap cache must be value-transparent: many steps of the
    /// cached `train_step` — across target syncs (cache invalidation by
    /// generation), ring evictions (invalidation by slot overwrite) and
    /// fresh pushes — produce bitwise the same parameters as the
    /// per-transition reference recomputing every bootstrap from scratch.
    #[test]
    fn bootstrap_cache_is_bitwise_transparent_across_steps() {
        let mut rng = seeded(51);
        let mut config = small_config();
        config.min_replay = 8;
        config.batch_size = 8;
        config.replay_capacity = 24; // small ring: pushes below overwrite slots
        config.target_sync_every = 5; // several generation bumps in 30 steps
        let mut agent = DqnAgent::new(config, &mut rng).unwrap();
        let make = |i: usize| Transition {
            state_action: vec![(i % 7) as f32 / 7.0, ((i * 3) % 5) as f32 / 5.0],
            reward: (i % 4) as f32 / 4.0,
            next_candidates: match i % 3 {
                0 => vec![],
                1 => vec![vec![0.2, 0.5]],
                _ => vec![vec![0.1, -0.3], vec![0.9, 0.4]],
            }
            .into(),
            terminal: i.is_multiple_of(5),
        };
        for i in 0..24 {
            agent.remember(make(i));
        }
        let mut reference = agent.clone();
        reference.bootstrap_cache.clear(); // reference never reuses
        let mut rng_a = seeded(52);
        let mut rng_b = seeded(52);
        for step in 0..30 {
            let la = agent.train_step(&mut rng_a).unwrap();
            let lb = reference_train_step(&mut reference, &mut rng_b).unwrap();
            // Mirror train_step's target sync in the reference (the helper
            // predates syncing) and keep its cache permanently cold.
            if reference
                .train_steps
                .is_multiple_of(reference.config.target_sync_every)
            {
                reference.target.copy_params_from(&reference.online);
            }
            reference.bootstrap_cache.clear();
            assert_eq!(la.to_bits(), lb.to_bits(), "loss diverged at step {step}");
            assert_eq!(
                agent.export_params(),
                reference.export_params(),
                "params diverged at step {step}"
            );
            // Interleave pushes so ring slots get overwritten mid-stream.
            if step % 3 == 0 {
                agent.remember(make(24 + step));
                reference.remember(make(24 + step));
            }
        }
    }

    #[test]
    fn batch_q_values_match_single() {
        let mut rng = seeded(5);
        let agent = DqnAgent::new(small_config(), &mut rng).unwrap();
        let embeddings = vec![vec![0.1, 0.2], vec![-0.3, 0.4]];
        let batch = agent.q_values(&embeddings);
        assert_eq!(batch.len(), 2);
        for (e, &q) in embeddings.iter().zip(&batch) {
            assert!((agent.q_value(e) - q).abs() < 1e-6);
        }
        assert!(agent.q_values(&[]).is_empty());
    }

    #[test]
    fn param_export_import_round_trips() {
        let mut rng = seeded(6);
        let src = DqnAgent::new(small_config(), &mut rng).unwrap();
        let mut dst = DqnAgent::new(small_config(), &mut rng).unwrap();
        let params = src.export_params();
        dst.import_params(&params).unwrap();
        assert!((src.q_value(&[0.5, -0.5]) - dst.q_value(&[0.5, -0.5])).abs() < 1e-6);
        assert!(dst.import_params(&params[..3]).is_err());
    }

    #[test]
    fn snapshot_restore_resumes_training_bit_identically() {
        let mut rng = seeded(31);
        let mut config = small_config();
        config.min_replay = 8;
        let mut full = DqnAgent::new(config.clone(), &mut rng).unwrap();
        for i in 0..24 {
            full.remember(Transition {
                state_action: vec![i as f32 / 24.0, 1.0 - i as f32 / 24.0],
                reward: (i % 3) as f32,
                next_candidates: if i % 2 == 0 {
                    vec![vec![0.2, 0.8]]
                } else {
                    vec![]
                }
                .into(),
                terminal: i % 2 == 1,
            });
        }
        let mut train_rng = seeded(32);
        full.train_step(&mut train_rng).unwrap();
        let snap = full.snapshot();
        let rng_state = train_rng.state();
        full.train_step(&mut train_rng).unwrap();

        // Resume: fresh agent, restore, continue from the same rng point.
        let mut rng2 = seeded(99);
        let mut resumed = DqnAgent::new(config, &mut rng2).unwrap();
        resumed.restore(snap).unwrap();
        let mut train_rng2 = rand::rngs::StdRng::from_state(rng_state);
        resumed.train_step(&mut train_rng2).unwrap();

        assert_eq!(full.export_params(), resumed.export_params());
        assert_eq!(full.train_steps(), resumed.train_steps());
        assert_eq!(full.replay_len(), resumed.replay_len());
    }

    #[test]
    fn params_generation_tracks_every_weight_change() {
        let mut rng = seeded(41);
        let mut config = small_config();
        config.min_replay = 4;
        let mut agent = DqnAgent::new(config, &mut rng).unwrap();
        assert_eq!(agent.params_generation(), 0);

        // A failed train step (pool below min_replay) must not bump.
        assert!(agent.train_step(&mut rng).is_none());
        assert_eq!(agent.params_generation(), 0);

        for i in 0..6 {
            agent.remember(Transition {
                state_action: vec![i as f32, 0.0],
                reward: 0.1,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        assert!(agent.train_step(&mut rng).is_some());
        assert_eq!(agent.params_generation(), 1);

        let params = agent.export_params();
        agent.import_params(&params).unwrap();
        assert_eq!(agent.params_generation(), 2);
        assert!(agent.import_params(&params[..3]).is_err());
        assert_eq!(agent.params_generation(), 2, "failed import must not bump");

        let snap = agent.snapshot();
        agent.restore(snap).unwrap();
        assert_eq!(agent.params_generation(), 3);
    }

    #[test]
    fn target_sync_counts_steps() {
        let mut rng = seeded(7);
        let mut config = small_config();
        config.min_replay = 4;
        config.target_sync_every = 5;
        let mut agent = DqnAgent::new(config, &mut rng).unwrap();
        for i in 0..8 {
            agent.remember(Transition {
                state_action: vec![i as f32 / 8.0, 0.0],
                reward: 0.5,
                next_candidates: vec![].into(),
                terminal: true,
            });
        }
        for _ in 0..7 {
            assert!(agent.train_step(&mut rng).is_some());
        }
        assert_eq!(agent.train_steps(), 7);
        assert_eq!(agent.replay_len(), 8);
    }
}
