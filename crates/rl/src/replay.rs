//! Experience replay (§IV-A): a fixed-capacity FIFO pool of transitions
//! sampled uniformly for Q-network updates, "referring \[to\] part of the
//! historical experience" as in the classical DQN.

use crowdrl_types::rng::sample_indices;
use rand::Rng;
use std::sync::Arc;

/// One stored experience.
///
/// CrowdRL's actions are (object, annotator) pairs embedded as feature
/// vectors, and the successor action set varies per state, so a transition
/// stores the *candidate action features at the next state* (possibly
/// subsampled by the caller) from which the TD target takes a max.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Feature embedding of (state, action) taken.
    pub state_action: Vec<f32>,
    /// Immediate reward `r(t)`.
    pub reward: f32,
    /// Feature embeddings of candidate actions in the next state; empty
    /// for terminal transitions. Shared (`Arc`) because every transition
    /// remembered from one assignment batch sees the same successor
    /// candidate set — sharing turns the per-transition deep clone of up
    /// to `candidate_cap` embedding vectors into one refcount bump.
    pub next_candidates: Arc<[Vec<f32>]>,
    /// Whether the episode ended after this transition.
    pub terminal: bool,
}

/// A bounded FIFO replay pool with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    buf: Vec<Transition>,
    capacity: usize,
    /// Next write position once full (ring behaviour).
    head: usize,
    /// Total pushes ever (for tests/metrics).
    pushed: usize,
}

impl ReplayBuffer {
    /// A buffer holding at most `capacity` transitions. Panics if zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Maximum size.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current size.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total transitions ever pushed (≥ `len`).
    #[inline]
    pub fn total_pushed(&self) -> usize {
        self.pushed
    }

    /// Insert a transition, evicting the oldest when full. Returns the
    /// physical slot index written, so callers holding per-slot caches
    /// (e.g. TD-bootstrap values) know exactly which entry to invalidate.
    pub fn push(&mut self, t: Transition) -> usize {
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(t);
            self.buf.len() - 1
        } else {
            let slot = self.head;
            self.buf[slot] = t;
            self.head = (self.head + 1) % self.capacity;
            slot
        }
    }

    /// Sample up to `batch` distinct transitions uniformly.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, batch: usize, rng: &mut R) -> Vec<&'a Transition> {
        let idx = sample_indices(rng, self.buf.len(), batch);
        idx.into_iter().map(|i| &self.buf[i]).collect()
    }

    /// Sample up to `batch` distinct transitions uniformly, returning each
    /// with its physical slot index. Draws the identical index sequence as
    /// [`ReplayBuffer::sample`] for the same RNG state, so the two are
    /// interchangeable without perturbing determinism.
    pub fn sample_slots<'a, R: Rng + ?Sized>(
        &'a self,
        batch: usize,
        rng: &mut R,
    ) -> Vec<(usize, &'a Transition)> {
        let idx = sample_indices(rng, self.buf.len(), batch);
        idx.into_iter().map(|i| (i, &self.buf[i])).collect()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// The stored transitions in physical (ring) order plus the ring head,
    /// for checkpointing.
    pub fn contents(&self) -> (&[Transition], usize) {
        (&self.buf, self.head)
    }

    /// Rebuild a buffer from checkpointed contents. `buf` is in physical
    /// order (as returned by [`ReplayBuffer::contents`]); sampling and
    /// eviction after a restore behave identically to never having stopped.
    pub fn restore(capacity: usize, buf: Vec<Transition>, head: usize, pushed: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!(buf.len() <= capacity, "restored buffer exceeds capacity");
        assert!(head < capacity.max(1), "restored head out of range");
        Self {
            buf,
            capacity,
            head,
            pushed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;
    use proptest::prelude::*;

    fn t(tag: f32) -> Transition {
        Transition {
            state_action: vec![tag],
            reward: tag,
            next_candidates: vec![].into(),
            terminal: false,
        }
    }

    #[test]
    fn push_until_capacity_then_evict_fifo() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..3 {
            rb.push(t(i as f32));
        }
        assert_eq!(rb.len(), 3);
        rb.push(t(3.0)); // evicts 0
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.total_pushed(), 4);
        let rewards: Vec<f32> = rb.buf.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&3.0));
        assert!(!rewards.contains(&0.0));
        rb.push(t(4.0)); // evicts 1
        let rewards: Vec<f32> = rb.buf.iter().map(|x| x.reward).collect();
        assert!(!rewards.contains(&1.0));
        assert!(rewards.contains(&2.0));
    }

    #[test]
    fn sample_returns_distinct_items() {
        let mut rb = ReplayBuffer::new(10);
        for i in 0..10 {
            rb.push(t(i as f32));
        }
        let mut rng = seeded(1);
        let s = rb.sample(5, &mut rng);
        assert_eq!(s.len(), 5);
        let mut rewards: Vec<i64> = s.iter().map(|x| x.reward as i64).collect();
        rewards.sort_unstable();
        rewards.dedup();
        assert_eq!(rewards.len(), 5);
    }

    #[test]
    fn sample_caps_at_len() {
        let mut rb = ReplayBuffer::new(10);
        rb.push(t(1.0));
        let mut rng = seeded(2);
        assert_eq!(rb.sample(5, &mut rng).len(), 1);
        assert!(ReplayBuffer::new(4).sample(3, &mut rng).is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut rb = ReplayBuffer::new(2);
        rb.push(t(1.0));
        rb.clear();
        assert!(rb.is_empty());
        // Ring still works after clear.
        for i in 0..5 {
            rb.push(t(i as f32));
        }
        assert_eq!(rb.len(), 2);
    }

    #[test]
    #[should_panic(expected = "replay capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }

    proptest! {
        /// len never exceeds capacity, and after >= capacity pushes the
        /// buffer contains exactly the most recent `capacity` items.
        #[test]
        fn prop_fifo_keeps_most_recent(cap in 1usize..16, pushes in 0usize..64) {
            let mut rb = ReplayBuffer::new(cap);
            for i in 0..pushes {
                rb.push(t(i as f32));
                prop_assert!(rb.len() <= cap);
            }
            if pushes >= cap {
                let mut rewards: Vec<i64> = rb.buf.iter().map(|x| x.reward as i64).collect();
                rewards.sort_unstable();
                let want: Vec<i64> = ((pushes - cap)..pushes).map(|i| i as i64).collect();
                prop_assert_eq!(rewards, want);
            } else {
                prop_assert_eq!(rb.len(), pushes);
            }
        }
    }
}
