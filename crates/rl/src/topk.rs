//! Heap-based top-k selection (§IV-B "Discussion").
//!
//! CrowdRL assigns each selected object to `k` annotators: it computes the
//! top-k Q-values per object with a bounded min-heap, sums them, and picks
//! the objects with the largest sums. These helpers implement that with a
//! `BinaryHeap<Reverse<_>>` of size ≤ k — O(n log k) rather than sorting.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A score paired with an index, ordered by score then (for determinism)
/// by *descending* index so the heap's eviction ties break the same way a
/// stable descending sort by (score, ascending index) would.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f64,
    index: usize,
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order on scores; NaN is rejected upstream.
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// The indices of the `k` largest scores, best first. Ties break toward the
/// lower index. `NEG_INFINITY` entries (masked actions) are skipped
/// entirely; NaN panics.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    assert!(scores.iter().all(|s| !s.is_nan()), "NaN score in top-k");
    let mut heap: BinaryHeap<Reverse<Scored>> = BinaryHeap::with_capacity(k + 1);
    for (index, &score) in scores.iter().enumerate() {
        if score == f64::NEG_INFINITY || k == 0 {
            continue;
        }
        heap.push(Reverse(Scored { score, index }));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|Reverse(s)| s).collect();
    out.sort_by(|a, b| b.cmp(a));
    out.into_iter().map(|s| s.index).collect()
}

/// Sum of the `k` largest scores (masked `-inf` entries skipped). Returns
/// `NEG_INFINITY` when no entry qualifies, marking the whole object masked.
pub fn top_k_sum(scores: &[f64], k: usize) -> f64 {
    let idx = top_k_indices(scores, k);
    if idx.is_empty() {
        f64::NEG_INFINITY
    } else {
        idx.iter().map(|&i| scores[i]).sum()
    }
}

/// Reference implementation by full sort, for property tests.
#[doc(hidden)]
pub fn top_k_indices_naive(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len())
        .filter(|&i| scores[i] != f64::NEG_INFINITY)
        .collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap()
            .then_with(|| a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_largest_in_order() {
        let scores = [1.0, 5.0, 3.0, 4.0, 2.0];
        assert_eq!(top_k_indices(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k_sum(&scores, 3), 12.0);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let scores = [2.0, 3.0, 3.0, 1.0];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 2]);
        let scores = [3.0, 3.0, 3.0];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn masked_entries_are_skipped() {
        let scores = [f64::NEG_INFINITY, 1.0, f64::NEG_INFINITY, 2.0];
        assert_eq!(top_k_indices(&scores, 3), vec![3, 1]);
        assert_eq!(top_k_sum(&scores, 3), 3.0);
        let all_masked = [f64::NEG_INFINITY; 3];
        assert!(top_k_indices(&all_masked, 2).is_empty());
        assert_eq!(top_k_sum(&all_masked, 2), f64::NEG_INFINITY);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let scores = [1.0, 2.0];
        assert_eq!(top_k_indices(&scores, 10), vec![1, 0]);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN score in top-k")]
    fn nan_panics() {
        let _ = top_k_indices(&[1.0, f64::NAN], 1);
    }

    #[test]
    fn paper_example_table3_o8_wins() {
        // Table III: Q-values per annotator for each selectable object.
        // o8's top-3 sum (4+3+2=9) is the largest, so o8 is selected and
        // assigned to w1, w3, w5 in the paper's Example 3.
        let ninf = f64::NEG_INFINITY;
        let q: Vec<Vec<f64>> = vec![
            vec![ninf; 5],                 // o1 labelled
            vec![3.0, 1.0, 1.0, 2.0, 2.0], // o2 (w1..w5 columns transposed)
            vec![1.0, 1.0, 1.0, 2.0, 4.0], // o3
            vec![ninf; 5],                 // o4 labelled
            vec![ninf; 5],                 // o5 labelled
            vec![1.0, 2.0, 1.0, 1.0, 2.0], // o6
            vec![3.0, 2.0, 0.0, 1.0, 1.0], // o7
            vec![4.0, 1.0, 3.0, 0.0, 2.0], // o8
        ];
        let sums: Vec<f64> = q.iter().map(|row| top_k_sum(row, 3)).collect();
        let best = crowdrl_types::prob::argmax(&sums).unwrap();
        assert_eq!(best, 7, "o8 should win: sums={sums:?}");
        assert_eq!(sums[7], 9.0);
        // And its top-3 annotators are w1, w5, w3 (scores 4, 3, 2).
        assert_eq!(top_k_indices(&q[7], 3), vec![0, 2, 4]);
    }

    proptest! {
        #[test]
        fn prop_matches_naive(scores in proptest::collection::vec(-100.0f64..100.0, 0..64),
                              k in 0usize..10) {
            prop_assert_eq!(top_k_indices(&scores, k), top_k_indices_naive(&scores, k));
        }

        #[test]
        fn prop_matches_naive_with_masks(
            raw in proptest::collection::vec((-10.0f64..10.0, proptest::bool::ANY), 0..32),
            k in 0usize..8) {
            let scores: Vec<f64> = raw
                .iter()
                .map(|&(s, masked)| if masked { f64::NEG_INFINITY } else { s })
                .collect();
            prop_assert_eq!(top_k_indices(&scores, k), top_k_indices_naive(&scores, k));
        }
    }
}
