//! # crowdrl-rl
//!
//! The reinforcement-learning substrate behind CrowdRL's unified task
//! selection + assignment agent (§IV).
//!
//! The paper models the joint operation "select object `o_i` and assign it
//! to annotator `w_j`" as one action whose long-term value
//! `Q(S(t), A(t))` is approximated by a Deep Q-Network (Eq. 4–5), trained
//! by experience replay, with a UCB1-style exploration bonus (Eq. 6)
//! replacing ε-greedy, `Q = -inf` masking of already-labelled objects, and
//! top-k per-object assignment selected with a bounded min-heap (§IV-B).
//!
//! This crate provides those mechanisms independent of the labelling
//! domain:
//!
//! * [`ReplayBuffer`] — fixed-capacity FIFO experience pool with uniform
//!   sampling; [`PrioritizedReplay`] — the proportional prioritized
//!   variant (Schaul et al., the paper's \[30\]);
//! * [`DqnAgent`] — online + target network over state-action feature
//!   vectors, Huber TD loss, Adam, periodic target sync;
//! * [`UcbExplorer`] / [`EpsilonGreedy`] — exploration policies;
//! * [`topk`] — heap-based top-k selection used to pick the `k` annotators
//!   per object and the best objects per iteration;
//! * [`QTable`] — exact tabular Q-learning (Eq. 5) for tiny instances, used
//!   to validate the semantics the DQN approximates.

pub mod dqn;
pub mod explore;
pub mod prioritized;
pub mod replay;
pub mod tabular;
pub mod topk;

pub use dqn::{DqnAgent, DqnConfig, DqnSnapshot};
pub use explore::{EpsilonGreedy, UcbExplorer};
pub use prioritized::PrioritizedReplay;
pub use replay::{ReplayBuffer, Transition};
pub use tabular::QTable;
