//! Property tests for the assignment ledger's exactly-once guarantee.
//!
//! Arbitrary interleavings of dispatch / deliver / expire — including
//! duplicates, stale deliveries for expired assignments, and re-dispatch
//! of freed pairs — must never overdraw the budget or charge an
//! (object, annotator) pair twice. This is the money invariant the whole
//! asynchronous runtime leans on.

use crowdrl_serve::{AssignmentLedger, Delivery, Expiry};
use crowdrl_types::{AnnotatorId, AssignmentId, Budget, ObjectId, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;

fn t(x: f64) -> SimTime {
    SimTime::new(x).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 64,
    })]

    #[test]
    fn budget_is_charged_exactly_once_per_pair(
        total in 1.0f64..40.0,
        ops in proptest::collection::vec((0u8..4, 0u64..8, 0u64..5, 0.5f64..3.0), 1..250),
    ) {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(total).unwrap();
        // Ground truth maintained independently of the ledger.
        let mut charged_pairs: HashSet<(ObjectId, AnnotatorId)> = HashSet::new();
        let mut expected_spent = 0.0f64;
        let mut clock = 0.0f64;

        for (kind, x, y, cost) in ops {
            clock += 1.0;
            let now = t(clock);
            match kind {
                // Dispatch a random pair at a random cost.
                0 => {
                    let object = ObjectId(x as usize);
                    let annotator = AnnotatorId(y as usize);
                    let _ = ledger.dispatch(object, annotator, cost, now, t(clock + 5.0), &budget);
                }
                // Deliver a (possibly unknown, possibly settled) assignment.
                1 | 3 => {
                    let id = AssignmentId(x % (ledger.len() as u64 + 1));
                    if let Ok(Delivery::Accepted { cost, .. }) =
                        ledger.deliver(id, now, &mut budget)
                    {
                        let record = ledger.record(id).unwrap();
                        let pair = (record.object, record.annotator);
                        // Exactly-once: this pair was never charged before.
                        prop_assert!(charged_pairs.insert(pair), "pair {pair:?} charged twice");
                        expected_spent += cost;
                    }
                }
                // Expire a (possibly unknown, possibly settled) assignment.
                _ => {
                    let id = AssignmentId(x % (ledger.len() as u64 + 1));
                    if let Ok(Expiry::TimedOut { .. }) = ledger.expire(id) {
                        let record = ledger.record(id).unwrap();
                        prop_assert!(
                            !charged_pairs.contains(&(record.object, record.annotator))
                                || record.cost == 0.0,
                            "expired an already-charged pair's live assignment"
                        );
                    }
                }
            }

            // Invariants that must hold after every single operation.
            prop_assert!(ledger.reserved() >= 0.0);
            prop_assert!(
                budget.spent() <= total + 1e-9,
                "spent {} over total {total}", budget.spent()
            );
            prop_assert!(
                budget.spent() + ledger.reserved() <= total + 1e-9,
                "committed {} over total {total}",
                budget.spent() + ledger.reserved()
            );
            prop_assert!(
                (budget.spent() - expected_spent).abs() < 1e-9,
                "ledger spent {} diverged from accepted deliveries {expected_spent}",
                budget.spent()
            );
        }

        // Closing the books: every in-flight reservation is released and
        // the spend still matches the accepted deliveries exactly.
        for i in 0..ledger.len() as u64 {
            let _ = ledger.expire(AssignmentId(i));
        }
        prop_assert!(ledger.reserved().abs() < 1e-9);
        prop_assert_eq!(ledger.in_flight(), 0);
        prop_assert!((budget.spent() - expected_spent).abs() < 1e-9);
        prop_assert_eq!(charged_pairs.len(), budget.charge_count());
    }
}
