//! Property tests for the assignment ledger's exactly-once guarantee.
//!
//! Arbitrary interleavings of dispatch / deliver / expire — including
//! duplicates, stale deliveries for expired assignments, and re-dispatch
//! of freed pairs — must never overdraw the budget or charge an
//! (object, annotator) pair twice. This is the money invariant the whole
//! asynchronous runtime leans on.

use crowdrl_serve::{AccountBook, AssignmentLedger, Delivery, Expiry};
use crowdrl_sim::{FaultInjector, FaultPlan};
use crowdrl_types::{AnnotatorId, AssignmentId, Budget, ClassId, ObjectId, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;

fn t(x: f64) -> SimTime {
    SimTime::new(x).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 64,
    })]

    #[test]
    fn budget_is_charged_exactly_once_per_pair(
        total in 1.0f64..40.0,
        ops in proptest::collection::vec((0u8..4, 0u64..8, 0u64..5, 0.5f64..3.0), 1..250),
    ) {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(total).unwrap();
        // Ground truth maintained independently of the ledger.
        let mut charged_pairs: HashSet<(ObjectId, AnnotatorId)> = HashSet::new();
        let mut expected_spent = 0.0f64;
        let mut clock = 0.0f64;

        for (kind, x, y, cost) in ops {
            clock += 1.0;
            let now = t(clock);
            match kind {
                // Dispatch a random pair at a random cost.
                0 => {
                    let object = ObjectId(x as usize);
                    let annotator = AnnotatorId(y as usize);
                    let _ = ledger.dispatch(object, annotator, cost, now, t(clock + 5.0), &budget);
                }
                // Deliver a (possibly unknown, possibly settled) assignment.
                1 | 3 => {
                    let id = AssignmentId(x % (ledger.len() as u64 + 1));
                    if let Ok(Delivery::Accepted { cost, .. }) =
                        ledger.deliver(id, now, &mut budget)
                    {
                        let record = ledger.record(id).unwrap();
                        let pair = (record.object, record.annotator);
                        // Exactly-once: this pair was never charged before.
                        prop_assert!(charged_pairs.insert(pair), "pair {pair:?} charged twice");
                        expected_spent += cost;
                    }
                }
                // Expire a (possibly unknown, possibly settled) assignment.
                _ => {
                    let id = AssignmentId(x % (ledger.len() as u64 + 1));
                    if let Ok(Expiry::TimedOut { .. }) = ledger.expire(id) {
                        let record = ledger.record(id).unwrap();
                        prop_assert!(
                            !charged_pairs.contains(&(record.object, record.annotator))
                                || record.cost == 0.0,
                            "expired an already-charged pair's live assignment"
                        );
                    }
                }
            }

            // Invariants that must hold after every single operation.
            prop_assert!(ledger.reserved() >= 0.0);
            prop_assert!(
                budget.spent() <= total + 1e-9,
                "spent {} over total {total}", budget.spent()
            );
            prop_assert!(
                budget.spent() + ledger.reserved() <= total + 1e-9,
                "committed {} over total {total}",
                budget.spent() + ledger.reserved()
            );
            prop_assert!(
                (budget.spent() - expected_spent).abs() < 1e-9,
                "ledger spent {} diverged from accepted deliveries {expected_spent}",
                budget.spent()
            );
        }

        // Closing the books: every in-flight reservation is released and
        // the spend still matches the accepted deliveries exactly.
        for i in 0..ledger.len() as u64 {
            let _ = ledger.expire(AssignmentId(i));
        }
        prop_assert!(ledger.reserved().abs() < 1e-9);
        prop_assert_eq!(ledger.in_flight(), 0);
        prop_assert!((budget.spent() - expected_spent).abs() < 1e-9);
        prop_assert_eq!(charged_pairs.len(), budget.charge_count());
    }

    /// The same invariants under *injected* faults: random dispatch
    /// schedules pushed through a [`FaultInjector`] — no-shows, mid-task
    /// abandonment (late delivery after the deadline), stragglers and
    /// platform duplicates — replayed in event order. Duplicate copies
    /// reuse the original assignment id, so the ledger's exactly-once
    /// rule must reject every second copy; an assignment must time out
    /// at most once (the upstream requeue trigger); and the budget can
    /// never be overspent, whatever arrives in whatever order.
    #[test]
    fn injected_faults_preserve_exactly_once_and_budget(
        total in 5.0f64..60.0,
        seed in 0u64..1000,
        no_show in 0.0f64..0.5,
        abandon in 0.0f64..0.5,
        straggler in 0.0f64..0.5,
        duplicate in 0.0f64..0.8,
        dispatches in proptest::collection::vec(
            (0u64..10, 0u64..4, 0.5f64..2.5, 0.5f64..8.0),
            1..120,
        ),
    ) {
        let plan = FaultPlan {
            seed,
            no_show_rate: no_show,
            abandon_rate: abandon,
            straggler_rate: straggler,
            straggler_factor: 4.0,
            duplicate_rate: duplicate,
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 3).unwrap();
        let timeout = 6.0;
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(total).unwrap();

        // Dispatch on a staggered clock and build the event schedule the
        // runtime would enqueue: the (possibly rewritten) delivery, the
        // duplicate copy under the SAME id, and the expiry at the
        // deadline. Ties replay in push order, like the event queue.
        let mut events: Vec<(f64, u64, AssignmentId, bool)> = Vec::new();
        let mut seq = 0u64;
        let mut clock = 0.0f64;
        for (obj, ann, cost, latency) in dispatches {
            clock += 0.5;
            let now = t(clock);
            let deadline = t(clock + timeout);
            let Ok(id) = ledger.dispatch(
                ObjectId(obj as usize),
                AnnotatorId(ann as usize),
                cost,
                now,
                deadline,
                &budget,
            ) else {
                continue;
            };
            let out = injector.apply(id, AnnotatorId(ann as usize), now, timeout,
                Some((ClassId(0), t(latency))));
            if let Some((_, lat)) = out.response {
                events.push((clock + lat.as_f64(), seq, id, true));
                seq += 1;
            }
            if let Some(dup) = out.duplicate_at {
                events.push((dup.as_f64(), seq, id, true));
                seq += 1;
            }
            events.push((clock + timeout, seq, id, false));
            seq += 1;
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
        });

        let mut accepted: HashSet<AssignmentId> = HashSet::new();
        let mut timed_out: HashSet<AssignmentId> = HashSet::new();
        let mut charged_pairs: HashSet<(ObjectId, AnnotatorId)> = HashSet::new();
        for (time, _, id, is_delivery) in events {
            if is_delivery {
                if let Ok(Delivery::Accepted { .. }) = ledger.deliver(id, t(time), &mut budget) {
                    prop_assert!(accepted.insert(id), "assignment {id:?} charged twice");
                    let record = ledger.record(id).unwrap();
                    let pair = (record.object, record.annotator);
                    prop_assert!(charged_pairs.insert(pair), "pair {pair:?} charged twice");
                }
            } else if let Ok(Expiry::TimedOut { .. }) = ledger.expire(id) {
                // At most one timeout per assignment — the runtime
                // requeues on TimedOut, so this is the no-double-requeue
                // guarantee.
                prop_assert!(timed_out.insert(id), "assignment {id:?} timed out twice");
                prop_assert!(!accepted.contains(&id), "timed out after acceptance");
            }
            prop_assert!(
                budget.spent() + ledger.reserved() <= total + 1e-9,
                "committed {} over total {total}",
                budget.spent() + ledger.reserved()
            );
        }

        // Every assignment settled exactly one way; the books balance.
        prop_assert_eq!(ledger.in_flight(), 0);
        prop_assert!(ledger.reserved().abs() < 1e-9);
        prop_assert_eq!(charged_pairs.len(), budget.charge_count());
    }

    /// Multi-tenant money: arbitrary interleavings of reserve / charge /
    /// expire across several [`AccountBook`] accounts conserve every
    /// account's budget *independently* and never cross-charge — a
    /// settlement aimed at an account without a matching reservation is
    /// refused and leaves every balance untouched.
    #[test]
    fn account_book_isolates_budgets_under_interleaving(
        totals in proptest::collection::vec(2.0f64..30.0, 3..6),
        ops in proptest::collection::vec((0u8..4, 0u8..6, 0.25f64..2.0), 1..300),
    ) {
        let mut book = AccountBook::new();
        for &total in &totals {
            book.open(total).unwrap();
        }
        let n = totals.len();
        // Shadow books: outstanding reservations and expected spend per
        // account, maintained independently of the implementation.
        let mut outstanding: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut expected_spent = vec![0.0f64; n];

        for (kind, which, cost) in ops {
            let a = which as usize % n;
            match kind {
                // Reserve (dispatch): succeeds iff the account has
                // headroom; other accounts' headroom must not help.
                0 => {
                    let fits = expected_spent[a]
                        + outstanding[a].iter().sum::<f64>()
                        + cost
                        <= totals[a] + 1e-9;
                    prop_assert_eq!(book.can_reserve(a, cost), fits);
                    if book.reserve(a, cost).is_ok() {
                        prop_assert!(fits, "reserve succeeded without headroom");
                        outstanding[a].push(cost);
                    } else {
                        prop_assert!(!fits, "reserve failed with headroom");
                    }
                }
                // Charge (delivery): settles one outstanding reservation.
                1 => {
                    if let Some(cost) = outstanding[a].pop() {
                        book.charge(a, cost).unwrap();
                        expected_spent[a] += cost;
                    }
                }
                // Expire: releases one outstanding reservation.
                2 => {
                    if let Some(cost) = outstanding[a].pop() {
                        book.release(a, cost).unwrap();
                    }
                }
                // Cross-charge attempt: bill account `a` for more than it
                // holds in reservations (e.g. another tenant's delivery
                // routed to the wrong account). Must fail and move no
                // money anywhere.
                _ => {
                    let reserved_a = outstanding[a].iter().sum::<f64>();
                    let before_spent: Vec<f64> = (0..n).map(|i| book.spent(i)).collect();
                    let before_reserved: Vec<f64> = (0..n).map(|i| book.reserved(i)).collect();
                    prop_assert!(book.charge(a, reserved_a + cost).is_err());
                    for i in 0..n {
                        prop_assert_eq!(book.spent(i), before_spent[i]);
                        prop_assert_eq!(book.reserved(i), before_reserved[i]);
                    }
                }
            }

            // Per-account conservation after every operation.
            for i in 0..n {
                prop_assert!(
                    (book.spent(i) - expected_spent[i]).abs() < 1e-9,
                    "account {i} spent {} != expected {}",
                    book.spent(i),
                    expected_spent[i]
                );
                prop_assert!(
                    (book.reserved(i) - outstanding[i].iter().sum::<f64>()).abs() < 1e-6,
                    "account {i} reserved {} != shadow {}",
                    book.reserved(i),
                    outstanding[i].iter().sum::<f64>()
                );
                prop_assert!(
                    book.spent(i) + book.reserved(i) <= totals[i] + 1e-9,
                    "account {i} committed past its budget"
                );
            }
        }

        // Close the books: release everything outstanding; spend matches
        // the charges exactly, account by account.
        for a in 0..n {
            while let Some(cost) = outstanding[a].pop() {
                book.release(a, cost).unwrap();
            }
            prop_assert!(book.reserved(a).abs() < 1e-6);
            prop_assert!((book.spent(a) - expected_spent[a]).abs() < 1e-9);
        }
    }

    /// The service's fault-containment and checkpoint lifecycle on the
    /// shared book: arbitrary interleavings of reserve / charge /
    /// release, punctuated by whole-account *aborts* — every
    /// outstanding reservation released at once, exactly once, never
    /// charged (what the service's `fail_project` does) — and by
    /// `export` → `restore` round-trips whose bit patterns must be
    /// identical and whose restored book must continue the stream
    /// seamlessly. Reserved funds are released or charged exactly once,
    /// never both, never leaked.
    #[test]
    fn account_book_survives_aborts_and_checkpoint_round_trips(
        totals in proptest::collection::vec(2.0f64..30.0, 3..6),
        ops in proptest::collection::vec((0u8..8, 0u8..6, 0.25f64..2.0), 1..300),
    ) {
        let mut book = AccountBook::new();
        for &total in &totals {
            book.open(total).unwrap();
        }
        let n = totals.len();
        let mut outstanding: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut expected_spent = vec![0.0f64; n];
        let mut expected_charges = vec![0usize; n];
        let mut aborted = vec![false; n];

        for (kind, which, cost) in ops {
            let a = which as usize % n;
            match kind {
                // Reserve — a failed (aborted) tenant dispatches nothing.
                0 | 1 => {
                    if !aborted[a] && book.reserve(a, cost).is_ok() {
                        outstanding[a].push(cost);
                    }
                }
                // Charge: settles one outstanding reservation.
                2 => {
                    if let Some(cost) = outstanding[a].pop() {
                        book.charge(a, cost).unwrap();
                        expected_spent[a] += cost;
                        expected_charges[a] += 1;
                    }
                }
                // Release: frees one outstanding reservation.
                3 => {
                    if let Some(cost) = outstanding[a].pop() {
                        book.release(a, cost).unwrap();
                    }
                }
                // Abort the tenant: release every outstanding
                // reservation exactly once; its spend freezes.
                4 => {
                    while let Some(cost) = outstanding[a].pop() {
                        book.release(a, cost).unwrap();
                    }
                    aborted[a] = true;
                    prop_assert!(
                        book.reserved(a).abs() < 1e-6,
                        "abort leaked a reservation on account {a}: {}",
                        book.reserved(a)
                    );
                }
                // Checkpoint: export, restore into a fresh book, verify
                // bit-identity, and continue on the restored copy.
                _ => {
                    let states = book.export();
                    let restored = AccountBook::restore(&states).unwrap();
                    for i in 0..n {
                        prop_assert_eq!(restored.spent(i).to_bits(), book.spent(i).to_bits());
                        prop_assert_eq!(
                            restored.reserved(i).to_bits(),
                            book.reserved(i).to_bits()
                        );
                    }
                    prop_assert_eq!(restored.export(), states);
                    book = restored;
                }
            }

            // Conservation after every operation, including right after
            // a restore: spend and charge counts match the shadow book,
            // and an aborted account's money is fully accounted for.
            for i in 0..n {
                prop_assert!(
                    (book.spent(i) - expected_spent[i]).abs() < 1e-9,
                    "account {i} spent {} != expected {}",
                    book.spent(i),
                    expected_spent[i]
                );
                prop_assert!(
                    (book.reserved(i) - outstanding[i].iter().sum::<f64>()).abs() < 1e-6,
                    "account {i} reserved {} != shadow {}",
                    book.reserved(i),
                    outstanding[i].iter().sum::<f64>()
                );
                if aborted[i] {
                    prop_assert!(outstanding[i].is_empty());
                }
            }
        }

        // Close the books: every reservation was charged or released
        // exactly once — nothing double-settled, nothing leaked.
        for a in 0..n {
            while let Some(cost) = outstanding[a].pop() {
                book.release(a, cost).unwrap();
            }
            prop_assert!(book.reserved(a).abs() < 1e-6);
            prop_assert!((book.spent(a) - expected_spent[a]).abs() < 1e-9);
        }
        let states = book.export();
        for a in 0..n {
            prop_assert_eq!(states[a].charges, expected_charges[a]);
        }
    }
}
