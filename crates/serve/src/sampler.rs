//! The virtual crowd: sampling what an annotator does with a question.
//!
//! Everything random about one assignment — whether the annotator drops
//! it, how long they take, and what label they give — is drawn from a
//! dedicated RNG stream derived from `(sampling_seed, assignment_id)`.
//! The draw therefore depends only on the assignment id, never on which
//! thread performs it or in what order: the worker-pool mode can sample a
//! batch on however many threads it likes and still produce the exact
//! trace of the single-threaded mode.

use crowdrl_sim::{AnnotatorDynamics, AnnotatorPool};
use crowdrl_types::rng::{derive_seed, seeded};
use crowdrl_types::{AnnotatorId, AssignmentId, ClassId, ObjectId, SimTime};
use rand::Rng;

/// A sampling job handed to the virtual crowd.
#[derive(Debug, Clone, Copy)]
pub struct SampleJob {
    /// The ledger id whose stream to use.
    pub id: AssignmentId,
    /// The object asked about.
    pub object: ObjectId,
    /// The annotator asked.
    pub annotator: AnnotatorId,
    /// The object's true class (simulation-only knowledge, like
    /// [`Platform`](crowdrl_sim::Platform)'s).
    pub truth: ClassId,
}

/// What the annotator did with the question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledOutcome {
    /// The job's ledger id.
    pub id: AssignmentId,
    /// `Some((label, latency))` if they answer, `None` if they silently
    /// drop the task (only the timeout will resolve it).
    pub response: Option<(ClassId, SimTime)>,
}

/// Sample one assignment's outcome from its derived stream.
pub fn sample_outcome(
    sampling_seed: u64,
    job: SampleJob,
    pool: &AnnotatorPool,
    dynamics: &[AnnotatorDynamics],
) -> SampledOutcome {
    let mut rng = seeded(derive_seed(sampling_seed, job.id.0));
    let dyn_a = &dynamics[job.annotator.index()];
    // Fixed draw order (drop, latency, label) so outcomes are a pure
    // function of the job — do not reorder.
    let dropped = rng.random::<f64>() < dyn_a.drop_rate;
    let latency = dyn_a.latency.sample(&mut rng);
    let label = pool.sample_answer(job.annotator, job.truth, &mut rng);
    SampledOutcome {
        id: job.id,
        response: if dropped {
            None
        } else {
            Some((label, latency))
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DynamicsSpec, PoolSpec};

    #[test]
    fn outcomes_are_a_pure_function_of_the_job() {
        let mut rng = seeded(1);
        let pool = PoolSpec::new(3, 1).generate(3, &mut rng).unwrap();
        let dynamics = DynamicsSpec::default().generate(&pool, &mut rng).unwrap();
        let job = SampleJob {
            id: AssignmentId(17),
            object: ObjectId(4),
            annotator: AnnotatorId(2),
            truth: ClassId(1),
        };
        let a = sample_outcome(99, job, &pool, &dynamics);
        let b = sample_outcome(99, job, &pool, &dynamics);
        assert_eq!(a, b);
        // Different assignment ids draw from different streams.
        let c = sample_outcome(
            99,
            SampleJob {
                id: AssignmentId(18),
                ..job
            },
            &pool,
            &dynamics,
        );
        assert!(a.response != c.response || a.id != c.id);
    }

    #[test]
    fn a_full_drop_rate_always_drops() {
        let mut rng = seeded(2);
        let pool = PoolSpec::new(1, 0).generate(2, &mut rng).unwrap();
        let mut dynamics = DynamicsSpec::default().generate(&pool, &mut rng).unwrap();
        dynamics[0].drop_rate = 1.0;
        for i in 0..20 {
            let job = SampleJob {
                id: AssignmentId(i),
                object: ObjectId(0),
                annotator: AnnotatorId(0),
                truth: ClassId(0),
            };
            assert_eq!(sample_outcome(3, job, &pool, &dynamics).response, None);
        }
    }
}
