//! The in-flight assignment ledger: exactly-once budget accounting.
//!
//! Asynchrony is where budget bugs live: an answer can arrive after its
//! timeout already fired, twice (a retry), or for an (object, annotator)
//! pair that was requeued and re-asked in the meantime. The ledger makes
//! the money side of all of that single-entry:
//!
//! * **Reservation at dispatch.** Dispatching reserves the assignment's
//!   cost against the budget; `spent + reserved` can never exceed the
//!   total, so the service cannot over-commit no matter how many answers
//!   later materialize.
//! * **Charge on delivery, exactly once.** Only an assignment still
//!   `InFlight` can deliver; delivery atomically moves the reservation to
//!   a real charge. A second delivery, or a delivery after expiry, is
//!   rejected without touching the budget.
//! * **Release on expiry.** Expiry frees the reservation and the
//!   (object, annotator) pair, so the pair can be re-asked under a new
//!   assignment id (a fresh question, a fresh reservation).
//!
//! At most one live assignment exists per (object, annotator) pair, and a
//! delivered pair is locked forever — so a pair is *charged* at most once
//! across the whole run, which is the property the proptest suite
//! hammers with arbitrary dispatch/deliver/expire interleavings.

use crowdrl_types::{AnnotatorId, AssignmentId, Budget, Error, ObjectId, Result, SimTime};
use std::collections::HashSet;

/// Lifecycle of one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentStatus {
    /// Dispatched; the answer has not arrived and the timeout has not
    /// fired. Its cost is reserved.
    InFlight,
    /// The answer arrived in time and was charged.
    Delivered,
    /// The timeout fired first; the reservation was released.
    Expired,
}

/// One row of the ledger.
#[derive(Debug, Clone)]
pub struct AssignmentRecord {
    /// Ledger id (index into the ledger, RNG stream index, tiebreaker).
    pub id: AssignmentId,
    /// The object asked about.
    pub object: ObjectId,
    /// The annotator asked.
    pub annotator: AnnotatorId,
    /// The annotator's price for one answer.
    pub cost: f64,
    /// When the question was handed out.
    pub dispatched_at: SimTime,
    /// When the assignment times out.
    pub deadline: SimTime,
    /// Current lifecycle state.
    pub status: AssignmentStatus,
}

/// Outcome of presenting an answer to the ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// The answer is fresh and on time; `cost` was charged to the budget.
    Accepted {
        /// What was charged.
        cost: f64,
        /// Answer latency (arrival − dispatch).
        latency: SimTime,
    },
    /// The assignment already expired or already delivered — the answer
    /// is dropped, nothing is charged.
    Rejected,
}

/// Outcome of firing an assignment's timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expiry {
    /// The answer never arrived; the reservation (`cost`) was released
    /// and the (object, annotator) pair freed for re-dispatch.
    TimedOut {
        /// The released reservation.
        cost: f64,
    },
    /// The assignment was already delivered (or already expired) —
    /// nothing to do.
    AlreadySettled,
}

/// The in-flight assignment ledger. Owns reservations; the [`Budget`] it
/// is used with records only *real* spend.
#[derive(Debug, Default)]
pub struct AssignmentLedger {
    records: Vec<AssignmentRecord>,
    reserved: f64,
    /// Pairs with a live claim: one in-flight assignment, or a delivered
    /// answer (locked forever). Expired assignments release their pair.
    pairs: HashSet<(ObjectId, AnnotatorId)>,
}

impl AssignmentLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total budget currently reserved by in-flight assignments.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Number of in-flight assignments.
    pub fn in_flight(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == AssignmentStatus::InFlight)
            .count()
    }

    /// Total assignments ever dispatched.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was ever dispatched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record behind `id`, if it exists.
    pub fn record(&self, id: AssignmentId) -> Option<&AssignmentRecord> {
        self.records.get(id.0 as usize)
    }

    /// Whether `(object, annotator)` currently holds a live claim (in
    /// flight or delivered).
    pub fn pair_claimed(&self, object: ObjectId, annotator: AnnotatorId) -> bool {
        self.pairs.contains(&(object, annotator))
    }

    /// Whether a dispatch of `cost` would fit the budget after existing
    /// reservations.
    pub fn can_reserve(&self, cost: f64, budget: &Budget) -> bool {
        budget.spent() + self.reserved + cost <= budget.total() + 1e-9
    }

    /// Dispatch a question: reserve `cost` and open an in-flight record.
    ///
    /// Fails if the pair already holds a live claim or the reservation
    /// would over-commit the budget — dispatch-time checks are what let
    /// delivery charge unconditionally.
    pub fn dispatch(
        &mut self,
        object: ObjectId,
        annotator: AnnotatorId,
        cost: f64,
        now: SimTime,
        deadline: SimTime,
        budget: &Budget,
    ) -> Result<AssignmentId> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "assignment cost must be finite and non-negative, got {cost}"
            )));
        }
        if deadline < now {
            return Err(Error::ServiceFailure(format!(
                "assignment deadline {deadline} precedes dispatch time {now}"
            )));
        }
        if self.pairs.contains(&(object, annotator)) {
            return Err(Error::ServiceFailure(format!(
                "pair ({object}, {annotator}) already has a live assignment or answer"
            )));
        }
        if !self.can_reserve(cost, budget) {
            return Err(Error::BudgetExhausted {
                requested: cost,
                remaining: (budget.remaining() - self.reserved).max(0.0),
            });
        }
        let id = AssignmentId(self.records.len() as u64);
        self.records.push(AssignmentRecord {
            id,
            object,
            annotator,
            cost,
            dispatched_at: now,
            deadline,
            status: AssignmentStatus::InFlight,
        });
        self.reserved += cost;
        self.pairs.insert((object, annotator));
        Ok(id)
    }

    /// Present an answer for `id` arriving at `now`.
    ///
    /// Exactly-once: only an `InFlight` record accepts, and acceptance
    /// moves the reservation to a charge atomically. Everything else —
    /// late answers, duplicates — is `Rejected` with no budget effect.
    pub fn deliver(
        &mut self,
        id: AssignmentId,
        now: SimTime,
        budget: &mut Budget,
    ) -> Result<Delivery> {
        let record = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::ServiceFailure(format!("unknown assignment {id}")))?;
        if record.status != AssignmentStatus::InFlight {
            return Ok(Delivery::Rejected);
        }
        record.status = AssignmentStatus::Delivered;
        self.reserved = (self.reserved - record.cost).max(0.0);
        budget.charge(record.cost)?;
        Ok(Delivery::Accepted {
            cost: record.cost,
            latency: now - record.dispatched_at,
        })
    }

    /// Fire the timeout of `id`.
    pub fn expire(&mut self, id: AssignmentId) -> Result<Expiry> {
        let record = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::ServiceFailure(format!("unknown assignment {id}")))?;
        if record.status != AssignmentStatus::InFlight {
            return Ok(Expiry::AlreadySettled);
        }
        record.status = AssignmentStatus::Expired;
        self.reserved = (self.reserved - record.cost).max(0.0);
        let pair = (record.object, record.annotator);
        let cost = record.cost;
        self.pairs.remove(&pair);
        Ok(Expiry::TimedOut { cost })
    }

    /// Every record ever issued, in dispatch (id) order — the ledger's
    /// whole state, since reservations and pair claims derive from it.
    pub fn records(&self) -> &[AssignmentRecord] {
        &self.records
    }

    /// Rebuild a ledger from checkpointed records. `reserved` and the
    /// pair-claim set are re-derived: in-flight records reserve their
    /// cost and claim their pair, delivered records claim their pair
    /// forever, expired records claim nothing.
    pub fn restore(records: Vec<AssignmentRecord>) -> Result<Self> {
        let mut reserved = 0.0;
        let mut pairs = HashSet::new();
        for (i, r) in records.iter().enumerate() {
            if r.id.0 as usize != i {
                return Err(Error::ServiceFailure(format!(
                    "ledger record {i} carries id {}",
                    r.id
                )));
            }
            match r.status {
                AssignmentStatus::InFlight => {
                    reserved += r.cost;
                    pairs.insert((r.object, r.annotator));
                }
                AssignmentStatus::Delivered => {
                    pairs.insert((r.object, r.annotator));
                }
                AssignmentStatus::Expired => {}
            }
        }
        Ok(Self {
            records,
            reserved,
            pairs,
        })
    }

    /// Objects with at least one in-flight assignment.
    pub fn objects_in_flight(&self) -> HashSet<ObjectId> {
        self.records
            .iter()
            .filter(|r| r.status == AssignmentStatus::InFlight)
            .map(|r| r.object)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    #[test]
    fn dispatch_reserves_and_delivery_charges_once() {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(10.0).unwrap();
        let id = ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 3.0, t(0.0), t(5.0), &budget)
            .unwrap();
        assert_eq!(ledger.reserved(), 3.0);
        assert_eq!(budget.spent(), 0.0);
        let d = ledger.deliver(id, t(2.0), &mut budget).unwrap();
        assert_eq!(
            d,
            Delivery::Accepted {
                cost: 3.0,
                latency: t(2.0)
            }
        );
        assert_eq!(ledger.reserved(), 0.0);
        assert_eq!(budget.spent(), 3.0);
        // A duplicate delivery is rejected and charges nothing.
        assert_eq!(
            ledger.deliver(id, t(3.0), &mut budget).unwrap(),
            Delivery::Rejected
        );
        assert_eq!(budget.spent(), 3.0);
        // The stale timeout is a no-op.
        assert_eq!(ledger.expire(id).unwrap(), Expiry::AlreadySettled);
        assert_eq!(budget.spent(), 3.0);
    }

    #[test]
    fn expiry_releases_reservation_and_frees_the_pair() {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(4.0).unwrap();
        let id = ledger
            .dispatch(ObjectId(1), AnnotatorId(2), 4.0, t(0.0), t(5.0), &budget)
            .unwrap();
        // Fully reserved: a second dispatch must not fit.
        assert!(ledger
            .dispatch(ObjectId(2), AnnotatorId(0), 1.0, t(0.0), t(5.0), &budget)
            .is_err());
        assert_eq!(ledger.expire(id).unwrap(), Expiry::TimedOut { cost: 4.0 });
        assert_eq!(ledger.reserved(), 0.0);
        assert!(!ledger.pair_claimed(ObjectId(1), AnnotatorId(2)));
        // The same pair can be re-asked under a new id...
        let id2 = ledger
            .dispatch(ObjectId(1), AnnotatorId(2), 4.0, t(6.0), t(11.0), &budget)
            .unwrap();
        assert_ne!(id, id2);
        // ...and the late answer for the dead assignment is rejected.
        assert_eq!(
            ledger.deliver(id, t(7.0), &mut budget).unwrap(),
            Delivery::Rejected
        );
        assert_eq!(budget.spent(), 0.0);
    }

    #[test]
    fn live_pairs_cannot_be_double_dispatched() {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(100.0).unwrap();
        let id = ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(0.0), t(5.0), &budget)
            .unwrap();
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(0.0), t(5.0), &budget)
            .is_err());
        ledger.deliver(id, t(1.0), &mut budget).unwrap();
        // Delivered pairs stay locked forever — one charge per pair.
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(2.0), t(7.0), &budget)
            .is_err());
        // A different annotator on the same object is fine.
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(1), 1.0, t(2.0), t(7.0), &budget)
            .is_ok());
    }

    #[test]
    fn rejects_malformed_dispatches() {
        let mut ledger = AssignmentLedger::new();
        let budget = Budget::new(10.0).unwrap();
        assert!(ledger
            .dispatch(
                ObjectId(0),
                AnnotatorId(0),
                f64::NAN,
                t(0.0),
                t(1.0),
                &budget
            )
            .is_err());
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(2.0), t(1.0), &budget)
            .is_err());
        assert!(ledger.is_empty());
        assert_eq!(ledger.reserved(), 0.0);
    }
}
