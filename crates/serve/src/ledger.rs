//! The in-flight assignment ledger: exactly-once budget accounting.
//!
//! Asynchrony is where budget bugs live: an answer can arrive after its
//! timeout already fired, twice (a retry), or for an (object, annotator)
//! pair that was requeued and re-asked in the meantime. The ledger makes
//! the money side of all of that single-entry:
//!
//! * **Reservation at dispatch.** Dispatching reserves the assignment's
//!   cost against the budget; `spent + reserved` can never exceed the
//!   total, so the service cannot over-commit no matter how many answers
//!   later materialize.
//! * **Charge on delivery, exactly once.** Only an assignment still
//!   `InFlight` can deliver; delivery atomically moves the reservation to
//!   a real charge. A second delivery, or a delivery after expiry, is
//!   rejected without touching the budget.
//! * **Release on expiry.** Expiry frees the reservation and the
//!   (object, annotator) pair, so the pair can be re-asked under a new
//!   assignment id (a fresh question, a fresh reservation).
//!
//! At most one live assignment exists per (object, annotator) pair, and a
//! delivered pair is locked forever — so a pair is *charged* at most once
//! across the whole run, which is the property the proptest suite
//! hammers with arbitrary dispatch/deliver/expire interleavings.

use crowdrl_types::{AnnotatorId, AssignmentId, Budget, Error, ObjectId, Result, SimTime};
use std::collections::HashSet;

/// Lifecycle of one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentStatus {
    /// Dispatched; the answer has not arrived and the timeout has not
    /// fired. Its cost is reserved.
    InFlight,
    /// The answer arrived in time and was charged.
    Delivered,
    /// The timeout fired first; the reservation was released.
    Expired,
}

/// One row of the ledger.
#[derive(Debug, Clone)]
pub struct AssignmentRecord {
    /// Ledger id (index into the ledger, RNG stream index, tiebreaker).
    pub id: AssignmentId,
    /// The object asked about.
    pub object: ObjectId,
    /// The annotator asked.
    pub annotator: AnnotatorId,
    /// The annotator's price for one answer.
    pub cost: f64,
    /// When the question was handed out.
    pub dispatched_at: SimTime,
    /// When the assignment times out.
    pub deadline: SimTime,
    /// Current lifecycle state.
    pub status: AssignmentStatus,
}

/// Outcome of presenting an answer to the ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// The answer is fresh and on time; `cost` was charged to the budget.
    Accepted {
        /// What was charged.
        cost: f64,
        /// Answer latency (arrival − dispatch).
        latency: SimTime,
    },
    /// The assignment already expired or already delivered — the answer
    /// is dropped, nothing is charged.
    Rejected,
}

/// Outcome of firing an assignment's timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expiry {
    /// The answer never arrived; the reservation (`cost`) was released
    /// and the (object, annotator) pair freed for re-dispatch.
    TimedOut {
        /// The released reservation.
        cost: f64,
    },
    /// The assignment was already delivered (or already expired) —
    /// nothing to do.
    AlreadySettled,
}

/// The in-flight assignment ledger. Owns reservations; the [`Budget`] it
/// is used with records only *real* spend.
#[derive(Debug, Default)]
pub struct AssignmentLedger {
    records: Vec<AssignmentRecord>,
    reserved: f64,
    /// Pairs with a live claim: one in-flight assignment, or a delivered
    /// answer (locked forever). Expired assignments release their pair.
    pairs: HashSet<(ObjectId, AnnotatorId)>,
}

impl AssignmentLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total budget currently reserved by in-flight assignments.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Number of in-flight assignments.
    pub fn in_flight(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == AssignmentStatus::InFlight)
            .count()
    }

    /// Total assignments ever dispatched.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was ever dispatched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record behind `id`, if it exists.
    pub fn record(&self, id: AssignmentId) -> Option<&AssignmentRecord> {
        self.records.get(id.0 as usize)
    }

    /// Whether `(object, annotator)` currently holds a live claim (in
    /// flight or delivered).
    pub fn pair_claimed(&self, object: ObjectId, annotator: AnnotatorId) -> bool {
        self.pairs.contains(&(object, annotator))
    }

    /// Whether a dispatch of `cost` would fit the budget after existing
    /// reservations.
    pub fn can_reserve(&self, cost: f64, budget: &Budget) -> bool {
        budget.spent() + self.reserved + cost <= budget.total() + 1e-9
    }

    /// Dispatch a question: reserve `cost` and open an in-flight record.
    ///
    /// Fails if the pair already holds a live claim or the reservation
    /// would over-commit the budget — dispatch-time checks are what let
    /// delivery charge unconditionally.
    pub fn dispatch(
        &mut self,
        object: ObjectId,
        annotator: AnnotatorId,
        cost: f64,
        now: SimTime,
        deadline: SimTime,
        budget: &Budget,
    ) -> Result<AssignmentId> {
        if cost.is_finite()
            && cost >= 0.0
            && deadline >= now
            && !self.pairs.contains(&(object, annotator))
            && !self.can_reserve(cost, budget)
        {
            return Err(Error::BudgetExhausted {
                requested: cost,
                remaining: (budget.remaining() - self.reserved).max(0.0),
            });
        }
        self.dispatch_reserved(object, annotator, cost, now, deadline)
    }

    /// Dispatch a question whose budget check is made *elsewhere* — the
    /// multi-tenant service reserves against a per-project
    /// [`AccountBook`] account before calling this. All structural checks
    /// (cost validity, deadline ordering, live-pair uniqueness) still
    /// apply; only the budget-fit check is skipped.
    pub fn dispatch_reserved(
        &mut self,
        object: ObjectId,
        annotator: AnnotatorId,
        cost: f64,
        now: SimTime,
        deadline: SimTime,
    ) -> Result<AssignmentId> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "assignment cost must be finite and non-negative, got {cost}"
            )));
        }
        if deadline < now {
            return Err(Error::ServiceFailure(format!(
                "assignment deadline {deadline} precedes dispatch time {now}"
            )));
        }
        if self.pairs.contains(&(object, annotator)) {
            return Err(Error::ServiceFailure(format!(
                "pair ({object}, {annotator}) already has a live assignment or answer"
            )));
        }
        let id = AssignmentId(self.records.len() as u64);
        self.records.push(AssignmentRecord {
            id,
            object,
            annotator,
            cost,
            dispatched_at: now,
            deadline,
            status: AssignmentStatus::InFlight,
        });
        self.reserved += cost;
        self.pairs.insert((object, annotator));
        Ok(id)
    }

    /// Present an answer for `id` arriving at `now`.
    ///
    /// Exactly-once: only an `InFlight` record accepts, and acceptance
    /// moves the reservation to a charge atomically. Everything else —
    /// late answers, duplicates — is `Rejected` with no budget effect.
    pub fn deliver(
        &mut self,
        id: AssignmentId,
        now: SimTime,
        budget: &mut Budget,
    ) -> Result<Delivery> {
        let delivery = self.settle_deliver(id, now)?;
        if let Delivery::Accepted { cost, .. } = delivery {
            budget.charge(cost)?;
        }
        Ok(delivery)
    }

    /// Settle a delivery against the ledger only: the `InFlight →
    /// Delivered` transition and the reservation release, without
    /// charging any budget. The caller owns the charge — the service
    /// layer charges the owning project's account instead of a single
    /// run-wide [`Budget`]. Exactly-once still holds: the transition
    /// fires at most once per record, so at most one charge per record
    /// can ever follow.
    pub fn settle_deliver(&mut self, id: AssignmentId, now: SimTime) -> Result<Delivery> {
        let record = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::ServiceFailure(format!("unknown assignment {id}")))?;
        if record.status != AssignmentStatus::InFlight {
            return Ok(Delivery::Rejected);
        }
        record.status = AssignmentStatus::Delivered;
        self.reserved = (self.reserved - record.cost).max(0.0);
        Ok(Delivery::Accepted {
            cost: record.cost,
            latency: now - record.dispatched_at,
        })
    }

    /// Fire the timeout of `id`.
    pub fn expire(&mut self, id: AssignmentId) -> Result<Expiry> {
        let record = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::ServiceFailure(format!("unknown assignment {id}")))?;
        if record.status != AssignmentStatus::InFlight {
            return Ok(Expiry::AlreadySettled);
        }
        record.status = AssignmentStatus::Expired;
        self.reserved = (self.reserved - record.cost).max(0.0);
        let pair = (record.object, record.annotator);
        let cost = record.cost;
        self.pairs.remove(&pair);
        Ok(Expiry::TimedOut { cost })
    }

    /// [`expire`](Self::expire) under its service-layer name: expiry
    /// never touches a budget, so the settlement and the classic call
    /// are the same operation.
    pub fn settle_expire(&mut self, id: AssignmentId) -> Result<Expiry> {
        self.expire(id)
    }

    /// Every record ever issued, in dispatch (id) order — the ledger's
    /// whole state, since reservations and pair claims derive from it.
    pub fn records(&self) -> &[AssignmentRecord] {
        &self.records
    }

    /// Rebuild a ledger from checkpointed records. `reserved` and the
    /// pair-claim set are re-derived: in-flight records reserve their
    /// cost and claim their pair, delivered records claim their pair
    /// forever, expired records claim nothing.
    pub fn restore(records: Vec<AssignmentRecord>) -> Result<Self> {
        let mut reserved = 0.0;
        let mut pairs = HashSet::new();
        for (i, r) in records.iter().enumerate() {
            if r.id.0 as usize != i {
                return Err(Error::ServiceFailure(format!(
                    "ledger record {i} carries id {}",
                    r.id
                )));
            }
            match r.status {
                AssignmentStatus::InFlight => {
                    reserved += r.cost;
                    pairs.insert((r.object, r.annotator));
                }
                AssignmentStatus::Delivered => {
                    pairs.insert((r.object, r.annotator));
                }
                AssignmentStatus::Expired => {}
            }
        }
        Ok(Self {
            records,
            reserved,
            pairs,
        })
    }

    /// Objects with at least one in-flight assignment.
    pub fn objects_in_flight(&self) -> HashSet<ObjectId> {
        self.records
            .iter()
            .filter(|r| r.status == AssignmentStatus::InFlight)
            .map(|r| r.object)
            .collect()
    }
}

/// One project's money: its own [`Budget`] plus its own outstanding
/// reservations. Private to the book — all mutation goes through
/// [`AccountBook`] so the cross-charge guard cannot be bypassed.
#[derive(Debug)]
struct Account {
    budget: Budget,
    reserved: f64,
}

/// Per-project budget accounts for the multi-tenant service.
///
/// Each account carries the same exactly-once discipline the single-run
/// ledger enforces — reserve at dispatch, charge on delivery, release on
/// expiry — but isolated per project: `spent + reserved ≤ total` holds
/// account by account, so a project that exhausts its budget cannot
/// reserve a cent of another's. Charging or releasing more than an
/// account has reserved is an error, not a silent clamp: that is the
/// cross-charge guard — a settlement routed to the wrong account cannot
/// find a matching reservation there and fails loudly.
#[derive(Debug, Default)]
pub struct AccountBook {
    accounts: Vec<Account>,
}

impl AccountBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new account with `total` budget; returns its id (dense,
    /// in open order — the service uses the project's submission index).
    pub fn open(&mut self, total: f64) -> Result<usize> {
        let budget = Budget::new(total)?;
        self.accounts.push(Account {
            budget,
            reserved: 0.0,
        });
        Ok(self.accounts.len() - 1)
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether no account was opened.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    fn account(&self, id: usize) -> Result<&Account> {
        self.accounts
            .get(id)
            .ok_or_else(|| Error::ServiceFailure(format!("unknown budget account {id}")))
    }

    fn account_mut(&mut self, id: usize) -> Result<&mut Account> {
        self.accounts
            .get_mut(id)
            .ok_or_else(|| Error::ServiceFailure(format!("unknown budget account {id}")))
    }

    /// Whether reserving `cost` fits account `id` after its existing
    /// spend and reservations. Only this account's money counts — other
    /// accounts' headroom is invisible here.
    pub fn can_reserve(&self, id: usize, cost: f64) -> bool {
        match self.accounts.get(id) {
            Some(a) if cost.is_finite() && cost >= 0.0 => {
                a.budget.spent() + a.reserved + cost <= a.budget.total() + 1e-9
            }
            _ => false,
        }
    }

    /// Reserve `cost` on account `id` (dispatch time).
    pub fn reserve(&mut self, id: usize, cost: f64) -> Result<()> {
        if !self.can_reserve(id, cost) {
            let a = self.account(id)?;
            return Err(Error::BudgetExhausted {
                requested: cost,
                remaining: (a.budget.remaining() - a.reserved).max(0.0),
            });
        }
        self.account_mut(id)?.reserved += cost;
        Ok(())
    }

    /// Move `cost` from reservation to real spend on account `id`
    /// (delivery time). Fails — without touching the budget — if the
    /// account does not hold that much in reservations: a charge that
    /// lands on the wrong project's account cannot match a reservation
    /// there and is refused instead of leaking money across tenants.
    pub fn charge(&mut self, id: usize, cost: f64) -> Result<()> {
        let a = self.account_mut(id)?;
        if !cost.is_finite() || cost < 0.0 || cost > a.reserved + 1e-9 {
            return Err(Error::ServiceFailure(format!(
                "account {id} asked to charge {cost} with only {} reserved",
                a.reserved
            )));
        }
        a.budget.charge(cost)?;
        a.reserved = (a.reserved - cost).max(0.0);
        Ok(())
    }

    /// Release a reservation of `cost` on account `id` (expiry time).
    /// Same cross-charge guard as [`charge`](Self::charge).
    pub fn release(&mut self, id: usize, cost: f64) -> Result<()> {
        let a = self.account_mut(id)?;
        if !cost.is_finite() || cost < 0.0 || cost > a.reserved + 1e-9 {
            return Err(Error::ServiceFailure(format!(
                "account {id} asked to release {cost} with only {} reserved",
                a.reserved
            )));
        }
        a.reserved = (a.reserved - cost).max(0.0);
        Ok(())
    }

    /// Account `id`'s budget total.
    pub fn total(&self, id: usize) -> f64 {
        self.accounts.get(id).map_or(0.0, |a| a.budget.total())
    }

    /// Account `id`'s real (charged) spend.
    pub fn spent(&self, id: usize) -> f64 {
        self.accounts.get(id).map_or(0.0, |a| a.budget.spent())
    }

    /// Account `id`'s outstanding reservations.
    pub fn reserved(&self, id: usize) -> f64 {
        self.accounts.get(id).map_or(0.0, |a| a.reserved)
    }

    /// Number of charges posted to account `id`.
    pub fn charge_count(&self, id: usize) -> usize {
        self.accounts.get(id).map_or(0, |a| a.budget.charge_count())
    }

    /// Snapshot every account for checkpointing, in open (id) order.
    pub fn export(&self) -> Vec<AccountState> {
        self.accounts
            .iter()
            .map(|a| AccountState {
                total: a.budget.total(),
                spent: a.budget.spent(),
                charges: a.budget.charge_count(),
                reserved: a.reserved,
            })
            .collect()
    }

    /// Rebuild a book from checkpointed account states. Ids are dense
    /// open-order indices, so restoring the same state vector reproduces
    /// the same id assignment.
    pub fn restore(states: &[AccountState]) -> Result<Self> {
        let accounts = states
            .iter()
            .enumerate()
            .map(|(id, s)| {
                if !s.reserved.is_finite() || s.reserved < 0.0 {
                    return Err(Error::ServiceFailure(format!(
                        "account {id}: bad checkpointed reservation {}",
                        s.reserved
                    )));
                }
                Ok(Account {
                    budget: Budget::restore(s.total, s.spent, s.charges)?,
                    reserved: s.reserved,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { accounts })
    }
}

/// One account's checkpointable state: the budget plus its outstanding
/// reservations. `spent` and `reserved` are exact accumulated floats —
/// checkpoint codecs must preserve their bit patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountState {
    /// Budget ceiling.
    pub total: f64,
    /// Exact accumulated spend.
    pub spent: f64,
    /// Successful charges so far.
    pub charges: usize,
    /// Outstanding reservations.
    pub reserved: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    #[test]
    fn dispatch_reserves_and_delivery_charges_once() {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(10.0).unwrap();
        let id = ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 3.0, t(0.0), t(5.0), &budget)
            .unwrap();
        assert_eq!(ledger.reserved(), 3.0);
        assert_eq!(budget.spent(), 0.0);
        let d = ledger.deliver(id, t(2.0), &mut budget).unwrap();
        assert_eq!(
            d,
            Delivery::Accepted {
                cost: 3.0,
                latency: t(2.0)
            }
        );
        assert_eq!(ledger.reserved(), 0.0);
        assert_eq!(budget.spent(), 3.0);
        // A duplicate delivery is rejected and charges nothing.
        assert_eq!(
            ledger.deliver(id, t(3.0), &mut budget).unwrap(),
            Delivery::Rejected
        );
        assert_eq!(budget.spent(), 3.0);
        // The stale timeout is a no-op.
        assert_eq!(ledger.expire(id).unwrap(), Expiry::AlreadySettled);
        assert_eq!(budget.spent(), 3.0);
    }

    #[test]
    fn expiry_releases_reservation_and_frees_the_pair() {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(4.0).unwrap();
        let id = ledger
            .dispatch(ObjectId(1), AnnotatorId(2), 4.0, t(0.0), t(5.0), &budget)
            .unwrap();
        // Fully reserved: a second dispatch must not fit.
        assert!(ledger
            .dispatch(ObjectId(2), AnnotatorId(0), 1.0, t(0.0), t(5.0), &budget)
            .is_err());
        assert_eq!(ledger.expire(id).unwrap(), Expiry::TimedOut { cost: 4.0 });
        assert_eq!(ledger.reserved(), 0.0);
        assert!(!ledger.pair_claimed(ObjectId(1), AnnotatorId(2)));
        // The same pair can be re-asked under a new id...
        let id2 = ledger
            .dispatch(ObjectId(1), AnnotatorId(2), 4.0, t(6.0), t(11.0), &budget)
            .unwrap();
        assert_ne!(id, id2);
        // ...and the late answer for the dead assignment is rejected.
        assert_eq!(
            ledger.deliver(id, t(7.0), &mut budget).unwrap(),
            Delivery::Rejected
        );
        assert_eq!(budget.spent(), 0.0);
    }

    #[test]
    fn live_pairs_cannot_be_double_dispatched() {
        let mut ledger = AssignmentLedger::new();
        let mut budget = Budget::new(100.0).unwrap();
        let id = ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(0.0), t(5.0), &budget)
            .unwrap();
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(0.0), t(5.0), &budget)
            .is_err());
        ledger.deliver(id, t(1.0), &mut budget).unwrap();
        // Delivered pairs stay locked forever — one charge per pair.
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(2.0), t(7.0), &budget)
            .is_err());
        // A different annotator on the same object is fine.
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(1), 1.0, t(2.0), t(7.0), &budget)
            .is_ok());
    }

    #[test]
    fn rejects_malformed_dispatches() {
        let mut ledger = AssignmentLedger::new();
        let budget = Budget::new(10.0).unwrap();
        assert!(ledger
            .dispatch(
                ObjectId(0),
                AnnotatorId(0),
                f64::NAN,
                t(0.0),
                t(1.0),
                &budget
            )
            .is_err());
        assert!(ledger
            .dispatch(ObjectId(0), AnnotatorId(0), 1.0, t(2.0), t(1.0), &budget)
            .is_err());
        assert!(ledger.is_empty());
        assert_eq!(ledger.reserved(), 0.0);
    }

    #[test]
    fn settlement_without_budget_matches_the_classic_path() {
        let mut ledger = AssignmentLedger::new();
        let id = ledger
            .dispatch_reserved(ObjectId(0), AnnotatorId(0), 2.0, t(0.0), t(5.0))
            .unwrap();
        assert_eq!(ledger.reserved(), 2.0);
        let d = ledger.settle_deliver(id, t(1.5)).unwrap();
        assert_eq!(
            d,
            Delivery::Accepted {
                cost: 2.0,
                latency: t(1.5)
            }
        );
        assert_eq!(ledger.reserved(), 0.0);
        // Exactly-once: the second settlement is rejected.
        assert_eq!(
            ledger.settle_deliver(id, t(2.0)).unwrap(),
            Delivery::Rejected
        );
        assert_eq!(ledger.settle_expire(id).unwrap(), Expiry::AlreadySettled);
        // And the delivered pair stays locked.
        assert!(ledger.pair_claimed(ObjectId(0), AnnotatorId(0)));
    }

    #[test]
    fn accounts_isolate_budgets() {
        let mut book = AccountBook::new();
        let a = book.open(10.0).unwrap();
        let b = book.open(3.0).unwrap();
        // Exhaust b's budget with reservations.
        book.reserve(b, 3.0).unwrap();
        assert!(!book.can_reserve(b, 0.5));
        // a's headroom is untouched by b's exhaustion, and vice versa.
        assert!(book.can_reserve(a, 10.0));
        book.reserve(a, 4.0).unwrap();
        book.charge(a, 4.0).unwrap();
        assert_eq!(book.spent(a), 4.0);
        assert_eq!(book.spent(b), 0.0);
        // b cannot charge what it never reserved beyond its 3.0...
        assert!(book.charge(b, 3.5).is_err());
        // ...and the failed charge changed nothing.
        assert_eq!(book.spent(b), 0.0);
        assert_eq!(book.reserved(b), 3.0);
        book.release(b, 3.0).unwrap();
        assert_eq!(book.reserved(b), 0.0);
    }

    #[test]
    fn cross_charges_are_refused() {
        let mut book = AccountBook::new();
        let a = book.open(10.0).unwrap();
        let b = book.open(10.0).unwrap();
        book.reserve(a, 2.0).unwrap();
        // A settlement routed to the wrong account finds no reservation
        // there and fails loudly, leaving both accounts intact.
        assert!(book.charge(b, 2.0).is_err());
        assert!(book.release(b, 2.0).is_err());
        assert_eq!(book.spent(a), 0.0);
        assert_eq!(book.spent(b), 0.0);
        assert_eq!(book.reserved(a), 2.0);
        assert_eq!(book.reserved(b), 0.0);
        book.charge(a, 2.0).unwrap();
        assert_eq!(book.spent(a), 2.0);
        assert_eq!(book.charge_count(a), 1);
    }

    #[test]
    fn account_book_rejects_unknown_and_malformed_operations() {
        let mut book = AccountBook::new();
        assert!(book.open(f64::NAN).is_err());
        let a = book.open(5.0).unwrap();
        assert!(!book.can_reserve(99, 1.0));
        assert!(book.reserve(99, 1.0).is_err());
        assert!(book.charge(99, 1.0).is_err());
        assert!(!book.can_reserve(a, f64::INFINITY));
        assert!(book.reserve(a, -1.0).is_err());
        book.reserve(a, 1.0).unwrap();
        assert!(book.charge(a, f64::NAN).is_err());
        assert!(book.release(a, -0.5).is_err());
        assert_eq!(book.reserved(a), 1.0);
    }
}
