//! Supervision: retry backoff, annotator quarantine, graceful degradation.
//!
//! The async runtime was built for a well-behaved pool: timeouts requeue
//! immediately, and every annotator stays eligible forever. Under injected
//! faults (see `crowdrl_sim::faults`) both assumptions hurt. This module
//! adds the two supervision mechanisms, both **off by default** so the
//! golden traces are untouched:
//!
//! * **Retry backoff** ([`SupervisorConfig`]): an object whose assignment
//!   timed out is requeued, but held out of the candidate set for an
//!   exponentially growing window (`base · 2^(retries-1)`, capped). A
//!   straggling or absent annotator then costs one timeout, not a tight
//!   requeue loop burning watermark refreshes.
//! * **Quarantine** ([`Quarantine`]): a circuit breaker per annotator. The
//!   truth-inference pass already estimates every annotator's confusion
//!   matrix; when an annotator's estimated quality collapses toward the
//!   uniform-random floor `1/K` (spam) or below it (adversarial), the
//!   breaker opens and the annotator is removed from selection. After a
//!   probation period it is re-admitted, and re-quarantined only if *new*
//!   answers keep scoring badly — so a noisy early estimate cannot ban an
//!   annotator forever.
//!
//! When quarantine shrinks the live pool below quorum, a
//! [`DegradedMode`] policy decides what gives: `Escalate` re-admits the
//! best quarantined annotators (experts first) to restore quorum;
//! `ClassifierOnly` keeps the breakers closed and lets panels shrink,
//! leaning on classifier enrichment to finish the run.

use crowdrl_types::{AnnotatorId, AnnotatorProfile, Error, Result};

/// Retry/backoff policy for timed-out assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Backoff after the first timeout of an object, in simulated time
    /// units; doubles per further retry. `0.0` disables backoff entirely
    /// (the seed behaviour: immediate requeue eligibility).
    pub backoff_base: f64,
    /// Upper bound on any single backoff window.
    pub backoff_cap: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff_base: 0.0,
            backoff_cap: 240.0,
        }
    }
}

impl SupervisorConfig {
    /// Check the knobs are sane.
    pub fn validate(&self) -> Result<()> {
        if !self.backoff_base.is_finite() || self.backoff_base < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "backoff_base must be finite and non-negative, got {}",
                self.backoff_base
            )));
        }
        if !self.backoff_cap.is_finite() || self.backoff_cap < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "backoff_cap must be finite and non-negative, got {}",
                self.backoff_cap
            )));
        }
        Ok(())
    }

    /// Backoff window after the `retries`-th timeout (1-based), in
    /// simulated time units. Zero when backoff is disabled.
    pub fn backoff_delay(&self, retries: usize) -> f64 {
        if self.backoff_base <= 0.0 || retries == 0 {
            return 0.0;
        }
        let doublings = (retries - 1).min(52) as i32;
        (self.backoff_base * f64::powi(2.0, doublings)).min(self.backoff_cap)
    }
}

/// What to do when quarantine pushes the live pool below quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Re-admit the best quarantined annotators (experts first, then by
    /// estimated quality) until quorum is restored.
    Escalate,
    /// Keep the breakers open and let selection panels shrink; the run
    /// leans on classifier enrichment instead of bad annotators.
    ClassifierOnly,
}

/// Circuit-breaker policy for annotators whose inferred quality collapses.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineConfig {
    /// Master switch; `false` keeps the seed behaviour bit-identical.
    pub enabled: bool,
    /// Minimum answers an annotator must have given before its estimate
    /// is trusted enough to quarantine on.
    pub min_answers: usize,
    /// Normalized-quality threshold in `[0, 1]`: `0` is uniform-random
    /// (`quality = 1/K`), `1` is perfect. Scores below this open the
    /// breaker; adversarial annotators score negative and always trip.
    pub score_threshold: f64,
    /// Refreshes a quarantined annotator sits out before probation.
    pub probation_refreshes: usize,
    /// Minimum live (non-quarantined) pool size before the degraded-mode
    /// policy engages. `0` means "the panel size `k`" at the call site.
    pub min_pool: usize,
    /// Policy when the live pool falls below quorum.
    pub degraded: DegradedMode,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            min_answers: 8,
            score_threshold: 0.35,
            probation_refreshes: 4,
            min_pool: 0,
            degraded: DegradedMode::Escalate,
        }
    }
}

impl QuarantineConfig {
    /// Check the knobs are sane.
    pub fn validate(&self) -> Result<()> {
        if !self.score_threshold.is_finite() || !(0.0..=1.0).contains(&self.score_threshold) {
            return Err(Error::InvalidParameter(format!(
                "score_threshold must be in [0, 1], got {}",
                self.score_threshold
            )));
        }
        if self.enabled && self.probation_refreshes == 0 {
            return Err(Error::InvalidParameter(
                "probation_refreshes must be positive when quarantine is enabled".into(),
            ));
        }
        Ok(())
    }
}

/// Breaker state of one annotator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineStatus {
    /// Eligible for selection.
    Active,
    /// Removed from selection.
    Quarantined {
        /// Refresh index at which probation starts.
        until_refresh: usize,
        /// Answer count when the breaker opened; probation re-quarantines
        /// only on evidence newer than this.
        answers_at_entry: usize,
    },
    /// Re-admitted on probation: selectable again, but re-quarantined if
    /// *new* answers keep the score below threshold.
    Probation {
        /// Answer count when the breaker opened.
        answers_at_entry: usize,
    },
}

/// One breaker transition, surfaced for tracing and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// The annotator whose breaker moved.
    pub annotator: AnnotatorId,
    /// `true` when the breaker opened (entered quarantine), `false` when
    /// the annotator was released to probation or re-admitted by
    /// escalation.
    pub entered: bool,
}

/// Per-annotator circuit breakers driven by inferred confusion matrices.
#[derive(Debug, Clone)]
pub struct Quarantine {
    config: QuarantineConfig,
    status: Vec<QuarantineStatus>,
}

impl Quarantine {
    /// All breakers closed.
    pub fn new(config: QuarantineConfig, pool_size: usize) -> Self {
        Self {
            config,
            status: vec![QuarantineStatus::Active; pool_size],
        }
    }

    /// Whether the annotator at pool index `idx` is currently removed
    /// from selection.
    #[inline]
    pub fn is_quarantined(&self, idx: usize) -> bool {
        matches!(self.status[idx], QuarantineStatus::Quarantined { .. })
    }

    /// Number of annotators currently eligible for selection.
    pub fn active_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| !matches!(s, QuarantineStatus::Quarantined { .. }))
            .count()
    }

    /// Raw breaker states, for checkpointing.
    pub fn states(&self) -> &[QuarantineStatus] {
        &self.status
    }

    /// Restore breaker states from a checkpoint.
    pub fn restore(config: QuarantineConfig, status: Vec<QuarantineStatus>) -> Self {
        Self { config, status }
    }

    /// Normalized quality score: maps the uniform-random floor `1/K` to
    /// `0.0` and a perfect annotator to `1.0`. Adversarial annotators
    /// (worse than random) score negative.
    fn score(quality: f64, num_classes: usize) -> f64 {
        let floor = 1.0 / num_classes as f64;
        (quality - floor) / (1.0 - floor)
    }

    /// Advance every breaker one refresh, given the latest inferred
    /// annotator qualities and per-annotator answer counts. Returns the
    /// transitions that happened, in pool order (quarantines and
    /// probation releases first, then any escalation re-admissions).
    pub fn update(
        &mut self,
        refresh_index: usize,
        qualities: &[f64],
        answer_counts: &[usize],
        num_classes: usize,
        profiles: &[AnnotatorProfile],
        quorum: usize,
    ) -> Vec<QuarantineEvent> {
        let mut events = Vec::new();
        if !self.config.enabled {
            return events;
        }
        for idx in 0..self.status.len() {
            let answers = answer_counts.get(idx).copied().unwrap_or(0);
            let score = qualities
                .get(idx)
                .map(|&q| Self::score(q, num_classes))
                .unwrap_or(1.0);
            let trips = answers >= self.config.min_answers && score < self.config.score_threshold;
            match self.status[idx] {
                QuarantineStatus::Active if trips => {
                    self.status[idx] = QuarantineStatus::Quarantined {
                        until_refresh: refresh_index + self.config.probation_refreshes,
                        answers_at_entry: answers,
                    };
                    events.push(QuarantineEvent {
                        annotator: AnnotatorId(idx),
                        entered: true,
                    });
                }
                QuarantineStatus::Quarantined {
                    until_refresh,
                    answers_at_entry,
                } if refresh_index >= until_refresh => {
                    self.status[idx] = QuarantineStatus::Probation { answers_at_entry };
                    events.push(QuarantineEvent {
                        annotator: AnnotatorId(idx),
                        entered: false,
                    });
                }
                // Probation only re-trips on evidence newer than the
                // original quarantine: the answer count must have grown.
                QuarantineStatus::Probation { answers_at_entry }
                    if trips && answers > answers_at_entry =>
                {
                    self.status[idx] = QuarantineStatus::Quarantined {
                        until_refresh: refresh_index + self.config.probation_refreshes,
                        answers_at_entry: answers,
                    };
                    events.push(QuarantineEvent {
                        annotator: AnnotatorId(idx),
                        entered: true,
                    });
                }
                _ => {}
            }
        }
        if self.config.degraded == DegradedMode::Escalate {
            events.extend(self.escalate(qualities, num_classes, profiles, quorum));
        }
        events
    }

    /// Degraded-mode escalation: while the live pool is below quorum,
    /// re-admit the best quarantined annotators — experts first, then by
    /// estimated quality, index breaking ties — as probationers.
    fn escalate(
        &mut self,
        qualities: &[f64],
        num_classes: usize,
        profiles: &[AnnotatorProfile],
        quorum: usize,
    ) -> Vec<QuarantineEvent> {
        let mut events = Vec::new();
        while self.active_count() < quorum {
            let best = self
                .status
                .iter()
                .enumerate()
                .filter_map(|(idx, s)| match s {
                    QuarantineStatus::Quarantined {
                        answers_at_entry, ..
                    } => {
                        let expert = profiles.get(idx).is_some_and(AnnotatorProfile::is_expert);
                        let score = qualities
                            .get(idx)
                            .map(|&q| Self::score(q, num_classes))
                            .unwrap_or(0.0);
                        Some((idx, *answers_at_entry, expert, score))
                    }
                    _ => None,
                })
                // max_by prefers later elements on ties; reverse the index
                // ordering so the *lowest* index wins a tie.
                .max_by(|a, b| {
                    (a.2, a.3, std::cmp::Reverse(a.0))
                        .partial_cmp(&(b.2, b.3, std::cmp::Reverse(b.0)))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some((idx, answers_at_entry, _, _)) = best else {
                break; // nothing left to release
            };
            self.status[idx] = QuarantineStatus::Probation { answers_at_entry };
            events.push(QuarantineEvent {
                annotator: AnnotatorId(idx),
                entered: false,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::AnnotatorKind;

    fn profiles(n: usize, experts: &[usize]) -> Vec<AnnotatorProfile> {
        (0..n)
            .map(|i| {
                let kind = if experts.contains(&i) {
                    AnnotatorKind::Expert
                } else {
                    AnnotatorKind::Worker
                };
                let cost = if experts.contains(&i) { 5.0 } else { 1.0 };
                AnnotatorProfile::new(AnnotatorId(i), kind, cost).unwrap()
            })
            .collect()
    }

    fn cfg() -> QuarantineConfig {
        QuarantineConfig {
            enabled: true,
            min_answers: 4,
            score_threshold: 0.35,
            probation_refreshes: 2,
            min_pool: 0,
            degraded: DegradedMode::ClassifierOnly,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let s = SupervisorConfig {
            backoff_base: 10.0,
            backoff_cap: 35.0,
        };
        assert_eq!(s.backoff_delay(0), 0.0);
        assert_eq!(s.backoff_delay(1), 10.0);
        assert_eq!(s.backoff_delay(2), 20.0);
        assert_eq!(s.backoff_delay(3), 35.0); // 40 capped
        assert_eq!(s.backoff_delay(60), 35.0); // huge retry counts stay finite

        let off = SupervisorConfig::default();
        assert_eq!(off.backoff_delay(5), 0.0);
    }

    #[test]
    fn supervisor_validate_rejects_nonsense() {
        let mut s = SupervisorConfig {
            backoff_base: -1.0,
            ..SupervisorConfig::default()
        };
        assert!(s.validate().is_err());
        s.backoff_base = f64::NAN;
        assert!(s.validate().is_err());
        s.backoff_base = 1.0;
        s.backoff_cap = f64::INFINITY;
        assert!(s.validate().is_err());
    }

    #[test]
    fn quarantine_needs_evidence_before_tripping() {
        let mut q = Quarantine::new(cfg(), 3);
        let profs = profiles(3, &[]);
        // Quality at the random floor (K=2 → 0.5) but only 2 answers: no trip.
        let ev = q.update(0, &[0.9, 0.5, 0.9], &[10, 2, 10], 2, &profs, 2);
        assert!(ev.is_empty());
        // Enough answers now: trips.
        let ev = q.update(1, &[0.9, 0.5, 0.9], &[10, 5, 10], 2, &profs, 2);
        assert_eq!(
            ev,
            vec![QuarantineEvent {
                annotator: AnnotatorId(1),
                entered: true
            }]
        );
        assert!(q.is_quarantined(1));
        assert_eq!(q.active_count(), 2);
    }

    #[test]
    fn probation_requires_new_evidence_to_retrip() {
        let mut q = Quarantine::new(cfg(), 2);
        let profs = profiles(2, &[]);
        q.update(0, &[0.9, 0.4], &[10, 6], 2, &profs, 1);
        assert!(q.is_quarantined(1));
        // Sits out probation_refreshes = 2 refreshes.
        assert!(q.update(1, &[0.9, 0.4], &[10, 6], 2, &profs, 1).is_empty());
        let ev = q.update(2, &[0.9, 0.4], &[10, 6], 2, &profs, 1);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].entered);
        assert!(!q.is_quarantined(1));
        // Same stale answer count: score still bad, but no re-trip.
        assert!(q.update(3, &[0.9, 0.4], &[10, 6], 2, &profs, 1).is_empty());
        // One new (still bad) answer: re-trips.
        let ev = q.update(4, &[0.9, 0.4], &[10, 7], 2, &profs, 1);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].entered);
    }

    #[test]
    fn adversarial_scores_negative_and_trips() {
        // Quality below the 1/K floor → negative normalized score.
        let mut q = Quarantine::new(cfg(), 1);
        let profs = profiles(1, &[]);
        let ev = q.update(0, &[0.1], &[20], 4, &profs, 0);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].entered);
    }

    #[test]
    fn escalate_releases_experts_first_to_restore_quorum() {
        let mut config = cfg();
        config.degraded = DegradedMode::Escalate;
        let mut q = Quarantine::new(config, 3);
        let profs = profiles(3, &[2]);
        // All three trip at once; quorum 2 forces two releases, the
        // expert (index 2) first, then the better worker (index 0).
        let ev = q.update(0, &[0.30, 0.20, 0.30], &[10, 10, 10], 2, &profs, 2);
        assert_eq!(ev.iter().filter(|e| e.entered).count(), 3);
        let released: Vec<_> = ev
            .iter()
            .filter(|e| !e.entered)
            .map(|e| e.annotator)
            .collect();
        assert_eq!(released, vec![AnnotatorId(2), AnnotatorId(0)]);
        assert_eq!(q.active_count(), 2);
        assert!(q.is_quarantined(1));
    }

    #[test]
    fn classifier_only_lets_pool_shrink() {
        let mut q = Quarantine::new(cfg(), 2);
        let profs = profiles(2, &[]);
        let ev = q.update(0, &[0.2, 0.2], &[10, 10], 2, &profs, 2);
        assert_eq!(ev.iter().filter(|e| e.entered).count(), 2);
        assert_eq!(q.active_count(), 0);
    }

    #[test]
    fn disabled_quarantine_never_moves() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 2);
        let profs = profiles(2, &[]);
        assert!(q
            .update(0, &[0.0, 0.0], &[100, 100], 2, &profs, 2)
            .is_empty());
        assert_eq!(q.active_count(), 2);
    }

    #[test]
    fn quarantine_validate_rejects_nonsense() {
        let mut c = QuarantineConfig {
            score_threshold: 1.5,
            ..QuarantineConfig::default()
        };
        assert!(c.validate().is_err());
        c.score_threshold = f64::NAN;
        assert!(c.validate().is_err());
        c.score_threshold = 0.3;
        c.enabled = true;
        c.probation_refreshes = 0;
        assert!(c.validate().is_err());
        c.probation_refreshes = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn states_roundtrip() {
        let mut q = Quarantine::new(cfg(), 2);
        let profs = profiles(2, &[]);
        q.update(0, &[0.9, 0.2], &[10, 10], 2, &profs, 1);
        let restored = Quarantine::restore(cfg(), q.states().to_vec());
        assert_eq!(restored.states(), q.states());
    }
}
