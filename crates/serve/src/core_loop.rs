//! The decision core of the asynchronous runtime.
//!
//! Everything the *agent* does — truth inference, trust tracking,
//! enrichment, reward credit, DQN training, and the next batch of
//! assignments — lives in [`AgentCore`], one struct with no knowledge of
//! threads or event queues. The single-threaded mode calls its methods
//! inline; the worker-pool mode moves it onto a dedicated thread and
//! feeds it the same calls through a channel. Identical call sequence +
//! one owned RNG = identical decisions in both modes, which is the whole
//! determinism story on the scoring side.
//!
//! The loop body intentionally mirrors [`CrowdRl::run`]'s iteration
//! (selection → inference → trust → enrichment → reward → train); what
//! changes is the cadence (watermark-triggered instead of per-batch) and
//! that reward credit for a batch is assigned at the *next* refresh after
//! it, once the newly delivered answers have moved the posteriors.
//!
//! [`CrowdRl::run`]: crowdrl_core::CrowdRl::run

use crate::supervisor::{Quarantine, QuarantineConfig, QuarantineEvent, QuarantineStatus};
use crowdrl_core::agent::{AgentState, Assignment, SelectionAgent};
use crowdrl_core::classifier_util::retrain_on_labelled;
use crowdrl_core::config::{CrowdRlConfig, InferenceModel};
use crowdrl_core::enrichment::{enrich, fallback_label_all, refresh_enriched};
use crowdrl_core::features::{embed_with, FeatureCache, StateSnapshot};
use crowdrl_core::infer_step::{apply_inference, make_engine, run_inference_step};
use crowdrl_core::outcome::{IterationStats, LabellingOutcome};
use crowdrl_core::reward::{iteration_reward, RewardInputs};
use crowdrl_core::workflow::classifier_accuracy_on_labelled;
use crowdrl_inference::{EngineSnapshot, InferenceEngine};
use crowdrl_nn::{ClassifierSnapshot, SoftmaxClassifier};
use crowdrl_obs as obs;
use crowdrl_sim::AnnotatorPool;
use crowdrl_types::rng::{sample_indices, seeded};
use crowdrl_types::{
    AnnotatorId, AnnotatorProfile, Answer, AnswerSet, Dataset, Error, LabelState, LabelledSet,
    ObjectId, Result, SimTime,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The budget as the agent is allowed to see it: real charges plus the
/// ledger's outstanding reservations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetView {
    /// Total budget of the run.
    pub total: f64,
    /// Charged so far (delivered answers).
    pub spent: f64,
    /// Reserved by in-flight assignments.
    pub reserved: f64,
}

impl BudgetView {
    /// Budget still free to commit: `total − spent − reserved`.
    pub fn usable(&self) -> f64 {
        (self.total - self.spent - self.reserved).max(0.0)
    }

    /// Committed fraction (spent + reserved, what pacing must respect).
    pub fn committed_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            return 1.0;
        }
        ((self.spent + self.reserved) / self.total).clamp(0.0, 1.0)
    }
}

/// A refresh request from the event pump.
#[derive(Debug, Clone)]
pub struct RefreshRequest {
    /// All answers ingested so far. Shared with the pump's live copy —
    /// the pump hands out a cheap `Arc` clone per refresh instead of
    /// deep-copying the whole answer set, and resumes sole ownership
    /// (copy-on-write) once the core drops the request.
    pub answers: Arc<AnswerSet>,
    /// Budget state including reservations.
    pub view: BudgetView,
    /// Objects the agent must not select: currently in flight, or
    /// abandoned after exhausting their requeue allowance.
    pub blocked: HashSet<ObjectId>,
    /// Free concurrency slots per annotator at refresh time (shared
    /// pool brokering). Selection filters out exhausted annotators the
    /// way it filters quarantined ones, and caps how many times one
    /// annotator is reused within a single reply. `None` means
    /// concurrency is unbounded (the single-run pump).
    pub slots: Option<HashMap<AnnotatorId, usize>>,
    /// The simulated clock at the refresh.
    pub now: SimTime,
    /// Answers delivered since the previous refresh.
    pub answers_since: usize,
}

/// The agent's answer to a refresh: what to dispatch next.
#[derive(Debug, Clone)]
pub struct RefreshReply {
    /// Panels to dispatch: each object with its chosen annotators.
    pub panels: Vec<(ObjectId, Vec<AnnotatorId>)>,
    /// Labelled objects after this refresh (for the trace).
    pub labelled: usize,
    /// True once every object is labelled — the pump stops dispatching
    /// and shuts down.
    pub done: bool,
    /// Circuit-breaker transitions this refresh caused (empty unless
    /// quarantine is enabled), for the pump's trace.
    pub quarantine: Vec<QuarantineEvent>,
}

/// Final accounting handed to [`AgentCore::finalize`].
#[derive(Debug, Clone)]
pub struct FinalizeRequest {
    /// All answers ingested over the run.
    pub answers: Arc<AnswerSet>,
    /// Real budget charges.
    pub budget_spent: f64,
}

/// A decided batch awaiting reward credit at the next refresh.
#[derive(Debug)]
struct PendingBatch {
    assignments: Vec<Assignment>,
    /// Best confidence estimate per selected object *before* its new
    /// answers (previous posterior, else classifier probability).
    conf_before: HashMap<ObjectId, f64>,
    /// The classifier's pre-answer argmax per object, for the trust
    /// estimate (only recorded when the classifier is trained).
    phi_guesses: Vec<(ObjectId, usize)>,
}

/// Serializable form of one [`PendingBatch`]. `conf_before` is sorted by
/// object so the encoding is deterministic regardless of hash order.
#[derive(Debug, Clone)]
pub struct PendingBatchState {
    /// The batch's assignments (objects, annotators, replay embeddings).
    pub assignments: Vec<Assignment>,
    /// Pre-answer confidence per object, sorted by object id.
    pub conf_before: Vec<(ObjectId, f64)>,
    /// Pre-answer classifier guesses.
    pub phi_guesses: Vec<(ObjectId, usize)>,
}

/// Checkpointable state of an [`AgentCore`]: everything its constructor
/// does not re-derive from the dataset and pool.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Classifier weights, optimizer state and generation counter.
    pub classifier: ClassifierSnapshot,
    /// DQN, replay buffer and exploration state.
    pub agent: AgentState,
    /// Per-object label states.
    pub labelled: Vec<LabelState>,
    /// Latest per-annotator quality estimates.
    pub qualities: Vec<f64>,
    /// Last known posterior confidence per object.
    pub prev_confidence: Vec<Option<f64>>,
    /// Batches dispatched but not yet credited with reward.
    pub outstanding: Vec<PendingBatchState>,
    /// Per-refresh statistics so far.
    pub trace: Vec<IterationStats>,
    /// Decayed out-of-sample agreement numerator.
    pub trust_agree: f64,
    /// Decayed out-of-sample agreement denominator.
    pub trust_scored: f64,
    /// The classifier trust estimate derived from the two above.
    pub phi_trust: f64,
    /// The per-refresh spending allowance, once fixed.
    pub fixed_allowance: Option<f64>,
    /// Budget charged as of the previous refresh.
    pub last_spent: f64,
    /// Refreshes completed.
    pub refresh_index: usize,
    /// Warm EM state, when an engine is configured and has run.
    pub engine: Option<EngineSnapshot>,
    /// The core's private RNG stream.
    pub rng: [u64; 4],
    /// Annotator circuit-breaker states.
    pub quarantine: Vec<QuarantineStatus>,
}

/// The agent side of the asynchronous runtime (see module docs).
pub struct AgentCore<'a> {
    config: CrowdRlConfig,
    dataset: &'a Dataset,
    pool: &'a AnnotatorPool,
    classifier: SoftmaxClassifier,
    agent: SelectionAgent,
    feature_cache: FeatureCache,
    labelled: LabelledSet,
    qualities: Vec<f64>,
    prev_confidence: Vec<Option<f64>>,
    outstanding: Vec<PendingBatch>,
    trace: Vec<IterationStats>,
    trust_agree: f64,
    trust_scored: f64,
    phi_trust: f64,
    max_cost: f64,
    min_cost: f64,
    /// Per-refresh spending allowance, fixed at the first refresh (same
    /// pacing rationale as the batch workflow).
    fixed_allowance: Option<f64>,
    last_spent: f64,
    refresh_index: usize,
    /// Persistent inference engine carrying EM state across refreshes
    /// (None = stateless cold inference every refresh).
    engine: Option<InferenceEngine>,
    rng: StdRng,
    /// Per-annotator circuit breakers (no-ops unless enabled).
    quarantine: Quarantine,
    /// Live-pool size below which degraded mode engages.
    quorum: usize,
    /// Prefix for every span/gauge/counter this core emits (e.g.
    /// `project.3.`). Empty for single runs, so their trace names are
    /// unchanged; the multi-tenant service sets one scope per project so
    /// concurrent runs do not collide in a shared trace.
    obs_scope: String,
}

impl<'a> AgentCore<'a> {
    /// Build the core. `seed` fixes its private RNG stream; two cores
    /// with the same seed and call sequence behave identically.
    pub fn new(
        config: CrowdRlConfig,
        dataset: &'a Dataset,
        pool: &'a AnnotatorPool,
        seed: u64,
        quarantine: QuarantineConfig,
    ) -> Result<Self> {
        config.validate()?;
        quarantine.validate()?;
        let mut rng = seeded(seed);
        let classifier = SoftmaxClassifier::new(
            config.classifier.clone(),
            dataset.dim(),
            dataset.num_classes(),
            &mut rng,
        )?;
        let agent = SelectionAgent::new(
            config.dqn.clone(),
            &config.exploration,
            config.decide,
            config.pretrained_dqn.as_deref(),
            &mut rng,
        )?;
        let n = dataset.len();
        let max_cost = pool
            .profiles()
            .iter()
            .map(|p| p.cost)
            .fold(0.0f64, f64::max);
        Ok(Self {
            feature_cache: FeatureCache::new(n, dataset.num_classes()),
            labelled: LabelledSet::new(n),
            qualities: vec![0.7f64; pool.len()],
            prev_confidence: vec![None; n],
            outstanding: Vec::new(),
            trace: Vec::new(),
            trust_agree: 0.0,
            trust_scored: 0.0,
            phi_trust: 0.0,
            max_cost,
            min_cost: pool.min_cost(),
            fixed_allowance: None,
            last_spent: 0.0,
            refresh_index: 0,
            engine: make_engine(&config.inference, &config.engine),
            quorum: if quarantine.min_pool == 0 {
                config.assignment_k
            } else {
                quarantine.min_pool
            },
            quarantine: Quarantine::new(quarantine, pool.len()),
            obs_scope: String::new(),
            config,
            dataset,
            pool,
            classifier,
            agent,
            rng,
        })
    }

    /// Scope every metric this core emits under `scope` (conventionally
    /// `project.<id>.`). Pass an empty string to restore the unscoped
    /// single-run names.
    pub fn set_obs_scope(&mut self, scope: impl Into<String>) {
        self.obs_scope = scope.into();
    }

    /// `scope + name`, borrowing `name` unchanged on the (single-run)
    /// empty-scope path so unscoped runs allocate nothing extra.
    fn scoped(&self, name: &'static str) -> std::borrow::Cow<'static, str> {
        if self.obs_scope.is_empty() {
            std::borrow::Cow::Borrowed(name)
        } else {
            std::borrow::Cow::Owned(format!("{}{name}", self.obs_scope))
        }
    }

    /// The initial α·|O| stratified panels (one random expert plus random
    /// workers each), exactly as the batch workflow seeds its run — but
    /// returned for asynchronous dispatch instead of being purchased
    /// synchronously.
    pub fn initial_panels(&mut self) -> Vec<(ObjectId, Vec<AnnotatorId>)> {
        let n = self.dataset.len();
        let initial = ((self.config.initial_ratio * n as f64).round() as usize).min(n);
        let objects = sample_indices(&mut self.rng, n, initial);
        let experts: Vec<_> = self
            .pool
            .profiles()
            .iter()
            .filter(|p| p.is_expert())
            .collect();
        let workers: Vec<_> = self
            .pool
            .profiles()
            .iter()
            .filter(|p| !p.is_expert())
            .collect();
        let mut panels = Vec::with_capacity(objects.len());
        for obj in objects {
            let mut annotators = Vec::with_capacity(self.config.assignment_k);
            if !experts.is_empty() {
                annotators.push(experts[self.rng.random_range(0..experts.len())].id);
            }
            let tier = if workers.is_empty() {
                &experts
            } else {
                &workers
            };
            let fill = sample_indices(
                &mut self.rng,
                tier.len(),
                self.config.assignment_k.saturating_sub(annotators.len()),
            );
            annotators.extend(fill.into_iter().map(|i| tier[i].id));
            panels.push((ObjectId(obj), annotators));
        }
        panels
    }

    /// The answers truth inference should trust. While an annotator sits
    /// in quarantine its past votes are excluded along with its future
    /// assignments — a tripped breaker means the estimates that *would*
    /// down-weight those answers can't be relied on. Returns `None` on
    /// the common path (nobody quarantined, quarantine disabled) so the
    /// caller keeps the original set untouched and bit-identical.
    fn trusted_answers(&self, answers: &AnswerSet) -> Result<Option<AnswerSet>> {
        if !(0..self.pool.len()).any(|i| self.quarantine.is_quarantined(i)) {
            return Ok(None);
        }
        let mut filtered = AnswerSet::new(self.dataset.len());
        for i in 0..self.dataset.len() {
            let object = ObjectId(i);
            for &(annotator, label) in answers.answers_for(object) {
                if !self.quarantine.is_quarantined(annotator.index()) {
                    filtered.record(Answer {
                        object,
                        annotator,
                        label,
                    })?;
                }
            }
        }
        // Degenerate corner: every answer came from quarantined
        // annotators. Inferring over nothing would be worse than
        // inferring over suspect votes, so keep the original set.
        if filtered.total_answers() == 0 {
            return Ok(None);
        }
        Ok(Some(filtered))
    }

    /// One refresh: ingest the answers, credit outstanding batches, and
    /// decide the next panels. Mirrors one iteration of the batch loop.
    pub fn refresh(&mut self, req: &RefreshRequest) -> Result<RefreshReply> {
        let refresh_span = obs::span(&self.scoped("serve.refresh"));
        let k_classes = self.dataset.num_classes();

        // (a) Truth inference over everything delivered so far, minus
        // votes from quarantined annotators.
        let inference_span = obs::span(&self.scoped("serve.inference"));
        let result = if req.answers.total_answers() > 0 {
            let trusted = self.trusted_answers(&req.answers)?;
            let result = run_inference_step(
                &mut self.engine,
                &self.config.inference,
                self.dataset,
                trusted.as_ref().unwrap_or(&req.answers),
                self.pool,
                &mut self.classifier,
                &mut self.rng,
            )?;
            apply_inference(
                &result,
                &mut self.labelled,
                &mut self.qualities,
                self.config.label_confidence,
            )?;
            for obj in result.inferred_objects() {
                self.prev_confidence[obj.index()] = result.confidence(obj);
            }
            Some(result)
        } else {
            None
        };
        drop(inference_span);

        // (a') Advance the annotator circuit breakers on the freshly
        // inferred confusion matrices (no-op unless quarantine is
        // enabled).
        let mut quarantine_events = Vec::new();
        if let Some(result) = &result {
            quarantine_events = self.quarantine.update(
                self.refresh_index,
                &result.qualities(),
                &req.answers.answer_counts(self.pool.len()),
                k_classes,
                self.pool.profiles(),
                self.quorum,
            );
            for ev in &quarantine_events {
                // Dirty-set discipline for the decide-path activation
                // cache: a breaker transition means this annotator's
                // standing just changed (and a release usually lands with
                // a moved quality estimate), so drop its cached partial.
                // Correctness never depends on this — entries are keyed
                // by parameter generation and feature bits — but it keeps
                // the cache from holding rows for benched annotators.
                self.agent.invalidate_annotator(ev.annotator.index());
                if ev.entered {
                    obs::counter_add(&self.scoped("quarantine.entered"), 1);
                } else {
                    obs::counter_add(&self.scoped("quarantine.released"), 1);
                }
            }
        }

        // (b) Trust update from the outstanding batches' pre-answer
        // guesses (same decayed out-of-sample agreement as the workflow).
        let mut agree = 0usize;
        let mut scored = 0usize;
        if let Some(result) = &result {
            for batch in &self.outstanding {
                for (obj, guess) in &batch.phi_guesses {
                    if result.confidence(*obj).unwrap_or(0.0) < 0.85 {
                        continue;
                    }
                    if let Some(label) = result.label(*obj) {
                        scored += 1;
                        if label.index() == *guess {
                            agree += 1;
                        }
                    }
                }
            }
        }
        self.trust_agree = 0.97 * self.trust_agree + agree as f64;
        self.trust_scored = 0.97 * self.trust_scored + scored as f64;
        self.phi_trust = if self.trust_scored >= 10.0 {
            let p = (self.trust_agree / self.trust_scored).clamp(0.0, 1.0);
            p - (p * (1.0 - p) / self.trust_scored).sqrt()
        } else {
            0.0
        };

        // (c) Retrain (non-joint models) and enrich behind the gates.
        if result.is_some() && !matches!(self.config.inference, InferenceModel::Joint(_)) {
            retrain_on_labelled(
                &mut self.classifier,
                self.dataset,
                &self.labelled,
                &mut self.rng,
            )?;
        }
        let enriched = if self.warmup_done() && self.phi_trust >= self.config.enrichment_trust {
            enrich(
                self.dataset,
                &self.classifier,
                &mut self.labelled,
                self.config.enrichment_margin,
                self.config.enrichment_cap_per_iter,
            )?
            .len()
        } else {
            0
        };

        // (d) Credit every outstanding batch with its confidence gains
        // and store the transitions. The batches were decided one or more
        // refreshes ago; their effect is the posterior movement visible
        // *now*.
        let terminal = self.labelled.all_labelled() || req.view.usable() < self.min_cost;
        let batches = std::mem::take(&mut self.outstanding);
        let mut reward_sum = 0.0;
        let mut reward_count = 0usize;
        let k = self.config.assignment_k.max(1) as f64;
        for batch in batches {
            let rewards: Vec<f64> = batch
                .assignments
                .iter()
                .map(|a| {
                    let before = batch
                        .conf_before
                        .get(&a.object)
                        .copied()
                        .unwrap_or(1.0 / k_classes as f64);
                    let after = result
                        .as_ref()
                        .and_then(|r| r.confidence(a.object))
                        .unwrap_or(0.0);
                    let confidence = (after - before).max(0.0);
                    let panel_cost: f64 = a
                        .annotators
                        .iter()
                        .map(|&id| self.pool.profile(id).cost)
                        .sum();
                    iteration_reward(
                        self.config.lambda,
                        self.config.mu,
                        self.config.eta,
                        RewardInputs {
                            enriched,
                            unlabelled_before: self.labelled.unlabelled_count(),
                            spend: panel_cost,
                            max_iter_spend: k * self.max_cost,
                            mean_confidence: confidence,
                        },
                    )
                })
                .collect();
            reward_sum += rewards.iter().sum::<f64>();
            reward_count += rewards.len();
            let next_candidates = if terminal {
                Vec::new()
            } else {
                self.bootstrap_embeddings(&req.answers, req.view)
            };
            self.agent
                .remember(&batch.assignments, &rewards, &next_candidates, terminal);
        }

        // (e) Decide the next panels (unless the refresh cap is hit).
        let decide_span = obs::span(&self.scoped("serve.decide"));
        let panels = if self.refresh_index < self.config.max_iters && !self.labelled.all_labelled()
        {
            self.decide(req)?
        } else {
            Vec::new()
        };
        drop(decide_span);

        let reward = if reward_count == 0 {
            0.0
        } else {
            reward_sum / reward_count as f64
        };
        self.trace.push(IterationStats {
            iteration: self.refresh_index,
            enriched,
            selected: panels.len(),
            answers: req.answers_since,
            spend: req.view.spent - self.last_spent,
            reward,
            labelled_total: self.labelled.labelled_count(),
            td_loss: None,
        });
        self.last_spent = req.view.spent;

        if obs::enabled() {
            // Same gauge names as the batch workflow so `crowdrl-trace`
            // draws one accuracy-vs-budget curve for either mode. The
            // semantic step is the refresh index; the simulated clock is
            // recorded alongside so curves can be re-keyed to sim time.
            let step = self.refresh_index as f64;
            let n = self.dataset.len().max(1) as f64;
            obs::gauge_step(
                &self.scoped("run.budget_spent_fraction"),
                step,
                req.view.committed_fraction(),
            );
            obs::gauge_step(
                &self.scoped("run.labelled_fraction"),
                step,
                self.labelled.labelled_count() as f64 / n,
            );
            obs::gauge_step(
                &self.scoped("run.enriched_fraction"),
                step,
                self.labelled.enriched_count() as f64 / n,
            );
            obs::gauge_step(&self.scoped("run.phi_trust"), step, self.phi_trust);
            obs::gauge_step(&self.scoped("run.reward"), step, reward);
            obs::gauge_step(&self.scoped("serve.sim_time_tu"), step, req.now.as_f64());
            if let Some(acc) =
                classifier_accuracy_on_labelled(self.dataset, &self.classifier, &self.labelled)
            {
                obs::gauge_step(&self.scoped("run.acc_on_labelled"), step, acc);
            }
            if enriched > 0 {
                obs::annotate_kv(
                    &self.scoped("serve.enrichment"),
                    &format!(
                        "enrichment added {enriched} labels at budget {:.2}",
                        req.view.committed_fraction()
                    ),
                    &[
                        ("added", enriched as f64),
                        ("budget_fraction", req.view.committed_fraction()),
                        ("refresh", step),
                    ],
                );
            }
        }
        self.refresh_index += 1;
        drop(refresh_span);

        Ok(RefreshReply {
            panels,
            labelled: self.labelled.labelled_count(),
            done: self.labelled.all_labelled(),
            quarantine: quarantine_events,
        })
    }

    /// DQN training for one refresh. Called right after [`refresh`]'s
    /// reply is dispatched — on the agent thread this overlaps with event
    /// pumping. The TD loss lands in the trace entry the refresh opened.
    ///
    /// [`refresh`]: AgentCore::refresh
    pub fn train(&mut self) {
        let train_span = obs::span(&self.scoped("serve.train"));
        let td = self
            .agent
            .train(self.config.train_steps_per_iter, &mut self.rng);
        drop(train_span);
        if obs::enabled() {
            // Cumulative scratch-buffer accounting for the Q-network's
            // reused forward/backward buffers (alloc traffic saved).
            let (reuses, bytes) = self.agent.dqn().online_network().scratch_stats();
            obs::gauge(&self.scoped("serve.scratch.reuses"), reuses as f64);
            obs::gauge(&self.scoped("serve.scratch.bytes"), bytes as f64);
        }
        if let Some(last) = self.trace.last_mut() {
            last.td_loss = td;
        }
    }

    /// Close the run: residual MAP labels, classifier fallback, enriched-
    /// label refresh, and the final [`LabellingOutcome`] — the same
    /// closing sequence as the batch workflow, so outcomes are comparable.
    pub fn finalize(&mut self, req: &FinalizeRequest) -> Result<LabellingOutcome> {
        if !self.labelled.all_labelled() && req.answers.total_answers() > 0 {
            // A warm engine reuses the last refresh's result when no new
            // answers arrived since — finalize then costs one clone.
            let trusted = self.trusted_answers(&req.answers)?;
            let final_result = run_inference_step(
                &mut self.engine,
                &self.config.inference,
                self.dataset,
                trusted.as_ref().unwrap_or(&req.answers),
                self.pool,
                &mut self.classifier,
                &mut self.rng,
            )?;
            for obj in final_result.inferred_objects() {
                if !self.labelled.state(obj).is_labelled() {
                    if let Some(label) = final_result.label(obj) {
                        self.labelled.set(obj, LabelState::Inferred(label))?;
                    }
                }
            }
        }
        let mut fallback_count = 0;
        if self.config.final_fallback && !self.labelled.all_labelled() {
            if !self.classifier.is_trained() {
                retrain_on_labelled(
                    &mut self.classifier,
                    self.dataset,
                    &self.labelled,
                    &mut self.rng,
                )?;
            }
            fallback_count =
                fallback_label_all(self.dataset, &self.classifier, &mut self.labelled)?;
        }
        refresh_enriched(self.dataset, &self.classifier, &mut self.labelled)?;

        let n = self.dataset.len();
        let label_states: Vec<LabelState> =
            (0..n).map(|i| self.labelled.state(ObjectId(i))).collect();
        let enriched_count = label_states
            .iter()
            .filter(|s| matches!(s, LabelState::Enriched(_)))
            .count();
        Ok(LabellingOutcome {
            labels: self.labelled.to_labels(),
            label_states,
            budget_spent: req.budget_spent,
            iterations: self.trace.len(),
            total_answers: req.answers.total_answers(),
            enriched_count,
            fallback_count,
            trace: self.trace.clone(),
        })
    }

    fn warmup_done(&self) -> bool {
        let inferred = self.labelled.labelled_count() - self.labelled.enriched_count();
        inferred as f64 >= self.config.enrichment_warmup * self.labelled.len() as f64
    }

    fn snapshot(&self, answers: &AnswerSet, view: BudgetView) -> StateSnapshot {
        let n = self.dataset.len().max(1);
        StateSnapshot {
            qualities: self.qualities.clone(),
            annotator_load: answers.answer_counts(self.pool.len()),
            budget_spent_fraction: view.committed_fraction(),
            labelled_fraction: self.labelled.labelled_count() as f64 / n as f64,
            enriched_fraction: self.labelled.enriched_count() as f64 / n as f64,
            max_cost: self.max_cost,
            phi_trust: self.phi_trust,
        }
    }

    /// Unified task selection + assignment over the selectable objects.
    fn decide(&mut self, req: &RefreshRequest) -> Result<Vec<(ObjectId, Vec<AnnotatorId>)>> {
        // Candidates: unlabelled, not in flight, not abandoned.
        let selectable: Vec<ObjectId> = self
            .labelled
            .unlabelled_objects()
            .filter(|o| !req.blocked.contains(o))
            .collect();
        if selectable.is_empty() {
            return Ok(Vec::new());
        }
        let chosen = if selectable.len() <= self.config.candidate_cap {
            selectable
        } else {
            sample_indices(&mut self.rng, selectable.len(), self.config.candidate_cap)
                .into_iter()
                .map(|i| selectable[i])
                .collect()
        };
        // The watermark refresh scores its candidates through the feature
        // cache: one batched forward over the objects the classifier's
        // current generation has not scored yet, cached rows for the rest.
        let feat_span = obs::span("decide.features");
        self.feature_cache
            .refresh(self.dataset, &self.classifier, &req.answers, &chosen);
        let candidates: Vec<(ObjectId, Vec<f64>)> = chosen
            .into_iter()
            .map(|obj| (obj, self.feature_cache.probs(obj).to_vec()))
            .collect();
        drop(feat_span);

        // Pacing: the per-refresh allowance is fixed at the first
        // decision, like the batch workflow's per-iteration allowance.
        let allowance = *self.fixed_allowance.get_or_insert_with(|| {
            let planned = self
                .labelled
                .unlabelled_count()
                .div_ceil(self.config.batch_per_iter);
            (req.view.usable() / planned.max(1) as f64)
                .max(self.min_cost * self.config.assignment_k as f64)
        });
        let allowance = allowance.min(req.view.usable());

        let snapshot = self.snapshot(&req.answers, req.view);
        // Quarantined and slot-exhausted annotators are filtered out of
        // the selectable pool. Selection identifies annotators by
        // `profile.id`, not position, so handing it a subset is safe;
        // when every breaker is closed and every slot free the original
        // slice is used and the run is bit-identical.
        let all_profiles = self.pool.profiles();
        let free = |id: AnnotatorId| match &req.slots {
            Some(slots) => slots.get(&id).copied().unwrap_or(usize::MAX) > 0,
            None => true,
        };
        let active_profiles: Vec<AnnotatorProfile> = all_profiles
            .iter()
            .filter(|p| !self.quarantine.is_quarantined(p.id.index()) && free(p.id))
            .cloned()
            .collect();
        let profiles: &[AnnotatorProfile] = if active_profiles.len() == all_profiles.len() {
            all_profiles
        } else {
            &active_profiles
        };
        let stats_before = self.agent.decide_stats();
        let assignments = self.agent.select(
            &candidates,
            profiles,
            req.slots.as_ref(),
            &req.answers,
            &self.labelled,
            &snapshot,
            allowance,
            self.config.assignment_k,
            self.config.batch_per_iter,
            self.config.ablation,
            &mut self.rng,
        );
        if obs::enabled() {
            let d = self.agent.decide_stats().delta_since(&stats_before);
            obs::counter_add(&self.scoped("decide.total_pairs"), d.total_pairs);
            obs::counter_add(&self.scoped("decide.scored_pairs"), d.scored_pairs);
            obs::counter_add(&self.scoped("decide.cache_hits"), d.cache_hits);
            obs::counter_add(&self.scoped("decide.cache_misses"), d.cache_misses);
            obs::counter_add(
                &self.scoped("decide.full_row_fallbacks"),
                d.full_row_fallbacks,
            );
            if d.total_pairs > 0 {
                obs::gauge_step(
                    &self.scoped("decide.pruned_fraction"),
                    self.refresh_index as f64,
                    1.0 - d.scored_pairs as f64 / d.total_pairs as f64,
                );
            }
        }
        if assignments.is_empty() {
            return Ok(Vec::new());
        }

        // Record what the agent believed before the answers arrive, for
        // reward credit and the trust estimate at a later refresh. The
        // candidate distributions are indexed once instead of a linear
        // scan per assignment (same fix as the batch purchase loop).
        let candidate_probs: HashMap<ObjectId, &Vec<f64>> =
            candidates.iter().map(|(o, p)| (*o, p)).collect();
        let mut conf_before = HashMap::new();
        let mut phi_guesses = Vec::new();
        for a in &assignments {
            if let Some(probs) = candidate_probs.get(&a.object) {
                if let Some(guess) = crowdrl_types::prob::argmax(probs) {
                    if self.classifier.is_trained() {
                        phi_guesses.push((a.object, guess));
                    }
                }
                let prior = self.prev_confidence[a.object.index()]
                    .unwrap_or_else(|| probs.iter().copied().fold(0.0f64, f64::max));
                conf_before.insert(a.object, prior);
            }
        }
        let panels: Vec<(ObjectId, Vec<AnnotatorId>)> = assignments
            .iter()
            .map(|a| (a.object, a.annotators.clone()))
            .collect();
        self.outstanding.push(PendingBatch {
            assignments,
            conf_before,
            phi_guesses,
        });
        Ok(panels)
    }

    /// Export everything the constructor does not re-derive, for a
    /// crash-consistent checkpoint. The feature cache is deliberately
    /// absent: it is a pure cache whose entries are bit-identical to a
    /// batched recompute, so restore rebuilds it empty.
    pub fn export_state(&self) -> CoreState {
        let n = self.labelled.len();
        CoreState {
            classifier: self.classifier.snapshot(),
            agent: self.agent.export_state(),
            labelled: (0..n).map(|i| self.labelled.state(ObjectId(i))).collect(),
            qualities: self.qualities.clone(),
            prev_confidence: self.prev_confidence.clone(),
            outstanding: self
                .outstanding
                .iter()
                .map(|b| {
                    let mut conf_before: Vec<(ObjectId, f64)> =
                        b.conf_before.iter().map(|(&o, &c)| (o, c)).collect();
                    conf_before.sort_by_key(|&(o, _)| o);
                    PendingBatchState {
                        assignments: b.assignments.clone(),
                        conf_before,
                        phi_guesses: b.phi_guesses.clone(),
                    }
                })
                .collect(),
            trace: self.trace.clone(),
            trust_agree: self.trust_agree,
            trust_scored: self.trust_scored,
            phi_trust: self.phi_trust,
            fixed_allowance: self.fixed_allowance,
            last_spent: self.last_spent,
            refresh_index: self.refresh_index,
            engine: self.engine.as_ref().and_then(InferenceEngine::export_state),
            rng: self.rng.state(),
            quarantine: self.quarantine.states().to_vec(),
        }
    }

    /// Rebuild a core from a [`CoreState`]. `config` and `quarantine`
    /// must match the ones the checkpoint was taken under (the runtime
    /// verifies a config fingerprint before calling this); the seed used
    /// at construction is irrelevant because every piece of random state
    /// is overwritten from the checkpoint.
    pub fn restore(
        config: CrowdRlConfig,
        dataset: &'a Dataset,
        pool: &'a AnnotatorPool,
        quarantine: QuarantineConfig,
        state: CoreState,
    ) -> Result<Self> {
        let quarantine_config = quarantine.clone();
        let mut core = Self::new(config, dataset, pool, 0, quarantine)?;
        if state.labelled.len() != dataset.len() {
            return Err(Error::DimensionMismatch {
                expected: dataset.len(),
                actual: state.labelled.len(),
                context: "checkpointed label states".into(),
            });
        }
        if state.qualities.len() != pool.len() || state.quarantine.len() != pool.len() {
            return Err(Error::DimensionMismatch {
                expected: pool.len(),
                actual: state.qualities.len(),
                context: "checkpointed annotator state".into(),
            });
        }
        core.classifier.restore(state.classifier)?;
        core.agent.restore_state(state.agent)?;
        for (i, s) in state.labelled.iter().enumerate() {
            if !matches!(s, LabelState::Unlabelled) {
                core.labelled.set(ObjectId(i), *s)?;
            }
        }
        core.qualities = state.qualities;
        core.prev_confidence = state.prev_confidence;
        core.outstanding = state
            .outstanding
            .into_iter()
            .map(|b| PendingBatch {
                assignments: b.assignments,
                conf_before: b.conf_before.into_iter().collect(),
                phi_guesses: b.phi_guesses,
            })
            .collect();
        core.trace = state.trace;
        core.trust_agree = state.trust_agree;
        core.trust_scored = state.trust_scored;
        core.phi_trust = state.phi_trust;
        core.fixed_allowance = state.fixed_allowance;
        core.last_spent = state.last_spent;
        core.refresh_index = state.refresh_index;
        if let Some(snap) = state.engine {
            match &mut core.engine {
                Some(engine) => engine.restore_state(snap, dataset)?,
                None => {
                    return Err(Error::InvalidParameter(
                        "checkpoint carries inference-engine state but this config runs \
                         stateless inference"
                            .into(),
                    ))
                }
            }
        }
        core.rng = StdRng::from_state(state.rng);
        core.quarantine = Quarantine::restore(quarantine_config, state.quarantine);
        Ok(core)
    }

    /// Embeddings of sampled feasible successor actions for TD
    /// bootstrapping (the async analogue of the workflow's helper).
    fn bootstrap_embeddings(&mut self, answers: &AnswerSet, view: BudgetView) -> Vec<Vec<f32>> {
        let unlabelled: Vec<ObjectId> = self.labelled.unlabelled_objects().collect();
        if unlabelled.is_empty() {
            return Vec::new();
        }
        let snapshot = self.snapshot(answers, view);
        let sampled: Vec<ObjectId> = sample_indices(
            &mut self.rng,
            unlabelled.len(),
            self.config.bootstrap_candidates.max(1),
        )
        .into_iter()
        .map(|i| unlabelled[i])
        .collect();
        self.feature_cache
            .refresh(self.dataset, &self.classifier, answers, &sampled);
        let mut out = Vec::new();
        for obj in sampled {
            let a = self.rng.random_range(0..self.pool.len());
            let profile = &self.pool.profiles()[a];
            if answers.has_answered(obj, profile.id) {
                continue;
            }
            out.push(embed_with(
                self.feature_cache.features(obj),
                obj,
                profile,
                &self.labelled,
                &snapshot,
                self.config.assignment_k,
            ));
        }
        out
    }
}
