//! Typed errors for the asynchronous labelling runtime.
//!
//! The serve crate used to surface every internal failure as a bare
//! `Error::ServiceFailure(String)` (or, worse, as a panic on a slice
//! index). [`ServeError`] names the failure modes so callers and tests
//! can match on them; `From<ServeError> for crowdrl_types::Error` keeps
//! the public API on the workspace-wide error type.

use crowdrl_types::{AssignmentId, Error, ObjectId};
use std::fmt;

/// Everything that can go wrong inside the serve runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An event referenced an assignment the ledger never issued.
    UnknownAssignment(AssignmentId),
    /// A delivery fired for an assignment with no recorded label outcome.
    MissingLabel(AssignmentId),
    /// An object index walked off the end of a per-object table.
    ObjectOutOfRange {
        /// The offending object.
        object: ObjectId,
        /// Length of the table it missed.
        len: usize,
    },
    /// The agent thread hung up mid-run (panicked or dropped its channel).
    AgentGone,
    /// A checkpoint failed to decode: truncated, mis-typed, or from a
    /// different build of the serializer.
    CorruptCheckpoint(String),
    /// A checkpoint was taken under a different configuration than the
    /// one attempting to restore it.
    ConfigMismatch {
        /// Fingerprint of the restoring configuration.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        actual: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownAssignment(id) => write!(f, "event for unknown assignment {id:?}"),
            Self::MissingLabel(id) => write!(f, "no label recorded for assignment {id:?}"),
            Self::ObjectOutOfRange { object, len } => {
                write!(
                    f,
                    "object {object:?} out of range for table of length {len}"
                )
            }
            Self::AgentGone => write!(f, "agent thread disconnected"),
            Self::CorruptCheckpoint(why) => write!(f, "corrupt checkpoint: {why}"),
            Self::ConfigMismatch { expected, actual } => write!(
                f,
                "checkpoint config fingerprint {actual:#018x} does not match \
                 the restoring config {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::CorruptCheckpoint(_) | ServeError::ConfigMismatch { .. } => {
                Error::InvalidParameter(e.to_string())
            }
            other => Error::ServiceFailure(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::UnknownAssignment(AssignmentId(7));
        assert!(e.to_string().contains("unknown assignment"));
        let e = ServeError::ObjectOutOfRange {
            object: ObjectId(3),
            len: 2,
        };
        assert!(e.to_string().contains("out of range"));
        let e = ServeError::ConfigMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("fingerprint"));
    }

    #[test]
    fn conversion_routes_by_kind() {
        match Error::from(ServeError::AgentGone) {
            Error::ServiceFailure(_) => {}
            other => panic!("expected ServiceFailure, got {other:?}"),
        }
        match Error::from(ServeError::CorruptCheckpoint("short".into())) {
            Error::InvalidParameter(_) => {}
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }
}
