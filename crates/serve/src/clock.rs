//! The simulated clock and its event queue.
//!
//! A binary min-heap keyed by `(SimTime, seq)`. The clock advances only
//! when an event is popped, and never backwards: scheduling an event in
//! the past is an error (it would make the trace order-dependent).

use crate::event::{Event, EventKind};
use crowdrl_types::{Error, Result, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic discrete-event scheduler.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time (the `at` of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `kind` at absolute time `at`. Fails if `at` is before the
    /// current clock.
    pub fn push(&mut self, at: SimTime, kind: EventKind) -> Result<()> {
        if at < self.now {
            return Err(Error::ServiceFailure(format!(
                "cannot schedule an event at {at} when the clock reads {}",
                self.now
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
        Ok(())
    }

    /// The time of the earliest pending event, without popping it. The
    /// service scheduler uses this to pick each round's horizon across
    /// many shard queues.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the earliest event and advance the clock to it.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(event) = self.heap.pop()?;
        self.now = event.at;
        Some(event)
    }

    /// Snapshot for checkpointing: the clock, the sequence counter, and
    /// every pending event in deterministic (pop) order.
    pub fn snapshot(&self) -> (SimTime, u64, Vec<Event>) {
        let mut events: Vec<Event> = self.heap.iter().map(|Reverse(e)| *e).collect();
        events.sort();
        (self.now, self.next_seq, events)
    }

    /// Rebuild a queue from a [`snapshot`](Self::snapshot). Sequence
    /// numbers are preserved so tie-breaking replays identically.
    pub fn restore(now: SimTime, next_seq: u64, events: Vec<Event>) -> Result<Self> {
        for e in &events {
            if e.at < now {
                return Err(Error::ServiceFailure(format!(
                    "checkpointed event at {} precedes the clock {now}",
                    e.at
                )));
            }
            if e.seq >= next_seq {
                return Err(Error::ServiceFailure(format!(
                    "checkpointed event seq {} not below next_seq {next_seq}",
                    e.seq
                )));
            }
        }
        Ok(Self {
            heap: events.into_iter().map(Reverse).collect(),
            next_seq,
            now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::AssignmentId;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    #[test]
    fn pops_in_time_order_and_advances_clock() {
        let mut q = EventQueue::new();
        q.push(t(3.0), EventKind::Deliver(AssignmentId(0))).unwrap();
        q.push(t(1.0), EventKind::Deliver(AssignmentId(1))).unwrap();
        q.push(t(2.0), EventKind::Expire(AssignmentId(1))).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().kind, EventKind::Deliver(AssignmentId(1)));
        assert_eq!(q.now(), t(1.0));
        assert_eq!(q.pop().unwrap().kind, EventKind::Expire(AssignmentId(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Deliver(AssignmentId(0)));
        assert_eq!(q.now(), t(3.0));
        assert!(q.pop().is_none());
        // The clock keeps its final reading after draining.
        assert_eq!(q.now(), t(3.0));
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        q.push(t(1.0), EventKind::Expire(AssignmentId(7))).unwrap();
        q.push(t(1.0), EventKind::Deliver(AssignmentId(7))).unwrap();
        assert_eq!(q.pop().unwrap().kind, EventKind::Expire(AssignmentId(7)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Deliver(AssignmentId(7)));
    }

    #[test]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.push(t(5.0), EventKind::Deliver(AssignmentId(0))).unwrap();
        q.pop();
        assert!(q.push(t(4.0), EventKind::Deliver(AssignmentId(1))).is_err());
        assert!(q.push(t(5.0), EventKind::Deliver(AssignmentId(1))).is_ok());
    }
}
