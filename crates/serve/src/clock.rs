//! The simulated clock and its event queue.
//!
//! A 4-ary min-heap keyed by `(SimTime, seq)`. The clock advances only
//! when an event is popped, and never backwards: scheduling an event in
//! the past is an error (it would make the trace order-dependent).
//!
//! Why 4-ary instead of the standard library's binary heap: pop cost on
//! large queues is dominated by cache misses along the sift-down path.
//! A 4-ary heap halves the tree depth and keeps each node's children in
//! one or two cache lines, which flattens the per-event cost curve as
//! the queue grows (the binary heap's per-event cost grew ~3.5× from 1k
//! to 100k pending events; see BENCH_serve.json `event_queue`). Pop
//! order is identical — `(at, seq)` is a total order because `seq` is
//! unique — so traces and checkpoints are unaffected.

use crate::event::{Event, EventKind};
use crowdrl_types::{Error, Result, SimTime};

/// Arity of the event heap (children per node).
const ARITY: usize = 4;

/// A 4-ary min-heap of [`Event`]s ordered by `(at, seq)`.
#[derive(Debug, Default)]
struct D4Heap {
    items: Vec<Event>,
}

impl D4Heap {
    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn peek(&self) -> Option<&Event> {
        self.items.first()
    }

    fn push(&mut self, e: Event) {
        self.items.push(e);
        // Sift up.
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.items[i] < self.items[parent] {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<Event> {
        let n = self.items.len();
        if n == 0 {
            return None;
        }
        self.items.swap(0, n - 1);
        let top = self.items.pop();
        // Sift down.
        let n = self.items.len();
        let mut i = 0;
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            for c in first + 1..(first + ARITY).min(n) {
                if self.items[c] < self.items[best] {
                    best = c;
                }
            }
            if self.items[best] < self.items[i] {
                self.items.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
        top
    }

    fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.items.iter()
    }
}

/// Deterministic discrete-event scheduler.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: D4Heap,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time (the `at` of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Schedule `kind` at absolute time `at`. Fails if `at` is before the
    /// current clock.
    pub fn push(&mut self, at: SimTime, kind: EventKind) -> Result<()> {
        if at < self.now {
            return Err(Error::ServiceFailure(format!(
                "cannot schedule an event at {at} when the clock reads {}",
                self.now
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
        Ok(())
    }

    /// The time of the earliest pending event, without popping it. The
    /// service scheduler uses this to pick each round's horizon across
    /// many shard queues.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event and advance the clock to it.
    pub fn pop(&mut self) -> Option<Event> {
        let event = self.heap.pop()?;
        self.now = event.at;
        Some(event)
    }

    /// Snapshot for checkpointing: the clock, the sequence counter, and
    /// every pending event in deterministic (pop) order.
    pub fn snapshot(&self) -> (SimTime, u64, Vec<Event>) {
        let mut events: Vec<Event> = self.heap.iter().copied().collect();
        events.sort();
        (self.now, self.next_seq, events)
    }

    /// Rebuild a queue from a [`snapshot`](Self::snapshot). Sequence
    /// numbers are preserved so tie-breaking replays identically.
    pub fn restore(now: SimTime, next_seq: u64, events: Vec<Event>) -> Result<Self> {
        for e in &events {
            if e.at < now {
                return Err(Error::ServiceFailure(format!(
                    "checkpointed event at {} precedes the clock {now}",
                    e.at
                )));
            }
            if e.seq >= next_seq {
                return Err(Error::ServiceFailure(format!(
                    "checkpointed event seq {} not below next_seq {next_seq}",
                    e.seq
                )));
            }
        }
        let mut heap = D4Heap::default();
        for e in events {
            heap.push(e);
        }
        Ok(Self {
            heap,
            next_seq,
            now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::AssignmentId;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    #[test]
    fn pops_in_time_order_and_advances_clock() {
        let mut q = EventQueue::new();
        q.push(t(3.0), EventKind::Deliver(AssignmentId(0))).unwrap();
        q.push(t(1.0), EventKind::Deliver(AssignmentId(1))).unwrap();
        q.push(t(2.0), EventKind::Expire(AssignmentId(1))).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().kind, EventKind::Deliver(AssignmentId(1)));
        assert_eq!(q.now(), t(1.0));
        assert_eq!(q.pop().unwrap().kind, EventKind::Expire(AssignmentId(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Deliver(AssignmentId(0)));
        assert_eq!(q.now(), t(3.0));
        assert!(q.pop().is_none());
        // The clock keeps its final reading after draining.
        assert_eq!(q.now(), t(3.0));
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        q.push(t(1.0), EventKind::Expire(AssignmentId(7))).unwrap();
        q.push(t(1.0), EventKind::Deliver(AssignmentId(7))).unwrap();
        assert_eq!(q.pop().unwrap().kind, EventKind::Expire(AssignmentId(7)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Deliver(AssignmentId(7)));
    }

    #[test]
    fn d4_heap_pops_in_exact_sorted_order_under_interleaving() {
        // The 4-ary heap must pop in exactly (at, seq) order for any
        // push/pop interleaving — this is what makes it a drop-in
        // replacement for the old binary heap (traces unchanged).
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        // Deterministic pseudo-random times via an LCG; interleave pops.
        let mut state = 0x2545f491_4f6cdd1du64;
        let mut pending = 0usize;
        for round in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
            let at = q.now().as_f64() + ((state >> 33) % 1000) as f64 / 10.0;
            q.push(
                SimTime::new(at).unwrap(),
                EventKind::Deliver(AssignmentId(round)),
            )
            .unwrap();
            pending += 1;
            if state.is_multiple_of(3) {
                popped.push(q.pop().unwrap());
                pending -= 1;
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
            pending -= 1;
        }
        assert_eq!(pending, 0);
        assert_eq!(popped.len(), 2000);
        // Each drain segment (between pushes) is internally sorted, and
        // the clock never moved backwards.
        for w in popped.windows(2) {
            assert!(w[1].at >= w[0].at || w[1].seq > w[0].seq);
        }
        // Full-drain check: push a fixed batch, verify exact sorted order.
        let mut q = EventQueue::new();
        let times = [7.0, 1.0, 3.0, 3.0, 9.0, 0.5, 3.0, 2.0, 8.0, 1.0];
        for (i, &x) in times.iter().enumerate() {
            q.push(t(x), EventKind::Deliver(AssignmentId(i as u64)))
                .unwrap();
        }
        let mut drained = Vec::new();
        while let Some(e) = q.pop() {
            drained.push(e);
        }
        let mut want = drained.clone();
        want.sort();
        assert_eq!(drained, want);
    }

    #[test]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.push(t(5.0), EventKind::Deliver(AssignmentId(0))).unwrap();
        q.pop();
        assert!(q.push(t(4.0), EventKind::Deliver(AssignmentId(1))).is_err());
        assert!(q.push(t(5.0), EventKind::Deliver(AssignmentId(1))).is_ok());
    }
}
