//! The event pump and the two execution modes.
//!
//! The pump owns the *service* state — event queue, ledger, budget,
//! answer set, metrics — and is deliberately dumb: it moves events,
//! enforces timeouts and exactly-once charging, and asks a [`Driver`] for
//! everything intelligent (decisions) or random (annotator behaviour).
//!
//! Both drivers expose the same four calls, and everything that feeds
//! them is deterministic, so the two modes replay each other's traces:
//!
//! * [`InlineDriver`] runs the [`AgentCore`] and the outcome sampler on
//!   the calling thread — the reference semantics.
//! * [`ThreadedDriver`] moves the core to a dedicated agent thread and
//!   fans sampling jobs over a crossbeam worker pool. Sampled outcomes
//!   are a pure function of the assignment id ([`sampler`](crate::sampler)),
//!   so the pool's scheduling cannot change them, and the agent thread
//!   receives the exact call sequence the inline driver would. DQN
//!   training is the one call with no reply — the pump keeps processing
//!   events while the agent trains.

use crate::clock::EventQueue;
use crate::config::{ExecMode, ServeConfig};
use crate::core_loop::{AgentCore, BudgetView, FinalizeRequest, RefreshReply, RefreshRequest};
use crate::event::{EventKind, TraceEvent};
use crate::ledger::{AssignmentLedger, Delivery, Expiry};
use crate::metrics::{MetricsCollector, ServiceMetrics};
use crate::sampler::{sample_outcome, SampleJob, SampledOutcome};
use crowdrl_core::{CrowdRlConfig, LabellingOutcome};
use crowdrl_obs as obs;
use crowdrl_sim::{AnnotatorDynamics, AnnotatorPool};
use crowdrl_types::{
    AnnotatorId, Answer, AnswerSet, Budget, ClassId, Dataset, Error, ObjectId, Result, SimTime,
};
use rand::Rng;
use std::collections::HashSet;
use std::time::Instant;

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct AsyncOutcome {
    /// The labelling result, shaped exactly like the batch workflow's.
    pub outcome: LabellingOutcome,
    /// Service-level metrics.
    pub metrics: ServiceMetrics,
    /// The deterministic event trace.
    pub trace: Vec<TraceEvent>,
}

/// The pump's interface to the agent and the virtual crowd.
trait Driver {
    /// Run one refresh and return the next panels.
    fn refresh(&mut self, req: RefreshRequest) -> Result<RefreshReply>;
    /// Train the DQN for one refresh (may overlap event pumping).
    fn train(&mut self) -> Result<()>;
    /// Sample annotator outcomes for freshly dispatched assignments.
    /// Returns them sorted by assignment id.
    fn sample(&mut self, jobs: Vec<SampleJob>) -> Result<Vec<SampledOutcome>>;
    /// Close the run and build the outcome.
    fn finalize(&mut self, req: FinalizeRequest) -> Result<LabellingOutcome>;
}

/// Single-threaded driver: core and sampler inline.
struct InlineDriver<'a> {
    core: AgentCore<'a>,
    pool: &'a AnnotatorPool,
    dynamics: &'a [AnnotatorDynamics],
    sampling_seed: u64,
}

impl Driver for InlineDriver<'_> {
    fn refresh(&mut self, req: RefreshRequest) -> Result<RefreshReply> {
        self.core.refresh(&req)
    }

    fn train(&mut self) -> Result<()> {
        self.core.train();
        Ok(())
    }

    fn sample(&mut self, jobs: Vec<SampleJob>) -> Result<Vec<SampledOutcome>> {
        Ok(jobs
            .into_iter()
            .map(|job| sample_outcome(self.sampling_seed, job, self.pool, self.dynamics))
            .collect())
    }

    fn finalize(&mut self, req: FinalizeRequest) -> Result<LabellingOutcome> {
        self.core.finalize(&req)
    }
}

/// Messages to the agent thread. Processed strictly in order, which is
/// what makes the threaded call sequence identical to the inline one.
enum ToAgent {
    Refresh(RefreshRequest),
    Train,
    Finalize(FinalizeRequest),
}

/// Replies from the agent thread.
enum FromAgent {
    Decision(Result<RefreshReply>),
    Outcome(Box<Result<LabellingOutcome>>),
}

/// Worker-pool driver: agent thread + sampler pool over channels.
struct ThreadedDriver {
    to_agent: crossbeam::channel::Sender<ToAgent>,
    from_agent: crossbeam::channel::Receiver<FromAgent>,
    job_tx: crossbeam::channel::Sender<SampleJob>,
    out_rx: crossbeam::channel::Receiver<SampledOutcome>,
}

fn dead_agent() -> Error {
    Error::ServiceFailure("agent thread is gone".into())
}

impl Driver for ThreadedDriver {
    fn refresh(&mut self, req: RefreshRequest) -> Result<RefreshReply> {
        self.to_agent
            .send(ToAgent::Refresh(req))
            .map_err(|_| dead_agent())?;
        match self.from_agent.recv().map_err(|_| dead_agent())? {
            FromAgent::Decision(reply) => reply,
            FromAgent::Outcome(_) => Err(dead_agent()),
        }
    }

    fn train(&mut self) -> Result<()> {
        // Fire and forget: the agent trains while the pump keeps moving
        // events; the next Refresh message queues behind the training.
        self.to_agent.send(ToAgent::Train).map_err(|_| dead_agent())
    }

    fn sample(&mut self, jobs: Vec<SampleJob>) -> Result<Vec<SampledOutcome>> {
        let expected = jobs.len();
        for job in jobs {
            self.job_tx.send(job).map_err(|_| dead_agent())?;
        }
        let mut out = Vec::with_capacity(expected);
        for _ in 0..expected {
            out.push(self.out_rx.recv().map_err(|_| dead_agent())?);
        }
        // Outcomes are pure functions of the job, so sorting by id
        // erases the pool's scheduling from the result.
        out.sort_by_key(|o| o.id);
        Ok(out)
    }

    fn finalize(&mut self, req: FinalizeRequest) -> Result<LabellingOutcome> {
        self.to_agent
            .send(ToAgent::Finalize(req))
            .map_err(|_| dead_agent())?;
        match self.from_agent.recv().map_err(|_| dead_agent())? {
            FromAgent::Outcome(outcome) => *outcome,
            FromAgent::Decision(_) => Err(dead_agent()),
        }
    }
}

/// The service state the pump owns while a run is in progress.
struct Pump<'a> {
    dataset: &'a Dataset,
    pool: &'a AnnotatorPool,
    serve: &'a ServeConfig,
    queue: EventQueue,
    ledger: AssignmentLedger,
    budget: Budget,
    answers: AnswerSet,
    collector: MetricsCollector,
    trace: Vec<TraceEvent>,
    /// Sampled label per assignment id (None = the annotator dropped it).
    labels_by_id: Vec<Option<ClassId>>,
    requeue_count: Vec<usize>,
    abandoned: HashSet<ObjectId>,
    answers_since: usize,
    last_refresh: SimTime,
    done: bool,
}

impl<'a> Pump<'a> {
    fn new(
        dataset: &'a Dataset,
        pool: &'a AnnotatorPool,
        serve: &'a ServeConfig,
        budget: f64,
    ) -> Result<Self> {
        Ok(Self {
            dataset,
            pool,
            serve,
            queue: EventQueue::new(),
            ledger: AssignmentLedger::new(),
            budget: Budget::new(budget)?,
            answers: AnswerSet::new(dataset.len()),
            collector: MetricsCollector::new(),
            trace: Vec::new(),
            labels_by_id: Vec::new(),
            requeue_count: vec![0; dataset.len()],
            abandoned: HashSet::new(),
            answers_since: 0,
            last_refresh: SimTime::ZERO,
            done: false,
        })
    }

    /// Dispatch panels: reserve, sample, and schedule Deliver/Expire
    /// events. Returns how many assignments actually went out.
    fn dispatch<D: Driver>(
        &mut self,
        driver: &mut D,
        panels: &[(ObjectId, Vec<AnnotatorId>)],
    ) -> Result<usize> {
        let now = self.queue.now();
        let timeout = SimTime::new(self.serve.timeout)?;
        let mut jobs = Vec::new();
        for (object, annotators) in panels {
            for &annotator in annotators {
                let cost = self.pool.profile(annotator).cost;
                if self.ledger.pair_claimed(*object, annotator)
                    || !self.ledger.can_reserve(cost, &self.budget)
                {
                    continue;
                }
                let id = self.ledger.dispatch(
                    *object,
                    annotator,
                    cost,
                    now,
                    now + timeout,
                    &self.budget,
                )?;
                jobs.push(SampleJob {
                    id,
                    object: *object,
                    annotator,
                    truth: self.dataset.truth(object.index()),
                });
                self.trace.push(TraceEvent::Dispatched {
                    at: now,
                    id,
                    object: *object,
                    annotator,
                });
            }
        }
        let dispatched = jobs.len();
        self.collector.dispatched += dispatched;
        for outcome in driver.sample(jobs)? {
            debug_assert_eq!(outcome.id.0 as usize, self.labels_by_id.len());
            match outcome.response {
                Some((label, latency)) => {
                    self.labels_by_id.push(Some(label));
                    self.queue
                        .push(now + latency, EventKind::Deliver(outcome.id))?;
                }
                None => self.labels_by_id.push(None),
            }
            self.queue
                .push(now + timeout, EventKind::Expire(outcome.id))?;
        }
        Ok(dispatched)
    }

    /// Run a refresh and dispatch its panels.
    fn refresh<D: Driver>(&mut self, driver: &mut D) -> Result<usize> {
        let now = self.queue.now();
        let mut blocked = self.ledger.objects_in_flight();
        blocked.extend(self.abandoned.iter().copied());
        let reply = driver.refresh(RefreshRequest {
            answers: self.answers.clone(),
            view: BudgetView {
                total: self.budget.total(),
                spent: self.budget.spent(),
                reserved: self.ledger.reserved(),
            },
            blocked,
            now,
            answers_since: self.answers_since,
        })?;
        self.collector.refreshes += 1;
        self.answers_since = 0;
        self.last_refresh = now;
        self.trace.push(TraceEvent::Refreshed {
            at: now,
            answers: self.answers.total_answers(),
            labelled: reply.labelled,
        });
        let dispatched = self.dispatch(driver, &reply.panels)?;
        driver.train()?;
        if reply.done {
            self.done = true;
        }
        Ok(dispatched)
    }

    /// Handle one event.
    fn handle(&mut self, kind: EventKind) -> Result<()> {
        let now = self.queue.now();
        self.collector.events += 1;
        match kind {
            EventKind::Deliver(id) => match self.ledger.deliver(id, now, &mut self.budget)? {
                Delivery::Accepted { latency, .. } => {
                    let record = self
                        .ledger
                        .record(id)
                        .ok_or_else(|| Error::ServiceFailure(format!("no record for {id}")))?;
                    let label = self.labels_by_id[id.0 as usize].ok_or_else(|| {
                        Error::ServiceFailure(format!("{id} delivered without a sampled label"))
                    })?;
                    self.answers.record(Answer {
                        object: record.object,
                        annotator: record.annotator,
                        label,
                    })?;
                    self.collector.delivered += 1;
                    self.collector.latencies.push(latency.as_f64());
                    self.answers_since += 1;
                    self.trace
                        .push(TraceEvent::Delivered { at: now, id, label });
                }
                Delivery::Rejected => {
                    self.collector.rejected += 1;
                    self.trace.push(TraceEvent::Rejected { at: now, id });
                }
            },
            EventKind::Expire(id) => match self.ledger.expire(id)? {
                Expiry::TimedOut { .. } => {
                    let record = self
                        .ledger
                        .record(id)
                        .ok_or_else(|| Error::ServiceFailure(format!("no record for {id}")))?;
                    let object = record.object;
                    self.collector.timeouts += 1;
                    self.requeue_count[object.index()] += 1;
                    let requeued = self.requeue_count[object.index()] <= self.serve.max_requeues;
                    if requeued {
                        self.collector.requeues += 1;
                    } else {
                        self.abandoned.insert(object);
                    }
                    self.trace.push(TraceEvent::Expired {
                        at: now,
                        id,
                        requeued,
                    });
                }
                Expiry::AlreadySettled => {}
            },
        }
        Ok(())
    }

    /// Whether a watermark has tripped since the last refresh.
    fn watermark_due(&self) -> bool {
        self.answers_since >= self.serve.answer_watermark
            || (self.answers_since > 0
                && (self.queue.now() - self.last_refresh).as_f64() >= self.serve.time_watermark)
    }

    /// The main loop: pump events, refresh on watermarks, and when the
    /// queue drains force a refresh to flush leftovers — stopping once a
    /// forced refresh dispatches nothing (or the agent reports done).
    fn run<D: Driver>(mut self, driver: &mut D) -> Result<AsyncOutcome> {
        let wall_start = Instant::now();
        'outer: loop {
            while let Some(event) = self.queue.pop() {
                self.handle(event.kind)?;
                if self.watermark_due() {
                    self.refresh(driver)?;
                    if self.done {
                        break 'outer;
                    }
                }
            }
            let dispatched = self.refresh(driver)?;
            if self.done || dispatched == 0 {
                break;
            }
        }
        let outcome = driver.finalize(FinalizeRequest {
            answers: self.answers.clone(),
            budget_spent: self.budget.spent(),
        })?;
        let metrics = self.collector.finish(
            self.queue.now(),
            wall_start.elapsed().as_secs_f64(),
            self.budget.spent(),
        );
        Ok(AsyncOutcome {
            outcome,
            metrics,
            trace: self.trace,
        })
    }
}

/// The asynchronous labelling runtime.
#[derive(Debug, Clone)]
pub struct AsyncRuntime {
    config: CrowdRlConfig,
    serve: ServeConfig,
}

impl AsyncRuntime {
    /// Pair a CrowdRL configuration with the service knobs.
    pub fn new(config: CrowdRlConfig, serve: ServeConfig) -> Self {
        Self { config, serve }
    }

    /// Label `dataset` with `pool` through the asynchronous service.
    ///
    /// `rng` seeds the per-annotator dynamics, the initial panels and the
    /// agent's private stream; annotator responses come from the
    /// per-assignment streams of
    /// [`sampling_seed`](ServeConfig::sampling_seed). Two calls with the
    /// same seeds produce identical traces and outcomes in *either*
    /// execution mode.
    pub fn run<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
    ) -> Result<AsyncOutcome> {
        self.config.validate()?;
        self.serve.validate()?;
        if pool.is_empty() {
            return Err(Error::InvalidParameter("annotator pool is empty".into()));
        }
        obs::init_from_env();
        let run_span = obs::span("serve.run");
        let dynamics = self.serve.dynamics.generate(pool, rng)?;
        let core_seed: u64 = rng.random();
        let mut core = AgentCore::new(self.config.clone(), dataset, pool, core_seed)?;
        let initial = core.initial_panels();
        let pump = Pump::new(dataset, pool, &self.serve, self.config.budget)?;

        let result = match self.serve.mode {
            ExecMode::SingleThread => {
                let mut driver = InlineDriver {
                    core,
                    pool,
                    dynamics: &dynamics,
                    sampling_seed: self.serve.sampling_seed,
                };
                run_pump(pump, &mut driver, &initial)
            }
            ExecMode::WorkerPool { workers } => {
                let workers = if workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(2)
                } else {
                    workers
                };
                let sampling_seed = self.serve.sampling_seed;
                let dynamics = &dynamics;
                crossbeam::scope(|scope| {
                    let (to_agent, agent_rx) = crossbeam::channel::unbounded::<ToAgent>();
                    let (agent_tx, from_agent) = crossbeam::channel::unbounded::<FromAgent>();
                    scope.spawn(move |_| {
                        for msg in agent_rx.iter() {
                            match msg {
                                ToAgent::Refresh(req) => {
                                    let reply = core.refresh(&req);
                                    if agent_tx.send(FromAgent::Decision(reply)).is_err() {
                                        break;
                                    }
                                }
                                ToAgent::Train => core.train(),
                                ToAgent::Finalize(req) => {
                                    let outcome = core.finalize(&req);
                                    let _ = agent_tx.send(FromAgent::Outcome(Box::new(outcome)));
                                    break;
                                }
                            }
                        }
                    });
                    let (job_tx, job_rx) = crossbeam::channel::unbounded::<SampleJob>();
                    let (out_tx, out_rx) = crossbeam::channel::unbounded::<SampledOutcome>();
                    for _ in 0..workers {
                        let job_rx = job_rx.clone();
                        let out_tx = out_tx.clone();
                        scope.spawn(move |_| {
                            while let Ok(job) = job_rx.recv() {
                                let outcome = sample_outcome(sampling_seed, job, pool, dynamics);
                                if out_tx.send(outcome).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    drop(job_rx);
                    drop(out_tx);
                    let mut driver = ThreadedDriver {
                        to_agent,
                        from_agent,
                        job_tx,
                        out_rx,
                    };
                    run_pump(pump, &mut driver, &initial)
                })
                .map_err(|_| Error::ServiceFailure("a runtime thread panicked".into()))?
            }
        };
        drop(run_span);
        if let Ok(outcome) = &result {
            outcome.metrics.emit_trace();
            obs::checkpoint();
        }
        result
    }
}

/// Dispatch the initial panels at t = 0, then hand the loop to the pump.
fn run_pump<D: Driver>(
    mut pump: Pump<'_>,
    driver: &mut D,
    initial: &[(ObjectId, Vec<AnnotatorId>)],
) -> Result<AsyncOutcome> {
    pump.dispatch(driver, initial)?;
    pump.run(driver)
}
