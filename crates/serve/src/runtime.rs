//! The event pump and the two execution modes.
//!
//! The pump owns the *service* state — event queue, ledger, budget,
//! answer set, metrics — and is deliberately dumb: it moves events,
//! enforces timeouts and exactly-once charging, and asks a [`Driver`] for
//! everything intelligent (decisions) or random (annotator behaviour).
//!
//! Both drivers expose the same five calls, and everything that feeds
//! them is deterministic, so the two modes replay each other's traces:
//!
//! * [`InlineDriver`] runs the [`AgentCore`] and the outcome sampler on
//!   the calling thread — the reference semantics.
//! * [`ThreadedDriver`] moves the core to a dedicated agent thread and
//!   fans sampling jobs over a crossbeam worker pool. Sampled outcomes
//!   are a pure function of the assignment id ([`sampler`](crate::sampler)),
//!   so the pool's scheduling cannot change them, and the agent thread
//!   receives the exact call sequence the inline driver would. DQN
//!   training is the one call with no reply — the pump keeps processing
//!   events while the agent trains. A snapshot request queues *behind*
//!   the training message, so both modes checkpoint the identical
//!   post-train state.
//!
//! Three chaos-layer concerns thread through the pump, all default-off:
//! fault injection ([`FaultInjector`]) rewrites sampled outcomes between
//! the sampler and the event queue; the supervisor's retry backoff
//! ([`SupervisorConfig`](crate::supervisor::SupervisorConfig)) keeps
//! timed-out objects out of the candidate set for a while; and the
//! checkpoint hook snapshots the whole run at refresh boundaries so a
//! killed run can [`resume`](AsyncRuntime::resume) bit-identically.

use crate::checkpoint::{PumpCheckpoint, RunCheckpoint};
use crate::clock::EventQueue;
use crate::config::{ExecMode, ServeConfig};
use crate::core_loop::{
    AgentCore, BudgetView, CoreState, FinalizeRequest, RefreshReply, RefreshRequest,
};
use crate::error::ServeError;
use crate::event::{EventKind, TraceEvent};
use crate::ledger::{AssignmentLedger, Delivery, Expiry};
use crate::metrics::{MetricsCollector, ServiceMetrics};
use crate::sampler::{sample_outcome, SampleJob, SampledOutcome};
use crowdrl_core::{CrowdRlConfig, LabellingOutcome};
use crowdrl_obs as obs;
use crowdrl_sim::{AnnotatorDynamics, AnnotatorPool, FaultInjector, FaultRecord};
use crowdrl_types::{
    AnnotatorId, Answer, AnswerSet, Budget, ClassId, Dataset, Error, ObjectId, Result, SimTime,
};
use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct AsyncOutcome {
    /// The labelling result, shaped exactly like the batch workflow's.
    pub outcome: LabellingOutcome,
    /// Service-level metrics.
    pub metrics: ServiceMetrics,
    /// The deterministic event trace.
    pub trace: Vec<TraceEvent>,
}

/// What a checkpoint sink tells the runtime to do after each snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunControl {
    /// Keep running.
    Continue,
    /// Stop here; the run ends as [`RunOutcome::Halted`]. The checkpoint
    /// just handed to the sink resumes the run exactly where it stopped.
    Halt,
}

/// How a checkpoint-aware run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The run finished normally.
    Completed(Box<AsyncOutcome>),
    /// A checkpoint sink requested a halt mid-run.
    Halted,
}

/// Receives each checkpoint and decides whether the run continues.
pub type CheckpointSink<'s> = &'s mut dyn FnMut(RunCheckpoint) -> RunControl;

/// The pump's interface to the agent and the virtual crowd.
trait Driver {
    /// Run one refresh and return the next panels.
    fn refresh(&mut self, req: RefreshRequest) -> Result<RefreshReply>;
    /// Train the DQN for one refresh (may overlap event pumping).
    fn train(&mut self) -> Result<()>;
    /// Sample annotator outcomes for freshly dispatched assignments.
    /// Returns them sorted by assignment id.
    fn sample(&mut self, jobs: Vec<SampleJob>) -> Result<Vec<SampledOutcome>>;
    /// Snapshot the agent core's full learning state.
    fn snapshot(&mut self) -> Result<CoreState>;
    /// Close the run and build the outcome.
    fn finalize(&mut self, req: FinalizeRequest) -> Result<LabellingOutcome>;
}

/// Single-threaded driver: core and sampler inline.
struct InlineDriver<'a> {
    core: AgentCore<'a>,
    pool: &'a AnnotatorPool,
    dynamics: &'a [AnnotatorDynamics],
    sampling_seed: u64,
}

impl Driver for InlineDriver<'_> {
    fn refresh(&mut self, req: RefreshRequest) -> Result<RefreshReply> {
        self.core.refresh(&req)
    }

    fn train(&mut self) -> Result<()> {
        self.core.train();
        Ok(())
    }

    fn sample(&mut self, jobs: Vec<SampleJob>) -> Result<Vec<SampledOutcome>> {
        Ok(jobs
            .into_iter()
            .map(|job| sample_outcome(self.sampling_seed, job, self.pool, self.dynamics))
            .collect())
    }

    fn snapshot(&mut self) -> Result<CoreState> {
        Ok(self.core.export_state())
    }

    fn finalize(&mut self, req: FinalizeRequest) -> Result<LabellingOutcome> {
        self.core.finalize(&req)
    }
}

/// Messages to the agent thread. Processed strictly in order, which is
/// what makes the threaded call sequence identical to the inline one —
/// in particular a Snapshot sent after Train captures post-train state,
/// exactly like the inline driver.
enum ToAgent {
    Refresh(RefreshRequest),
    Train,
    Snapshot,
    Finalize(FinalizeRequest),
}

/// Replies from the agent thread.
enum FromAgent {
    Decision(Result<RefreshReply>),
    Snapshot(Box<CoreState>),
    Outcome(Box<Result<LabellingOutcome>>),
}

/// Worker-pool driver: agent thread + sampler pool over channels.
struct ThreadedDriver {
    to_agent: crossbeam::channel::Sender<ToAgent>,
    from_agent: crossbeam::channel::Receiver<FromAgent>,
    job_tx: crossbeam::channel::Sender<SampleJob>,
    out_rx: crossbeam::channel::Receiver<SampledOutcome>,
}

fn dead_agent() -> Error {
    ServeError::AgentGone.into()
}

impl Driver for ThreadedDriver {
    fn refresh(&mut self, req: RefreshRequest) -> Result<RefreshReply> {
        self.to_agent
            .send(ToAgent::Refresh(req))
            .map_err(|_| dead_agent())?;
        match self.from_agent.recv().map_err(|_| dead_agent())? {
            FromAgent::Decision(reply) => reply,
            _ => Err(dead_agent()),
        }
    }

    fn train(&mut self) -> Result<()> {
        // Fire and forget: the agent trains while the pump keeps moving
        // events; the next Refresh message queues behind the training.
        self.to_agent.send(ToAgent::Train).map_err(|_| dead_agent())
    }

    fn sample(&mut self, jobs: Vec<SampleJob>) -> Result<Vec<SampledOutcome>> {
        let expected = jobs.len();
        for job in jobs {
            self.job_tx.send(job).map_err(|_| dead_agent())?;
        }
        let mut out = Vec::with_capacity(expected);
        for _ in 0..expected {
            out.push(self.out_rx.recv().map_err(|_| dead_agent())?);
        }
        // Outcomes are pure functions of the job, so sorting by id
        // erases the pool's scheduling from the result.
        out.sort_by_key(|o| o.id);
        Ok(out)
    }

    fn snapshot(&mut self) -> Result<CoreState> {
        self.to_agent
            .send(ToAgent::Snapshot)
            .map_err(|_| dead_agent())?;
        match self.from_agent.recv().map_err(|_| dead_agent())? {
            FromAgent::Snapshot(state) => Ok(*state),
            _ => Err(dead_agent()),
        }
    }

    fn finalize(&mut self, req: FinalizeRequest) -> Result<LabellingOutcome> {
        self.to_agent
            .send(ToAgent::Finalize(req))
            .map_err(|_| dead_agent())?;
        match self.from_agent.recv().map_err(|_| dead_agent())? {
            FromAgent::Outcome(outcome) => *outcome,
            _ => Err(dead_agent()),
        }
    }
}

/// Build the fault injector a config calls for (None when the plan is a
/// no-op, so the fault-free fast path stays branch-cheap).
fn build_injector(serve: &ServeConfig, dataset: &Dataset) -> Result<Option<FaultInjector>> {
    if serve.faults.is_noop() {
        Ok(None)
    } else {
        Ok(Some(FaultInjector::new(
            serve.faults.clone(),
            dataset.num_classes(),
        )?))
    }
}

/// Bump the `fault.injected.*` trace counters for one injected outcome.
fn count_faults(faults: &FaultRecord) {
    if faults.is_clean() {
        return;
    }
    if faults.no_show {
        obs::counter_add("fault.injected.no_show", 1);
    }
    if faults.abandoned {
        obs::counter_add("fault.injected.abandon", 1);
    }
    if faults.straggler {
        obs::counter_add("fault.injected.straggler", 1);
    }
    if faults.outage {
        obs::counter_add("fault.injected.outage", 1);
    }
    if faults.duplicate {
        obs::counter_add("fault.injected.duplicate", 1);
    }
    if faults.drifted {
        obs::counter_add("fault.injected.drift", 1);
    }
}

/// The service state the pump owns while a run is in progress.
struct Pump<'a> {
    dataset: &'a Dataset,
    pool: &'a AnnotatorPool,
    serve: &'a ServeConfig,
    /// Config fingerprint stamped into every checkpoint.
    fingerprint: u64,
    injector: Option<FaultInjector>,
    queue: EventQueue,
    ledger: AssignmentLedger,
    budget: Budget,
    /// Shared with the core during each refresh (cheap `Arc` clone); the
    /// pump mutates through `Arc::make_mut`, which stays in-place once
    /// the core has dropped its copy.
    answers: Arc<AnswerSet>,
    collector: MetricsCollector,
    trace: Vec<TraceEvent>,
    /// Sampled label per assignment id (None = the annotator dropped it).
    labels_by_id: Vec<Option<ClassId>>,
    requeue_count: Vec<usize>,
    abandoned: HashSet<ObjectId>,
    /// Per-object supervisor backoff deadline (absolute sim time); an
    /// object is withheld from refreshes until its deadline passes.
    backoff_until: Vec<f64>,
    answers_since: usize,
    last_refresh: SimTime,
    /// Refreshes since the last checkpoint was cut.
    refreshes_since_ckpt: usize,
    done: bool,
}

impl<'a> Pump<'a> {
    fn new(
        dataset: &'a Dataset,
        pool: &'a AnnotatorPool,
        serve: &'a ServeConfig,
        budget: f64,
        fingerprint: u64,
    ) -> Result<Self> {
        Ok(Self {
            dataset,
            pool,
            serve,
            fingerprint,
            injector: build_injector(serve, dataset)?,
            queue: EventQueue::new(),
            ledger: AssignmentLedger::new(),
            budget: Budget::new(budget)?,
            answers: Arc::new(AnswerSet::new(dataset.len())),
            collector: MetricsCollector::new(),
            trace: Vec::new(),
            labels_by_id: Vec::new(),
            requeue_count: vec![0; dataset.len()],
            abandoned: HashSet::new(),
            backoff_until: vec![0.0; dataset.len()],
            answers_since: 0,
            last_refresh: SimTime::ZERO,
            refreshes_since_ckpt: 0,
            done: false,
        })
    }

    /// Rebuild a pump mid-run from a checkpoint. Everything derivable
    /// (ledger reservations, pair claims) is re-derived and validated;
    /// everything order-dependent (budget float sum, event sequence
    /// numbers) is restored bit-exactly.
    fn restore(
        dataset: &'a Dataset,
        pool: &'a AnnotatorPool,
        serve: &'a ServeConfig,
        fingerprint: u64,
        state: PumpCheckpoint,
    ) -> Result<Self> {
        if state.requeue_count.len() != dataset.len()
            || state.backoff_until.len() != dataset.len()
            || state.answers.num_objects() != dataset.len()
        {
            return Err(ServeError::CorruptCheckpoint(format!(
                "pump state sized for {} objects, dataset has {}",
                state.requeue_count.len(),
                dataset.len()
            ))
            .into());
        }
        if state.labels_by_id.len() != state.records.len() {
            return Err(ServeError::CorruptCheckpoint(format!(
                "{} sampled labels for {} ledger records",
                state.labels_by_id.len(),
                state.records.len()
            ))
            .into());
        }
        let collector = MetricsCollector {
            latencies: state.latencies,
            dispatched: state.dispatched,
            delivered: state.delivered,
            rejected: state.rejected,
            timeouts: state.timeouts,
            requeues: state.requeues,
            refreshes: state.refreshes,
            events: state.events_processed,
        };
        Ok(Self {
            dataset,
            pool,
            serve,
            fingerprint,
            injector: build_injector(serve, dataset)?,
            queue: EventQueue::restore(state.now, state.next_seq, state.events)?,
            ledger: AssignmentLedger::restore(state.records)?,
            budget: Budget::restore(state.budget_total, state.budget_spent, state.budget_charges)?,
            answers: Arc::new(state.answers),
            collector,
            trace: state.trace,
            labels_by_id: state.labels_by_id,
            requeue_count: state.requeue_count,
            abandoned: state.abandoned.into_iter().collect(),
            backoff_until: state.backoff_until,
            answers_since: state.answers_since,
            last_refresh: state.last_refresh,
            refreshes_since_ckpt: 0,
            done: false,
        })
    }

    /// Snapshot the pump's complete service state.
    fn export_state(&self) -> PumpCheckpoint {
        let (now, next_seq, events) = self.queue.snapshot();
        let mut abandoned: Vec<ObjectId> = self.abandoned.iter().copied().collect();
        abandoned.sort();
        PumpCheckpoint {
            now,
            next_seq,
            events,
            records: self.ledger.records().to_vec(),
            budget_total: self.budget.total(),
            budget_spent: self.budget.spent(),
            budget_charges: self.budget.charge_count(),
            answers: (*self.answers).clone(),
            latencies: self.collector.latencies.clone(),
            dispatched: self.collector.dispatched,
            delivered: self.collector.delivered,
            rejected: self.collector.rejected,
            timeouts: self.collector.timeouts,
            requeues: self.collector.requeues,
            refreshes: self.collector.refreshes,
            events_processed: self.collector.events,
            trace: self.trace.clone(),
            labels_by_id: self.labels_by_id.clone(),
            requeue_count: self.requeue_count.clone(),
            abandoned,
            backoff_until: self.backoff_until.clone(),
            answers_since: self.answers_since,
            last_refresh: self.last_refresh,
        }
    }

    /// Dispatch panels: reserve, sample, and schedule Deliver/Expire
    /// events. Returns how many assignments actually went out.
    fn dispatch<D: Driver>(
        &mut self,
        driver: &mut D,
        panels: &[(ObjectId, Vec<AnnotatorId>)],
    ) -> Result<usize> {
        let now = self.queue.now();
        let timeout = SimTime::new(self.serve.timeout)?;
        let mut jobs = Vec::new();
        for (object, annotators) in panels {
            for &annotator in annotators {
                let cost = self.pool.profile(annotator).cost;
                if self.ledger.pair_claimed(*object, annotator)
                    || !self.ledger.can_reserve(cost, &self.budget)
                {
                    continue;
                }
                let id = self.ledger.dispatch(
                    *object,
                    annotator,
                    cost,
                    now,
                    now + timeout,
                    &self.budget,
                )?;
                jobs.push(SampleJob {
                    id,
                    object: *object,
                    annotator,
                    truth: self.dataset.truth(object.index()),
                });
                self.trace.push(TraceEvent::Dispatched {
                    at: now,
                    id,
                    object: *object,
                    annotator,
                });
            }
        }
        let dispatched = jobs.len();
        self.collector.dispatched += dispatched;
        let sample_span = obs::span("serve.sample");
        let outcomes = driver.sample(jobs)?;
        drop(sample_span);
        for outcome in outcomes {
            debug_assert_eq!(outcome.id.0 as usize, self.labels_by_id.len());
            let (response, duplicate_at) = match &self.injector {
                Some(injector) => {
                    let annotator = self
                        .ledger
                        .record(outcome.id)
                        .ok_or(ServeError::UnknownAssignment(outcome.id))?
                        .annotator;
                    let injected = injector.apply(
                        outcome.id,
                        annotator,
                        now,
                        self.serve.timeout,
                        outcome.response,
                    );
                    count_faults(&injected.faults);
                    (injected.response, injected.duplicate_at)
                }
                None => (outcome.response, None),
            };
            match response {
                Some((label, latency)) => {
                    self.labels_by_id.push(Some(label));
                    self.queue
                        .push(now + latency, EventKind::Deliver(outcome.id))?;
                }
                None => self.labels_by_id.push(None),
            }
            if let Some(at) = duplicate_at {
                // The duplicate copy replays the same assignment id; the
                // ledger's exactly-once rule rejects it on arrival.
                self.queue.push(at, EventKind::Deliver(outcome.id))?;
            }
            self.queue
                .push(now + timeout, EventKind::Expire(outcome.id))?;
        }
        Ok(dispatched)
    }

    /// Run a refresh and dispatch its panels.
    fn refresh<D: Driver>(&mut self, driver: &mut D) -> Result<usize> {
        let now = self.queue.now();
        let mut blocked = self.ledger.objects_in_flight();
        blocked.extend(self.abandoned.iter().copied());
        if self.serve.supervisor.backoff_base > 0.0 {
            let now_f = now.as_f64();
            blocked.extend(
                self.backoff_until
                    .iter()
                    .enumerate()
                    .filter(|&(_, &until)| until > now_f)
                    .map(|(i, _)| ObjectId(i)),
            );
        }
        let reply = driver.refresh(RefreshRequest {
            answers: Arc::clone(&self.answers),
            view: BudgetView {
                total: self.budget.total(),
                spent: self.budget.spent(),
                reserved: self.ledger.reserved(),
            },
            blocked,
            // The single-run pump places no per-annotator concurrency
            // caps — slot accounting is a shared-pool concern.
            slots: None,
            now,
            answers_since: self.answers_since,
        })?;
        self.collector.refreshes += 1;
        self.answers_since = 0;
        self.last_refresh = now;
        self.trace.push(TraceEvent::Refreshed {
            at: now,
            answers: self.answers.total_answers(),
            labelled: reply.labelled,
        });
        for ev in &reply.quarantine {
            self.trace.push(if ev.entered {
                TraceEvent::Quarantined {
                    at: now,
                    annotator: ev.annotator,
                }
            } else {
                TraceEvent::QuarantineReleased {
                    at: now,
                    annotator: ev.annotator,
                }
            });
        }
        let dispatched = self.dispatch(driver, &reply.panels)?;
        driver.train()?;
        if reply.done {
            self.done = true;
        }
        Ok(dispatched)
    }

    /// Handle one event.
    fn handle(&mut self, kind: EventKind) -> Result<()> {
        let now = self.queue.now();
        self.collector.events += 1;
        match kind {
            EventKind::Deliver(id) => match self.ledger.deliver(id, now, &mut self.budget)? {
                Delivery::Accepted { latency, .. } => {
                    let record = self
                        .ledger
                        .record(id)
                        .ok_or(ServeError::UnknownAssignment(id))?;
                    let label = self
                        .labels_by_id
                        .get(id.0 as usize)
                        .copied()
                        .flatten()
                        .ok_or(ServeError::MissingLabel(id))?;
                    Arc::make_mut(&mut self.answers).record(Answer {
                        object: record.object,
                        annotator: record.annotator,
                        label,
                    })?;
                    self.collector.delivered += 1;
                    self.collector.latencies.push(latency.as_f64());
                    self.answers_since += 1;
                    self.trace
                        .push(TraceEvent::Delivered { at: now, id, label });
                }
                Delivery::Rejected => {
                    self.collector.rejected += 1;
                    self.trace.push(TraceEvent::Rejected { at: now, id });
                }
            },
            EventKind::Expire(id) => match self.ledger.expire(id)? {
                Expiry::TimedOut { .. } => {
                    let record = self
                        .ledger
                        .record(id)
                        .ok_or(ServeError::UnknownAssignment(id))?;
                    let object = record.object;
                    self.collector.timeouts += 1;
                    let len = self.requeue_count.len();
                    let count = self
                        .requeue_count
                        .get_mut(object.index())
                        .ok_or(ServeError::ObjectOutOfRange { object, len })?;
                    *count += 1;
                    let retries = *count;
                    let requeued = retries <= self.serve.max_requeues;
                    if requeued {
                        self.collector.requeues += 1;
                        obs::counter_add("retry.count", 1);
                        let delay = self.serve.supervisor.backoff_delay(retries);
                        if delay > 0.0 {
                            self.backoff_until[object.index()] = now.as_f64() + delay;
                        }
                    } else {
                        self.abandoned.insert(object);
                    }
                    self.trace.push(TraceEvent::Expired {
                        at: now,
                        id,
                        requeued,
                    });
                }
                Expiry::AlreadySettled => {}
            },
        }
        Ok(())
    }

    /// Whether a watermark has tripped since the last refresh.
    fn watermark_due(&self) -> bool {
        self.answers_since >= self.serve.answer_watermark
            || (self.answers_since > 0
                && (self.queue.now() - self.last_refresh).as_f64() >= self.serve.time_watermark)
    }

    /// Cut a checkpoint if one is due. Returns true when the sink asked
    /// the run to halt.
    fn maybe_checkpoint<D: Driver>(
        &mut self,
        driver: &mut D,
        sink: CheckpointSink<'_>,
    ) -> Result<bool> {
        if self.serve.checkpoint_every == 0 {
            return Ok(false);
        }
        self.refreshes_since_ckpt += 1;
        if self.refreshes_since_ckpt < self.serve.checkpoint_every {
            return Ok(false);
        }
        self.refreshes_since_ckpt = 0;
        let write_start = Instant::now();
        let core = driver.snapshot()?;
        let checkpoint = RunCheckpoint {
            fingerprint: self.fingerprint,
            objects: self.dataset.len(),
            annotators: self.pool.len(),
            pump: self.export_state(),
            core,
        };
        obs::counter_add("checkpoint.write", 1);
        obs::gauge(
            "checkpoint.write_ns",
            write_start.elapsed().as_nanos() as f64,
        );
        Ok(sink(checkpoint) == RunControl::Halt)
    }

    /// The main loop: pump events, refresh on watermarks, and when the
    /// queue drains force a refresh to flush leftovers — stopping once a
    /// forced refresh dispatches nothing (or the agent reports done).
    /// Checkpoints are cut only *after* a refresh that keeps the run
    /// going, so every checkpoint resumes into the same loop position.
    fn run<D: Driver>(mut self, driver: &mut D, sink: CheckpointSink<'_>) -> Result<RunOutcome> {
        let wall_start = Instant::now();
        'outer: loop {
            while let Some(event) = self.queue.pop() {
                self.handle(event.kind)?;
                if self.watermark_due() {
                    self.refresh(driver)?;
                    if self.done {
                        break 'outer;
                    }
                    if self.maybe_checkpoint(driver, sink)? {
                        return Ok(RunOutcome::Halted);
                    }
                }
            }
            let dispatched = self.refresh(driver)?;
            if self.done || dispatched == 0 {
                break;
            }
            if self.maybe_checkpoint(driver, sink)? {
                return Ok(RunOutcome::Halted);
            }
        }
        let outcome = driver.finalize(FinalizeRequest {
            answers: Arc::clone(&self.answers),
            budget_spent: self.budget.spent(),
        })?;
        let metrics = self.collector.finish(
            self.queue.now(),
            wall_start.elapsed().as_secs_f64(),
            self.budget.spent(),
        );
        Ok(RunOutcome::Completed(Box::new(AsyncOutcome {
            outcome,
            metrics,
            trace: self.trace,
        })))
    }
}

/// The asynchronous labelling runtime.
#[derive(Debug, Clone)]
pub struct AsyncRuntime {
    config: CrowdRlConfig,
    serve: ServeConfig,
}

impl AsyncRuntime {
    /// Pair a CrowdRL configuration with the service knobs.
    pub fn new(config: CrowdRlConfig, serve: ServeConfig) -> Self {
        Self { config, serve }
    }

    /// Label `dataset` with `pool` through the asynchronous service.
    ///
    /// `rng` seeds the per-annotator dynamics, the initial panels and the
    /// agent's private stream; annotator responses come from the
    /// per-assignment streams of
    /// [`sampling_seed`](ServeConfig::sampling_seed). Two calls with the
    /// same seeds produce identical traces and outcomes in *either*
    /// execution mode.
    pub fn run<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
    ) -> Result<AsyncOutcome> {
        match self.launch(dataset, pool, rng, None, &mut |_| RunControl::Continue)? {
            RunOutcome::Completed(outcome) => Ok(*outcome),
            RunOutcome::Halted => Err(Error::ServiceFailure(
                "run halted although no sink requested it".into(),
            )),
        }
    }

    /// Like [`run`](Self::run), but hands every due checkpoint (see
    /// [`ServeConfig::checkpoint_every`]) to `sink`, which may halt the
    /// run. Feeding a halted run's last checkpoint to
    /// [`resume`](Self::resume) continues it bit-identically.
    pub fn run_with_checkpoints<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
        sink: CheckpointSink<'_>,
    ) -> Result<RunOutcome> {
        self.launch(dataset, pool, rng, None, sink)
    }

    /// Continue a run from `checkpoint`. The caller must pass the same
    /// dataset, pool and an identically-seeded `rng` as the original run
    /// — the config fingerprint and state shapes are verified, and the
    /// resumed run replays the uninterrupted run's remaining trace bit
    /// for bit. `sink` works exactly as in
    /// [`run_with_checkpoints`](Self::run_with_checkpoints).
    pub fn resume<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
        checkpoint: RunCheckpoint,
        sink: CheckpointSink<'_>,
    ) -> Result<RunOutcome> {
        self.launch(dataset, pool, rng, Some(checkpoint), sink)
    }

    /// Shared entry point: validate, build or restore the (core, pump)
    /// pair, and drive it through the configured execution mode.
    fn launch<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
        checkpoint: Option<RunCheckpoint>,
        sink: CheckpointSink<'_>,
    ) -> Result<RunOutcome> {
        self.config.validate()?;
        self.serve.validate()?;
        if pool.is_empty() {
            return Err(Error::InvalidParameter("annotator pool is empty".into()));
        }
        obs::init_from_env();
        let run_span = obs::span("serve.run");
        if obs::enabled() {
            // Which numeric floor this run can dispatch to (the kernels
            // actually used depend on the config's numeric mode).
            obs::annotate("simd.kernel", crowdrl_linalg::simd::kernel_name());
            obs::gauge("simd.lanes", crowdrl_linalg::simd::lanes() as f64);
        }
        // Consumed in both paths so a resume's rng stream lines up with
        // the original run's (dynamics draw + core-seed draw).
        let dynamics = self.serve.dynamics.generate(pool, rng)?;
        let core_seed: u64 = rng.random();
        let fingerprint = self.config.fingerprint();

        let (core, pump, initial) = match checkpoint {
            None => {
                let mut core = AgentCore::new(
                    self.config.clone(),
                    dataset,
                    pool,
                    core_seed,
                    self.serve.quarantine.clone(),
                )?;
                let initial = core.initial_panels();
                let pump = Pump::new(dataset, pool, &self.serve, self.config.budget, fingerprint)?;
                (core, pump, Some(initial))
            }
            Some(ckpt) => {
                if ckpt.fingerprint != fingerprint {
                    return Err(ServeError::ConfigMismatch {
                        expected: fingerprint,
                        actual: ckpt.fingerprint,
                    }
                    .into());
                }
                if ckpt.objects != dataset.len() || ckpt.annotators != pool.len() {
                    return Err(ServeError::CorruptCheckpoint(format!(
                        "checkpoint is for {} objects / {} annotators, run has {} / {}",
                        ckpt.objects,
                        ckpt.annotators,
                        dataset.len(),
                        pool.len()
                    ))
                    .into());
                }
                let restore_start = Instant::now();
                let core = AgentCore::restore(
                    self.config.clone(),
                    dataset,
                    pool,
                    self.serve.quarantine.clone(),
                    ckpt.core,
                )?;
                let pump = Pump::restore(dataset, pool, &self.serve, fingerprint, ckpt.pump)?;
                obs::counter_add("checkpoint.restore", 1);
                obs::gauge(
                    "checkpoint.restore_ns",
                    restore_start.elapsed().as_nanos() as f64,
                );
                // A restored run re-enters the pump loop directly: the
                // initial panels were dispatched before the checkpoint.
                (core, pump, None)
            }
        };

        let result = match self.serve.mode {
            ExecMode::SingleThread => {
                let mut driver = InlineDriver {
                    core,
                    pool,
                    dynamics: &dynamics,
                    sampling_seed: self.serve.sampling_seed,
                };
                run_pump(pump, &mut driver, initial.as_deref(), sink)
            }
            ExecMode::WorkerPool { workers } => {
                let workers = if workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(2)
                } else {
                    workers
                };
                let sampling_seed = self.serve.sampling_seed;
                let dynamics = &dynamics;
                let mut core = core;
                crossbeam::scope(|scope| {
                    let (to_agent, agent_rx) = crossbeam::channel::unbounded::<ToAgent>();
                    let (agent_tx, from_agent) = crossbeam::channel::unbounded::<FromAgent>();
                    scope.spawn(move |_| {
                        for msg in agent_rx.iter() {
                            match msg {
                                ToAgent::Refresh(req) => {
                                    let reply = core.refresh(&req);
                                    // Release the shared answer set *before*
                                    // replying so the pump deterministically
                                    // regains sole ownership (its next
                                    // `Arc::make_mut` stays in place).
                                    drop(req);
                                    if agent_tx.send(FromAgent::Decision(reply)).is_err() {
                                        break;
                                    }
                                }
                                ToAgent::Train => core.train(),
                                ToAgent::Snapshot => {
                                    let state = core.export_state();
                                    if agent_tx.send(FromAgent::Snapshot(Box::new(state))).is_err()
                                    {
                                        break;
                                    }
                                }
                                ToAgent::Finalize(req) => {
                                    let outcome = core.finalize(&req);
                                    let _ = agent_tx.send(FromAgent::Outcome(Box::new(outcome)));
                                    break;
                                }
                            }
                        }
                    });
                    let (job_tx, job_rx) = crossbeam::channel::unbounded::<SampleJob>();
                    let (out_tx, out_rx) = crossbeam::channel::unbounded::<SampledOutcome>();
                    for _ in 0..workers {
                        let job_rx = job_rx.clone();
                        let out_tx = out_tx.clone();
                        scope.spawn(move |_| {
                            while let Ok(job) = job_rx.recv() {
                                let outcome = sample_outcome(sampling_seed, job, pool, dynamics);
                                if out_tx.send(outcome).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    drop(job_rx);
                    drop(out_tx);
                    let mut driver = ThreadedDriver {
                        to_agent,
                        from_agent,
                        job_tx,
                        out_rx,
                    };
                    run_pump(pump, &mut driver, initial.as_deref(), sink)
                })
                .map_err(|_| Error::ServiceFailure("a runtime thread panicked".into()))?
            }
        };
        drop(run_span);
        if let Ok(RunOutcome::Completed(outcome)) = &result {
            outcome.metrics.emit_trace();
            obs::checkpoint();
        }
        result
    }
}

/// Dispatch the initial panels at t = 0 (fresh runs only — resumes enter
/// mid-stream), then hand the loop to the pump.
fn run_pump<D: Driver>(
    mut pump: Pump<'_>,
    driver: &mut D,
    initial: Option<&[(ObjectId, Vec<AnnotatorId>)]>,
    sink: CheckpointSink<'_>,
) -> Result<RunOutcome> {
    if let Some(initial) = initial {
        pump.dispatch(driver, initial)?;
    }
    pump.run(driver, sink)
}
