//! Events on the simulated clock, and the run's observable trace.
//!
//! The runtime is a classic discrete-event simulation: nothing happens
//! between events, so the state of the service is fully described by the
//! ordered stream of [`Event`]s it processes. Ordering is by
//! `(time, sequence number)` — the sequence number is assigned at push
//! time, which makes ties deterministic and therefore the whole run
//! replayable.

use crowdrl_types::{AnnotatorId, AssignmentId, ClassId, ObjectId, SimTime};

/// What a scheduled event does when it fires.
///
/// There are only two kinds: an annotator's answer arriving, and an
/// assignment's timeout expiring. Inference refreshes are *not* events —
/// they are watermark conditions checked after every processed event,
/// which in a discrete-event world is equivalent (time only advances at
/// events) and keeps the queue free of self-perpetuating timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The annotator's answer for this assignment arrives.
    Deliver(AssignmentId),
    /// The assignment's timeout elapses; if the answer has not arrived by
    /// now, the reservation is released and the object may be requeued.
    Expire(AssignmentId),
}

/// A scheduled event. Order: earliest `at` first, then lowest `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// When the event fires on the simulated clock.
    pub at: SimTime,
    /// Push-order tiebreaker (unique per queue).
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

/// One entry of the run's observable trace.
///
/// Two runs with the same seed must produce byte-identical traces — in
/// single-threaded *and* worker-pool mode. The determinism tests compare
/// these directly.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A question was handed to an annotator.
    Dispatched {
        /// Dispatch time.
        at: SimTime,
        /// Ledger id of the assignment.
        id: AssignmentId,
        /// The object asked about.
        object: ObjectId,
        /// The annotator asked.
        annotator: AnnotatorId,
    },
    /// An answer arrived in time and was charged to the budget.
    Delivered {
        /// Arrival time.
        at: SimTime,
        /// Ledger id of the assignment.
        id: AssignmentId,
        /// The label the annotator gave.
        label: ClassId,
    },
    /// An answer arrived but was rejected (late after expiry, or a
    /// duplicate) — not recorded, not charged.
    Rejected {
        /// Arrival time.
        at: SimTime,
        /// Ledger id of the assignment.
        id: AssignmentId,
    },
    /// An assignment timed out before its answer arrived.
    Expired {
        /// Expiry time.
        at: SimTime,
        /// Ledger id of the assignment.
        id: AssignmentId,
        /// Whether the object went back into the candidate pool
        /// (false once its requeue budget is used up).
        requeued: bool,
    },
    /// A truth-inference refresh ran over all answers so far.
    Refreshed {
        /// Refresh time.
        at: SimTime,
        /// Total answers ingested so far.
        answers: usize,
        /// Labelled objects after the refresh.
        labelled: usize,
    },
    /// An annotator's circuit breaker opened: its inferred quality
    /// collapsed and it was removed from selection.
    Quarantined {
        /// Refresh time at which the breaker opened.
        at: SimTime,
        /// The quarantined annotator.
        annotator: AnnotatorId,
    },
    /// A quarantined annotator was re-admitted (probation or degraded-
    /// mode escalation).
    QuarantineReleased {
        /// Refresh time at which the annotator was released.
        at: SimTime,
        /// The released annotator.
        annotator: AnnotatorId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_order_by_time_then_sequence() {
        let t = |x: f64| SimTime::new(x).unwrap();
        let a = Event {
            at: t(1.0),
            seq: 5,
            kind: EventKind::Deliver(AssignmentId(0)),
        };
        let b = Event {
            at: t(1.0),
            seq: 6,
            kind: EventKind::Expire(AssignmentId(0)),
        };
        let c = Event {
            at: t(2.0),
            seq: 1,
            kind: EventKind::Deliver(AssignmentId(1)),
        };
        assert!(a < b);
        assert!(b < c);
    }
}
