//! Crash-consistent checkpoints of a whole asynchronous run.
//!
//! A [`RunCheckpoint`] captures everything the runtime needs to continue a
//! run as if it had never stopped: the pump's service state (clock, event
//! queue, ledger, budget, answers, metrics, trace) and the agent core's
//! learning state (classifier, DQN, inference engine, RNG, quarantine).
//! Killing a run at a checkpoint and [`resuming`](crate::AsyncRuntime::resume)
//! it must reproduce the uninterrupted run's trace and labels **bit for
//! bit** — the chaos suite pins that.
//!
//! The encoding is hand-rolled JSON over [`crowdrl_obs::json`] (the
//! workspace has a zero-external-dependency policy). Bit-exactness rules
//! the format:
//!
//! * every `f64` is written as its 16-hex-digit IEEE bit pattern (JSON
//!   numbers would lose NaN log-likelihoods and the writer clamps
//!   non-finite values);
//! * `f32` and `f64` slices concatenate fixed-width hex chunks into one
//!   string, which also keeps million-weight tensors from exploding into
//!   million-element JSON arrays;
//! * `u64` values (seeds, RNG words, sequence numbers) are 16-hex strings
//!   because JSON numbers are only exact below 2^53;
//! * small counts and ids stay plain JSON numbers for readability.
//!
//! [`decode`](RunCheckpoint::decode) validates shape and re-derives nothing
//! silently: any mismatch surfaces as
//! [`ServeError::CorruptCheckpoint`](crate::ServeError::CorruptCheckpoint).

use crate::core_loop::{CoreState, PendingBatchState};
use crate::error::ServeError;
use crate::event::{Event, EventKind, TraceEvent};
use crate::ledger::{AssignmentRecord, AssignmentStatus};
use crate::supervisor::QuarantineStatus;
use crowdrl_core::agent::{AgentState, Assignment};
use crowdrl_core::IterationStats;
use crowdrl_inference::{EngineSnapshot, InferenceResult};
use crowdrl_nn::ClassifierSnapshot;
use crowdrl_obs::json::{parse, Value};
use crowdrl_rl::{DqnSnapshot, Transition};
use crowdrl_types::{
    AnnotatorId, Answer, AnswerSet, AssignmentId, ClassId, ConfusionMatrix, LabelState, ObjectId,
    Result, SimTime,
};
use std::collections::BTreeMap;

/// Format version stamped into every checkpoint.
const VERSION: u64 = 1;

/// The pump's complete service state at a watermark boundary.
#[derive(Debug, Clone)]
pub struct PumpCheckpoint {
    /// Simulated clock reading.
    pub now: SimTime,
    /// Event-queue sequence counter.
    pub next_seq: u64,
    /// Pending events in deterministic (pop) order, sequence numbers
    /// preserved.
    pub events: Vec<Event>,
    /// Every ledger record ever issued, in id order.
    pub records: Vec<AssignmentRecord>,
    /// Budget ceiling.
    pub budget_total: f64,
    /// Exact accumulated spend (bit-level — float sums are order-dependent).
    pub budget_spent: f64,
    /// Successful charges so far.
    pub budget_charges: usize,
    /// All recorded answers.
    pub answers: AnswerSet,
    /// Delivered-answer latencies in arrival order.
    pub latencies: Vec<f64>,
    /// Metrics counter: questions dispatched.
    pub dispatched: usize,
    /// Metrics counter: answers delivered.
    pub delivered: usize,
    /// Metrics counter: answers rejected.
    pub rejected: usize,
    /// Metrics counter: timeouts fired.
    pub timeouts: usize,
    /// Metrics counter: objects requeued.
    pub requeues: usize,
    /// Metrics counter: refreshes run.
    pub refreshes: usize,
    /// Metrics counter: events processed.
    pub events_processed: usize,
    /// The observable trace so far.
    pub trace: Vec<TraceEvent>,
    /// Sampled label per assignment id (None = dropped).
    pub labels_by_id: Vec<Option<ClassId>>,
    /// Per-object requeue counts.
    pub requeue_count: Vec<usize>,
    /// Objects whose requeue budget is exhausted, ascending.
    pub abandoned: Vec<ObjectId>,
    /// Per-object supervisor backoff deadlines (absolute sim time).
    pub backoff_until: Vec<f64>,
    /// Answers since the last refresh.
    pub answers_since: usize,
    /// When the last refresh ran.
    pub last_refresh: SimTime,
}

/// A complete, resumable snapshot of one asynchronous labelling run.
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// FNV-1a fingerprint of the [`CrowdRlConfig`](crowdrl_core::CrowdRlConfig)
    /// that produced this run; restore refuses a mismatch.
    pub fingerprint: u64,
    /// Dataset size the run was started with.
    pub objects: usize,
    /// Annotator-pool size the run was started with.
    pub annotators: usize,
    /// The pump's service state.
    pub pump: PumpCheckpoint,
    /// The agent core's learning state.
    pub core: CoreState,
}

impl RunCheckpoint {
    /// Serialize to a single deterministic JSON document: the same
    /// checkpoint always renders the same bytes.
    pub fn encode(&self) -> String {
        obj([
            ("version", Value::Num(VERSION as f64)),
            ("fingerprint", hex_u64(self.fingerprint)),
            ("objects", num(self.objects)),
            ("annotators", num(self.annotators)),
            ("pump", enc_pump(&self.pump)),
            ("core", enc_core(&self.core)),
        ])
        .render()
    }

    /// Parse a document produced by [`encode`](Self::encode). Anything
    /// malformed — bad JSON, wrong version, missing fields, inconsistent
    /// shapes — is a [`ServeError::CorruptCheckpoint`].
    pub fn decode(text: &str) -> Result<Self> {
        let v = parse(text).map_err(|e| corrupt(format!("bad JSON: {e}")))?;
        let version = get_u64_plain(&v, "version")?;
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported checkpoint version {version} (expected {VERSION})"
            )));
        }
        Ok(Self {
            fingerprint: get_hex_u64(&v, "fingerprint")?,
            objects: get_usize(&v, "objects")?,
            annotators: get_usize(&v, "annotators")?,
            pump: dec_pump(field(&v, "pump")?)?,
            core: dec_core(field(&v, "core")?)?,
        })
    }
}

fn corrupt(msg: impl Into<String>) -> crowdrl_types::Error {
    ServeError::CorruptCheckpoint(msg.into()).into()
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoders
// ---------------------------------------------------------------------------

/// Build a JSON object in deterministic (BTreeMap) key order.
pub fn obj<const N: usize>(entries: [(&str, Value); N]) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// A small exact count as a plain JSON number.
pub fn num(n: usize) -> Value {
    // Plain JSON numbers are exact below 2^53 — far beyond any count here.
    Value::Num(n as f64)
}

/// A `u64` as a 16-hex-digit string (JSON numbers are only exact below 2^53).
pub fn hex_u64(v: u64) -> Value {
    Value::Str(format!("{v:016x}"))
}

/// An `f64` as its 16-hex-digit IEEE bit pattern.
pub fn bits_f64(v: f64) -> Value {
    Value::Str(format!("{:016x}", v.to_bits()))
}

/// An `f32` as its 8-hex-digit IEEE bit pattern.
pub fn bits_f32(v: f32) -> Value {
    Value::Str(format!("{:08x}", v.to_bits()))
}

/// Concatenated 16-hex-digit bit patterns, one per f64.
pub fn f64s(xs: &[f64]) -> Value {
    let mut s = String::with_capacity(xs.len() * 16);
    for x in xs {
        s.push_str(&format!("{:016x}", x.to_bits()));
    }
    Value::Str(s)
}

/// Concatenated 8-hex-digit bit patterns, one per f32.
pub fn f32s(xs: &[f32]) -> Value {
    let mut s = String::with_capacity(xs.len() * 8);
    for x in xs {
        s.push_str(&format!("{:08x}", x.to_bits()));
    }
    Value::Str(s)
}

/// Look up a required object field.
pub fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key)
        .ok_or_else(|| corrupt(format!("missing field {key:?}")))
}

/// Decode a non-negative integral count field.
pub fn get_usize(v: &Value, key: &str) -> Result<usize> {
    let n = field(v, key)?
        .as_f64()
        .ok_or_else(|| corrupt(format!("field {key:?} is not a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(corrupt(format!("field {key:?} is not a valid count: {n}")));
    }
    Ok(n as usize)
}

/// Decode a `u64` stored as a plain JSON number.
pub fn get_u64_plain(v: &Value, key: &str) -> Result<u64> {
    Ok(get_usize(v, key)? as u64)
}

/// Parse exactly 16 hex digits into a `u64`.
pub fn parse_hex_u64(s: &str, what: &str) -> Result<u64> {
    if s.len() != 16 {
        return Err(corrupt(format!(
            "{what}: expected 16 hex digits, got {s:?}"
        )));
    }
    u64::from_str_radix(s, 16).map_err(|_| corrupt(format!("{what}: bad hex {s:?}")))
}

/// Decode a `u64` field stored as 16 hex digits.
pub fn get_hex_u64(v: &Value, key: &str) -> Result<u64> {
    let s = get_str(v, key)?;
    parse_hex_u64(s, key)
}

/// Decode a string field.
pub fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| corrupt(format!("field {key:?} is not a string")))
}

/// Decode a bool field.
pub fn get_bool(v: &Value, key: &str) -> Result<bool> {
    match field(v, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(corrupt(format!("field {key:?} is not a bool"))),
    }
}

/// Decode an array field.
pub fn get_arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value]> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| corrupt(format!("field {key:?} is not an array")))
}

/// Decode an `f64` field stored as its bit pattern.
pub fn get_f64_bits(v: &Value, key: &str) -> Result<f64> {
    Ok(f64::from_bits(get_hex_u64(v, key)?))
}

/// Parse a concatenated 16-hex-chunk string into `f64`s.
pub fn parse_f64s(s: &str, what: &str) -> Result<Vec<f64>> {
    if !s.len().is_multiple_of(16) {
        return Err(corrupt(format!("{what}: length not a multiple of 16")));
    }
    (0..s.len() / 16)
        .map(|i| parse_hex_u64(&s[i * 16..(i + 1) * 16], what).map(f64::from_bits))
        .collect()
}

/// Parse a concatenated 8-hex-chunk string into `f32`s.
pub fn parse_f32s(s: &str, what: &str) -> Result<Vec<f32>> {
    if !s.len().is_multiple_of(8) {
        return Err(corrupt(format!("{what}: length not a multiple of 8")));
    }
    (0..s.len() / 8)
        .map(|i| {
            u32::from_str_radix(&s[i * 8..(i + 1) * 8], 16)
                .map(f32::from_bits)
                .map_err(|_| corrupt(format!("{what}: bad hex chunk")))
        })
        .collect()
}

/// Decode an `f64`-slice field (concatenated bit patterns).
pub fn get_f64s(v: &Value, key: &str) -> Result<Vec<f64>> {
    parse_f64s(get_str(v, key)?, key)
}

/// Decode an `f32`-slice field (concatenated bit patterns).
pub fn get_f32s(v: &Value, key: &str) -> Result<Vec<f32>> {
    parse_f32s(get_str(v, key)?, key)
}

/// Decode a `SimTime` field stored as an `f64` bit pattern.
pub fn get_sim_time(v: &Value, key: &str) -> Result<SimTime> {
    SimTime::new(get_f64_bits(v, key)?)
        .map_err(|e| corrupt(format!("field {key:?} is not a valid time: {e}")))
}

/// Encode an optional value, `Null` when absent.
pub fn opt<T>(value: Option<T>, enc: impl Fn(T) -> Value) -> Value {
    match value {
        Some(x) => enc(x),
        None => Value::Null,
    }
}

/// Decode an array-of-counts field.
pub fn arr_usize(v: &Value, key: &str) -> Result<Vec<usize>> {
    get_arr(v, key)?
        .iter()
        .map(|x| {
            let n = x
                .as_f64()
                .ok_or_else(|| corrupt(format!("{key}: non-numeric element")))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(corrupt(format!("{key}: bad count {n}")));
            }
            Ok(n as usize)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Pump state
// ---------------------------------------------------------------------------

/// Encode a pending scheduler event.
pub fn enc_event(e: &Event) -> Value {
    let (kind, id) = match e.kind {
        EventKind::Deliver(id) => ("deliver", id),
        EventKind::Expire(id) => ("expire", id),
    };
    obj([
        ("at", bits_f64(e.at.as_f64())),
        ("seq", hex_u64(e.seq)),
        ("kind", Value::Str(kind.to_string())),
        ("id", hex_u64(id.0)),
    ])
}

/// Decode a pending scheduler event.
pub fn dec_event(v: &Value) -> Result<Event> {
    let id = AssignmentId(get_hex_u64(v, "id")?);
    let kind = match get_str(v, "kind")? {
        "deliver" => EventKind::Deliver(id),
        "expire" => EventKind::Expire(id),
        other => return Err(corrupt(format!("unknown event kind {other:?}"))),
    };
    Ok(Event {
        at: get_sim_time(v, "at")?,
        seq: get_hex_u64(v, "seq")?,
        kind,
    })
}

/// Encode a ledger assignment record.
pub fn enc_record(r: &AssignmentRecord) -> Value {
    let status = match r.status {
        AssignmentStatus::InFlight => "in_flight",
        AssignmentStatus::Delivered => "delivered",
        AssignmentStatus::Expired => "expired",
    };
    obj([
        ("id", hex_u64(r.id.0)),
        ("object", num(r.object.0)),
        ("annotator", num(r.annotator.0)),
        ("cost", bits_f64(r.cost)),
        ("dispatched_at", bits_f64(r.dispatched_at.as_f64())),
        ("deadline", bits_f64(r.deadline.as_f64())),
        ("status", Value::Str(status.to_string())),
    ])
}

/// Decode a ledger assignment record.
pub fn dec_record(v: &Value) -> Result<AssignmentRecord> {
    let status = match get_str(v, "status")? {
        "in_flight" => AssignmentStatus::InFlight,
        "delivered" => AssignmentStatus::Delivered,
        "expired" => AssignmentStatus::Expired,
        other => return Err(corrupt(format!("unknown assignment status {other:?}"))),
    };
    Ok(AssignmentRecord {
        id: AssignmentId(get_hex_u64(v, "id")?),
        object: ObjectId(get_usize(v, "object")?),
        annotator: AnnotatorId(get_usize(v, "annotator")?),
        cost: get_f64_bits(v, "cost")?,
        dispatched_at: get_sim_time(v, "dispatched_at")?,
        deadline: get_sim_time(v, "deadline")?,
        status,
    })
}

/// Encode an observable trace event.
pub fn enc_trace_event(e: &TraceEvent) -> Value {
    match e {
        TraceEvent::Dispatched {
            at,
            id,
            object,
            annotator,
        } => obj([
            ("t", Value::Str("dispatched".into())),
            ("at", bits_f64(at.as_f64())),
            ("id", hex_u64(id.0)),
            ("object", num(object.0)),
            ("annotator", num(annotator.0)),
        ]),
        TraceEvent::Delivered { at, id, label } => obj([
            ("t", Value::Str("delivered".into())),
            ("at", bits_f64(at.as_f64())),
            ("id", hex_u64(id.0)),
            ("label", num(label.0)),
        ]),
        TraceEvent::Rejected { at, id } => obj([
            ("t", Value::Str("rejected".into())),
            ("at", bits_f64(at.as_f64())),
            ("id", hex_u64(id.0)),
        ]),
        TraceEvent::Expired { at, id, requeued } => obj([
            ("t", Value::Str("expired".into())),
            ("at", bits_f64(at.as_f64())),
            ("id", hex_u64(id.0)),
            ("requeued", Value::Bool(*requeued)),
        ]),
        TraceEvent::Refreshed {
            at,
            answers,
            labelled,
        } => obj([
            ("t", Value::Str("refreshed".into())),
            ("at", bits_f64(at.as_f64())),
            ("answers", num(*answers)),
            ("labelled", num(*labelled)),
        ]),
        TraceEvent::Quarantined { at, annotator } => obj([
            ("t", Value::Str("quarantined".into())),
            ("at", bits_f64(at.as_f64())),
            ("annotator", num(annotator.0)),
        ]),
        TraceEvent::QuarantineReleased { at, annotator } => obj([
            ("t", Value::Str("quarantine_released".into())),
            ("at", bits_f64(at.as_f64())),
            ("annotator", num(annotator.0)),
        ]),
    }
}

/// Decode an observable trace event.
pub fn dec_trace_event(v: &Value) -> Result<TraceEvent> {
    let at = get_sim_time(v, "at")?;
    Ok(match get_str(v, "t")? {
        "dispatched" => TraceEvent::Dispatched {
            at,
            id: AssignmentId(get_hex_u64(v, "id")?),
            object: ObjectId(get_usize(v, "object")?),
            annotator: AnnotatorId(get_usize(v, "annotator")?),
        },
        "delivered" => TraceEvent::Delivered {
            at,
            id: AssignmentId(get_hex_u64(v, "id")?),
            label: ClassId(get_usize(v, "label")?),
        },
        "rejected" => TraceEvent::Rejected {
            at,
            id: AssignmentId(get_hex_u64(v, "id")?),
        },
        "expired" => TraceEvent::Expired {
            at,
            id: AssignmentId(get_hex_u64(v, "id")?),
            requeued: get_bool(v, "requeued")?,
        },
        "refreshed" => TraceEvent::Refreshed {
            at,
            answers: get_usize(v, "answers")?,
            labelled: get_usize(v, "labelled")?,
        },
        "quarantined" => TraceEvent::Quarantined {
            at,
            annotator: AnnotatorId(get_usize(v, "annotator")?),
        },
        "quarantine_released" => TraceEvent::QuarantineReleased {
            at,
            annotator: AnnotatorId(get_usize(v, "annotator")?),
        },
        other => return Err(corrupt(format!("unknown trace event {other:?}"))),
    })
}

/// Encode an answer set as per-object (annotator, class) pairs.
pub fn enc_answers(answers: &AnswerSet) -> Value {
    Value::Arr(
        (0..answers.num_objects())
            .map(|i| {
                Value::Arr(
                    answers
                        .answers_for(ObjectId(i))
                        .iter()
                        .map(|&(a, c)| Value::Arr(vec![num(a.0), num(c.0)]))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Decode an answer set field.
pub fn dec_answers(v: &Value, key: &str) -> Result<AnswerSet> {
    let rows = get_arr(v, key)?;
    let mut answers = AnswerSet::new(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| corrupt(format!("{key}[{i}] is not an array")))?;
        for pair in row {
            let pair = pair
                .as_arr()
                .ok_or_else(|| corrupt(format!("{key}[{i}]: bad answer pair")))?;
            let [a, c] = pair else {
                return Err(corrupt(format!("{key}[{i}]: answer pair is not 2-long")));
            };
            let (Some(a), Some(c)) = (a.as_u64(), c.as_u64()) else {
                return Err(corrupt(format!("{key}[{i}]: non-numeric answer pair")));
            };
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: AnnotatorId(a as usize),
                    label: ClassId(c as usize),
                })
                .map_err(|e| corrupt(format!("{key}[{i}]: {e}")))?;
        }
    }
    Ok(answers)
}

fn enc_pump(p: &PumpCheckpoint) -> Value {
    obj([
        ("now", bits_f64(p.now.as_f64())),
        ("next_seq", hex_u64(p.next_seq)),
        (
            "events",
            Value::Arr(p.events.iter().map(enc_event).collect()),
        ),
        (
            "records",
            Value::Arr(p.records.iter().map(enc_record).collect()),
        ),
        ("budget_total", bits_f64(p.budget_total)),
        ("budget_spent", bits_f64(p.budget_spent)),
        ("budget_charges", num(p.budget_charges)),
        ("answers", enc_answers(&p.answers)),
        ("latencies", f64s(&p.latencies)),
        ("dispatched", num(p.dispatched)),
        ("delivered", num(p.delivered)),
        ("rejected", num(p.rejected)),
        ("timeouts", num(p.timeouts)),
        ("requeues", num(p.requeues)),
        ("refreshes", num(p.refreshes)),
        ("events_processed", num(p.events_processed)),
        (
            "trace",
            Value::Arr(p.trace.iter().map(enc_trace_event).collect()),
        ),
        (
            "labels_by_id",
            Value::Arr(
                p.labels_by_id
                    .iter()
                    .map(|l| opt(*l, |c| num(c.0)))
                    .collect(),
            ),
        ),
        (
            "requeue_count",
            Value::Arr(p.requeue_count.iter().map(|&n| num(n)).collect()),
        ),
        (
            "abandoned",
            Value::Arr(p.abandoned.iter().map(|o| num(o.0)).collect()),
        ),
        ("backoff_until", f64s(&p.backoff_until)),
        ("answers_since", num(p.answers_since)),
        ("last_refresh", bits_f64(p.last_refresh.as_f64())),
    ])
}

fn dec_pump(v: &Value) -> Result<PumpCheckpoint> {
    let labels_by_id = get_arr(v, "labels_by_id")?
        .iter()
        .enumerate()
        .map(|(i, l)| match l {
            Value::Null => Ok(None),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(ClassId(*n as usize))),
            _ => Err(corrupt(format!("labels_by_id[{i}] is not null or a class"))),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(PumpCheckpoint {
        now: get_sim_time(v, "now")?,
        next_seq: get_hex_u64(v, "next_seq")?,
        events: get_arr(v, "events")?
            .iter()
            .map(dec_event)
            .collect::<Result<_>>()?,
        records: get_arr(v, "records")?
            .iter()
            .map(dec_record)
            .collect::<Result<_>>()?,
        budget_total: get_f64_bits(v, "budget_total")?,
        budget_spent: get_f64_bits(v, "budget_spent")?,
        budget_charges: get_usize(v, "budget_charges")?,
        answers: dec_answers(v, "answers")?,
        latencies: get_f64s(v, "latencies")?,
        dispatched: get_usize(v, "dispatched")?,
        delivered: get_usize(v, "delivered")?,
        rejected: get_usize(v, "rejected")?,
        timeouts: get_usize(v, "timeouts")?,
        requeues: get_usize(v, "requeues")?,
        refreshes: get_usize(v, "refreshes")?,
        events_processed: get_usize(v, "events_processed")?,
        trace: get_arr(v, "trace")?
            .iter()
            .map(dec_trace_event)
            .collect::<Result<_>>()?,
        labels_by_id,
        requeue_count: arr_usize(v, "requeue_count")?,
        abandoned: arr_usize(v, "abandoned")?
            .into_iter()
            .map(ObjectId)
            .collect(),
        backoff_until: get_f64s(v, "backoff_until")?,
        answers_since: get_usize(v, "answers_since")?,
        last_refresh: get_sim_time(v, "last_refresh")?,
    })
}

// ---------------------------------------------------------------------------
// Core state
// ---------------------------------------------------------------------------

/// Per-parameter-tensor Adam state: first moment, second moment, step.
type OptSlot = (Vec<f32>, Vec<f32>, u64);

fn enc_opt_state(state: &[OptSlot]) -> Value {
    Value::Arr(
        state
            .iter()
            .map(|(m, v, t)| obj([("m", f32s(m)), ("v", f32s(v)), ("t", hex_u64(*t))]))
            .collect(),
    )
}

fn dec_opt_state(v: &Value, key: &str) -> Result<Vec<OptSlot>> {
    get_arr(v, key)?
        .iter()
        .map(|slot| {
            Ok((
                get_f32s(slot, "m")?,
                get_f32s(slot, "v")?,
                get_hex_u64(slot, "t")?,
            ))
        })
        .collect()
}

fn enc_classifier(c: &ClassifierSnapshot) -> Value {
    obj([
        ("params", f32s(&c.params)),
        ("opt_state", enc_opt_state(&c.opt_state)),
        ("trained", Value::Bool(c.trained)),
        ("generation", hex_u64(c.generation)),
    ])
}

fn dec_classifier(v: &Value) -> Result<ClassifierSnapshot> {
    Ok(ClassifierSnapshot {
        params: get_f32s(v, "params")?,
        opt_state: dec_opt_state(v, "opt_state")?,
        trained: get_bool(v, "trained")?,
        generation: get_hex_u64(v, "generation")?,
    })
}

fn enc_transition(t: &Transition) -> Value {
    obj([
        ("sa", f32s(&t.state_action)),
        ("reward", bits_f32(t.reward)),
        (
            "next",
            Value::Arr(t.next_candidates.iter().map(|c| f32s(c)).collect()),
        ),
        ("terminal", Value::Bool(t.terminal)),
    ])
}

fn dec_transition(v: &Value) -> Result<Transition> {
    let reward_bits = get_str(v, "reward")?;
    let reward = u32::from_str_radix(reward_bits, 16)
        .map(f32::from_bits)
        .map_err(|_| corrupt(format!("bad reward bits {reward_bits:?}")))?;
    Ok(Transition {
        state_action: get_f32s(v, "sa")?,
        reward,
        next_candidates: get_arr(v, "next")?
            .iter()
            .enumerate()
            .map(|(i, c)| {
                parse_f32s(
                    c.as_str()
                        .ok_or_else(|| corrupt(format!("next[{i}] is not a string")))?,
                    "next",
                )
            })
            .collect::<Result<_>>()?,
        terminal: get_bool(v, "terminal")?,
    })
}

fn enc_dqn(d: &DqnSnapshot) -> Value {
    obj([
        ("online", f32s(&d.online)),
        ("target", f32s(&d.target)),
        ("opt_state", enc_opt_state(&d.opt_state)),
        (
            "replay",
            Value::Arr(d.replay.iter().map(enc_transition).collect()),
        ),
        ("replay_head", num(d.replay_head)),
        ("replay_pushed", num(d.replay_pushed)),
        ("train_steps", num(d.train_steps)),
    ])
}

fn dec_dqn(v: &Value) -> Result<DqnSnapshot> {
    Ok(DqnSnapshot {
        online: get_f32s(v, "online")?,
        target: get_f32s(v, "target")?,
        opt_state: dec_opt_state(v, "opt_state")?,
        replay: get_arr(v, "replay")?
            .iter()
            .map(dec_transition)
            .collect::<Result<_>>()?,
        replay_head: get_usize(v, "replay_head")?,
        replay_pushed: get_usize(v, "replay_pushed")?,
        train_steps: get_usize(v, "train_steps")?,
    })
}

fn enc_agent(a: &AgentState) -> Value {
    obj([
        ("dqn", enc_dqn(&a.dqn)),
        (
            "ucb_counts",
            opt(a.ucb_counts.as_ref(), |counts| {
                Value::Arr(
                    counts
                        .iter()
                        .map(|&(n, c)| Value::Arr(vec![hex_u64(n), hex_u64(c)]))
                        .collect(),
                )
            }),
        ),
        ("eps_steps", opt(a.eps_steps, hex_u64)),
    ])
}

fn dec_agent(v: &Value) -> Result<AgentState> {
    let ucb_counts = match field(v, "ucb_counts")? {
        Value::Null => None,
        Value::Arr(items) => Some(
            items
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .ok_or_else(|| corrupt("ucb_counts: bad pair"))?;
                    let [n, c] = pair else {
                        return Err(corrupt("ucb_counts: pair is not 2-long"));
                    };
                    let (Some(n), Some(c)) = (n.as_str(), c.as_str()) else {
                        return Err(corrupt("ucb_counts: non-string pair"));
                    };
                    Ok((
                        parse_hex_u64(n, "ucb_counts")?,
                        parse_hex_u64(c, "ucb_counts")?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
        ),
        _ => return Err(corrupt("ucb_counts is neither null nor an array")),
    };
    let eps_steps = match field(v, "eps_steps")? {
        Value::Null => None,
        Value::Str(s) => Some(parse_hex_u64(s, "eps_steps")?),
        _ => return Err(corrupt("eps_steps is neither null nor a string")),
    };
    Ok(AgentState {
        dqn: dec_dqn(field(v, "dqn")?)?,
        ucb_counts,
        eps_steps,
    })
}

/// Encode a per-object label state.
pub fn enc_label_state(l: LabelState) -> Value {
    match l {
        LabelState::Unlabelled => Value::Null,
        LabelState::Inferred(c) => obj([("i", num(c.0))]),
        LabelState::Enriched(c) => obj([("e", num(c.0))]),
    }
}

/// Decode a per-object label state.
pub fn dec_label_state(v: &Value) -> Result<LabelState> {
    match v {
        Value::Null => Ok(LabelState::Unlabelled),
        Value::Obj(_) => {
            if let Some(c) = v.get("i").and_then(Value::as_u64) {
                Ok(LabelState::Inferred(ClassId(c as usize)))
            } else if let Some(c) = v.get("e").and_then(Value::as_u64) {
                Ok(LabelState::Enriched(ClassId(c as usize)))
            } else {
                Err(corrupt("label state object without i/e"))
            }
        }
        _ => Err(corrupt("label state is neither null nor an object")),
    }
}

fn enc_assignment(a: &Assignment) -> Value {
    obj([
        ("object", num(a.object.0)),
        (
            "annotators",
            Value::Arr(a.annotators.iter().map(|w| num(w.0)).collect()),
        ),
        (
            "embeddings",
            Value::Arr(a.embeddings.iter().map(|e| f32s(e)).collect()),
        ),
    ])
}

fn dec_assignment(v: &Value) -> Result<Assignment> {
    Ok(Assignment {
        object: ObjectId(get_usize(v, "object")?),
        annotators: arr_usize(v, "annotators")?
            .into_iter()
            .map(AnnotatorId)
            .collect(),
        embeddings: get_arr(v, "embeddings")?
            .iter()
            .enumerate()
            .map(|(i, e)| {
                parse_f32s(
                    e.as_str()
                        .ok_or_else(|| corrupt(format!("embeddings[{i}] is not a string")))?,
                    "embeddings",
                )
            })
            .collect::<Result<_>>()?,
    })
}

fn enc_pending(p: &PendingBatchState) -> Value {
    obj([
        (
            "assignments",
            Value::Arr(p.assignments.iter().map(enc_assignment).collect()),
        ),
        (
            "conf_before",
            Value::Arr(
                p.conf_before
                    .iter()
                    .map(|&(o, c)| Value::Arr(vec![num(o.0), bits_f64(c)]))
                    .collect(),
            ),
        ),
        (
            "phi_guesses",
            Value::Arr(
                p.phi_guesses
                    .iter()
                    .map(|&(o, g)| Value::Arr(vec![num(o.0), num(g)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_pending(v: &Value) -> Result<PendingBatchState> {
    let conf_before = get_arr(v, "conf_before")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .ok_or_else(|| corrupt("conf_before: bad pair"))?;
            let [o, c] = pair else {
                return Err(corrupt("conf_before: pair is not 2-long"));
            };
            let o = o
                .as_u64()
                .ok_or_else(|| corrupt("conf_before: bad object"))?;
            let c = c
                .as_str()
                .ok_or_else(|| corrupt("conf_before: bad confidence"))?;
            Ok((
                ObjectId(o as usize),
                f64::from_bits(parse_hex_u64(c, "conf_before")?),
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    let phi_guesses = get_arr(v, "phi_guesses")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .ok_or_else(|| corrupt("phi_guesses: bad pair"))?;
            let [o, g] = pair else {
                return Err(corrupt("phi_guesses: pair is not 2-long"));
            };
            let (Some(o), Some(g)) = (o.as_u64(), g.as_u64()) else {
                return Err(corrupt("phi_guesses: non-numeric pair"));
            };
            Ok((ObjectId(o as usize), g as usize))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(PendingBatchState {
        assignments: get_arr(v, "assignments")?
            .iter()
            .map(dec_assignment)
            .collect::<Result<_>>()?,
        conf_before,
        phi_guesses,
    })
}

/// Encode one iteration's workflow stats.
pub fn enc_stats(s: &IterationStats) -> Value {
    obj([
        ("iteration", num(s.iteration)),
        ("enriched", num(s.enriched)),
        ("selected", num(s.selected)),
        ("answers", num(s.answers)),
        ("spend", bits_f64(s.spend)),
        ("reward", bits_f64(s.reward)),
        ("labelled_total", num(s.labelled_total)),
        ("td_loss", opt(s.td_loss, bits_f32)),
    ])
}

/// Decode one iteration's workflow stats.
pub fn dec_stats(v: &Value) -> Result<IterationStats> {
    let td_loss = match field(v, "td_loss")? {
        Value::Null => None,
        Value::Str(s) => Some(
            u32::from_str_radix(s, 16)
                .map(f32::from_bits)
                .map_err(|_| corrupt(format!("bad td_loss bits {s:?}")))?,
        ),
        _ => return Err(corrupt("td_loss is neither null nor a string")),
    };
    Ok(IterationStats {
        iteration: get_usize(v, "iteration")?,
        enriched: get_usize(v, "enriched")?,
        selected: get_usize(v, "selected")?,
        answers: get_usize(v, "answers")?,
        spend: get_f64_bits(v, "spend")?,
        reward: get_f64_bits(v, "reward")?,
        labelled_total: get_usize(v, "labelled_total")?,
        td_loss,
    })
}

fn enc_confusion(m: &ConfusionMatrix) -> Value {
    let k = m.num_classes();
    Value::Arr(
        (0..k)
            .map(|t| {
                let row: Vec<f64> = (0..k).map(|r| m.get(ClassId(t), ClassId(r))).collect();
                f64s(&row)
            })
            .collect(),
    )
}

fn dec_confusion(v: &Value, what: &str) -> Result<ConfusionMatrix> {
    let rows = v
        .as_arr()
        .ok_or_else(|| corrupt(format!("{what}: not an array")))?
        .iter()
        .enumerate()
        .map(|(i, row)| {
            parse_f64s(
                row.as_str()
                    .ok_or_else(|| corrupt(format!("{what}[{i}]: not a string")))?,
                what,
            )
        })
        .collect::<Result<Vec<_>>>()?;
    ConfusionMatrix::from_rows(&rows).map_err(|e| corrupt(format!("{what}: {e}")))
}

fn enc_result(r: &InferenceResult) -> Value {
    obj([
        (
            "posteriors",
            Value::Arr(
                r.posteriors
                    .iter()
                    .map(|p| opt(p.as_ref(), |p| f64s(p)))
                    .collect(),
            ),
        ),
        (
            "confusions",
            Value::Arr(r.confusions.iter().map(enc_confusion).collect()),
        ),
        ("class_prior", f64s(&r.class_prior)),
        ("iterations", num(r.iterations)),
        ("log_likelihood", bits_f64(r.log_likelihood)),
    ])
}

fn dec_result(v: &Value) -> Result<InferenceResult> {
    let posteriors = get_arr(v, "posteriors")?
        .iter()
        .enumerate()
        .map(|(i, p)| match p {
            Value::Null => Ok(None),
            Value::Str(s) => parse_f64s(s, "posteriors").map(Some),
            _ => Err(corrupt(format!("posteriors[{i}] is not null or a string"))),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(InferenceResult {
        posteriors,
        confusions: get_arr(v, "confusions")?
            .iter()
            .map(|m| dec_confusion(m, "confusions"))
            .collect::<Result<_>>()?,
        class_prior: get_f64s(v, "class_prior")?,
        iterations: get_usize(v, "iterations")?,
        log_likelihood: get_f64_bits(v, "log_likelihood")?,
    })
}

fn enc_engine(e: &EngineSnapshot) -> Value {
    obj([
        ("last", enc_result(&e.last)),
        (
            "answer_counts",
            Value::Arr(e.answer_counts.iter().map(|&n| num(n)).collect()),
        ),
        ("total_answers", num(e.total_answers)),
        (
            "moved",
            Value::Arr(e.moved.iter().map(|&b| Value::Bool(b)).collect()),
        ),
        (
            "answered",
            Value::Arr(e.answered.iter().map(|&n| num(n)).collect()),
        ),
        ("warm_calls_since_full", num(e.warm_calls_since_full)),
        ("calls", hex_u64(e.calls)),
    ])
}

fn dec_engine(v: &Value) -> Result<EngineSnapshot> {
    Ok(EngineSnapshot {
        last: dec_result(field(v, "last")?)?,
        answer_counts: arr_usize(v, "answer_counts")?,
        total_answers: get_usize(v, "total_answers")?,
        moved: get_arr(v, "moved")?
            .iter()
            .map(|b| match b {
                Value::Bool(b) => Ok(*b),
                _ => Err(corrupt("moved: non-bool element")),
            })
            .collect::<Result<_>>()?,
        answered: arr_usize(v, "answered")?,
        warm_calls_since_full: get_usize(v, "warm_calls_since_full")?,
        calls: get_hex_u64(v, "calls")?,
    })
}

fn enc_quarantine_status(s: QuarantineStatus) -> Value {
    match s {
        QuarantineStatus::Active => Value::Str("active".into()),
        QuarantineStatus::Quarantined {
            until_refresh,
            answers_at_entry,
        } => obj([
            ("s", Value::Str("quarantined".into())),
            ("until", num(until_refresh)),
            ("answers", num(answers_at_entry)),
        ]),
        QuarantineStatus::Probation { answers_at_entry } => obj([
            ("s", Value::Str("probation".into())),
            ("answers", num(answers_at_entry)),
        ]),
    }
}

fn dec_quarantine_status(v: &Value) -> Result<QuarantineStatus> {
    match v {
        Value::Str(s) if s == "active" => Ok(QuarantineStatus::Active),
        Value::Obj(_) => match get_str(v, "s")? {
            "quarantined" => Ok(QuarantineStatus::Quarantined {
                until_refresh: get_usize(v, "until")?,
                answers_at_entry: get_usize(v, "answers")?,
            }),
            "probation" => Ok(QuarantineStatus::Probation {
                answers_at_entry: get_usize(v, "answers")?,
            }),
            other => Err(corrupt(format!("unknown quarantine status {other:?}"))),
        },
        _ => Err(corrupt("quarantine status is neither a string nor object")),
    }
}

/// Encode an agent core's complete learning state.
pub fn enc_core(c: &CoreState) -> Value {
    obj([
        ("classifier", enc_classifier(&c.classifier)),
        ("agent", enc_agent(&c.agent)),
        (
            "labelled",
            Value::Arr(c.labelled.iter().map(|&l| enc_label_state(l)).collect()),
        ),
        ("qualities", f64s(&c.qualities)),
        (
            "prev_confidence",
            Value::Arr(
                c.prev_confidence
                    .iter()
                    .map(|p| opt(*p, bits_f64))
                    .collect(),
            ),
        ),
        (
            "outstanding",
            Value::Arr(c.outstanding.iter().map(enc_pending).collect()),
        ),
        ("trace", Value::Arr(c.trace.iter().map(enc_stats).collect())),
        ("trust_agree", bits_f64(c.trust_agree)),
        ("trust_scored", bits_f64(c.trust_scored)),
        ("phi_trust", bits_f64(c.phi_trust)),
        ("fixed_allowance", opt(c.fixed_allowance, bits_f64)),
        ("last_spent", bits_f64(c.last_spent)),
        ("refresh_index", num(c.refresh_index)),
        ("engine", opt(c.engine.as_ref(), enc_engine)),
        (
            "rng",
            Value::Arr(c.rng.iter().map(|&w| hex_u64(w)).collect()),
        ),
        (
            "quarantine",
            Value::Arr(
                c.quarantine
                    .iter()
                    .map(|&s| enc_quarantine_status(s))
                    .collect(),
            ),
        ),
    ])
}

/// Decode an agent core's complete learning state.
pub fn dec_core(v: &Value) -> Result<CoreState> {
    let prev_confidence = get_arr(v, "prev_confidence")?
        .iter()
        .map(|p| match p {
            Value::Null => Ok(None),
            Value::Str(s) => Ok(Some(f64::from_bits(parse_hex_u64(s, "prev_confidence")?))),
            _ => Err(corrupt("prev_confidence: bad element")),
        })
        .collect::<Result<Vec<_>>>()?;
    let fixed_allowance = match field(v, "fixed_allowance")? {
        Value::Null => None,
        Value::Str(s) => Some(f64::from_bits(parse_hex_u64(s, "fixed_allowance")?)),
        _ => return Err(corrupt("fixed_allowance: bad value")),
    };
    let engine = match field(v, "engine")? {
        Value::Null => None,
        e => Some(dec_engine(e)?),
    };
    let rng_words = get_arr(v, "rng")?
        .iter()
        .map(|w| {
            parse_hex_u64(
                w.as_str().ok_or_else(|| corrupt("rng: non-string word"))?,
                "rng",
            )
        })
        .collect::<Result<Vec<_>>>()?;
    let rng: [u64; 4] = rng_words
        .try_into()
        .map_err(|_| corrupt("rng: expected exactly 4 words"))?;
    Ok(CoreState {
        classifier: dec_classifier(field(v, "classifier")?)?,
        agent: dec_agent(field(v, "agent")?)?,
        labelled: get_arr(v, "labelled")?
            .iter()
            .map(dec_label_state)
            .collect::<Result<_>>()?,
        qualities: get_f64s(v, "qualities")?,
        prev_confidence,
        outstanding: get_arr(v, "outstanding")?
            .iter()
            .map(dec_pending)
            .collect::<Result<_>>()?,
        trace: get_arr(v, "trace")?
            .iter()
            .map(dec_stats)
            .collect::<Result<_>>()?,
        trust_agree: get_f64_bits(v, "trust_agree")?,
        trust_scored: get_f64_bits(v, "trust_scored")?,
        phi_trust: get_f64_bits(v, "phi_trust")?,
        fixed_allowance,
        last_spent: get_f64_bits(v, "last_spent")?,
        refresh_index: get_usize(v, "refresh_index")?,
        engine,
        rng,
        quarantine: get_arr(v, "quarantine")?
            .iter()
            .map(dec_quarantine_status)
            .collect::<Result<_>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    fn sample_checkpoint() -> RunCheckpoint {
        let mut answers = AnswerSet::new(3);
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(1),
                label: ClassId(1),
            })
            .unwrap();
        answers
            .record(Answer {
                object: ObjectId(2),
                annotator: AnnotatorId(0),
                label: ClassId(0),
            })
            .unwrap();
        let pump = PumpCheckpoint {
            now: t(4.5),
            next_seq: 7,
            events: vec![
                Event {
                    at: t(5.0),
                    seq: 3,
                    kind: EventKind::Deliver(AssignmentId(1)),
                },
                Event {
                    at: t(6.0),
                    seq: 5,
                    kind: EventKind::Expire(AssignmentId(1)),
                },
            ],
            records: vec![AssignmentRecord {
                id: AssignmentId(0),
                object: ObjectId(0),
                annotator: AnnotatorId(1),
                cost: 1.25,
                dispatched_at: t(0.0),
                deadline: t(8.0),
                status: AssignmentStatus::Delivered,
            }],
            budget_total: 100.0,
            budget_spent: 0.1 + 0.2, // deliberately not 0.3 exactly
            budget_charges: 2,
            answers,
            latencies: vec![1.5, f64::MIN_POSITIVE],
            dispatched: 4,
            delivered: 2,
            rejected: 1,
            timeouts: 1,
            requeues: 1,
            refreshes: 2,
            events_processed: 9,
            trace: vec![
                TraceEvent::Dispatched {
                    at: t(0.0),
                    id: AssignmentId(0),
                    object: ObjectId(0),
                    annotator: AnnotatorId(1),
                },
                TraceEvent::Refreshed {
                    at: t(4.0),
                    answers: 2,
                    labelled: 1,
                },
                TraceEvent::Quarantined {
                    at: t(4.0),
                    annotator: AnnotatorId(2),
                },
            ],
            labels_by_id: vec![Some(ClassId(1)), None],
            requeue_count: vec![0, 2, 0],
            abandoned: vec![ObjectId(1)],
            backoff_until: vec![0.0, 9.5, 0.0],
            answers_since: 1,
            last_refresh: t(4.0),
        };
        let core = CoreState {
            classifier: ClassifierSnapshot {
                params: vec![0.5, -1.25, f32::EPSILON],
                opt_state: vec![(vec![0.1, 0.2], vec![0.3, 0.4], 11)],
                trained: true,
                generation: 3,
            },
            agent: AgentState {
                dqn: DqnSnapshot {
                    online: vec![1.0, 2.0],
                    target: vec![1.0, 2.5],
                    opt_state: vec![],
                    replay: vec![Transition {
                        state_action: vec![0.25],
                        reward: -0.5,
                        next_candidates: vec![vec![1.0], vec![2.0]].into(),
                        terminal: false,
                    }],
                    replay_head: 1,
                    replay_pushed: 1,
                    train_steps: 5,
                },
                ucb_counts: Some(vec![(3, 1), (0, 0)]),
                eps_steps: None,
            },
            labelled: vec![
                LabelState::Inferred(ClassId(1)),
                LabelState::Unlabelled,
                LabelState::Enriched(ClassId(0)),
            ],
            qualities: vec![0.9, 0.4],
            prev_confidence: vec![Some(0.75), None, Some(0.5)],
            outstanding: vec![PendingBatchState {
                assignments: vec![Assignment {
                    object: ObjectId(2),
                    annotators: vec![AnnotatorId(0), AnnotatorId(1)],
                    embeddings: vec![vec![0.1, 0.2], vec![0.3, 0.4]],
                }],
                conf_before: vec![(ObjectId(2), 0.33)],
                phi_guesses: vec![(ObjectId(2), 1)],
            }],
            trace: vec![IterationStats {
                iteration: 0,
                enriched: 1,
                selected: 2,
                answers: 2,
                spend: 2.5,
                reward: -0.125,
                labelled_total: 1,
                td_loss: Some(0.01),
            }],
            trust_agree: 1.0,
            trust_scored: 2.0,
            phi_trust: 0.5,
            fixed_allowance: None,
            last_spent: 0.3,
            refresh_index: 2,
            engine: Some(EngineSnapshot {
                last: InferenceResult {
                    posteriors: vec![Some(vec![0.9, 0.1]), None, Some(vec![0.2, 0.8])],
                    confusions: vec![
                        ConfusionMatrix::from_rows(&[vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap(),
                    ],
                    class_prior: vec![0.6, 0.4],
                    iterations: 7,
                    log_likelihood: f64::NAN, // must survive the round trip
                },
                answer_counts: vec![1, 0, 1],
                total_answers: 2,
                moved: vec![true, false, true],
                answered: vec![0, 2],
                warm_calls_since_full: 1,
                calls: 4,
            }),
            rng: [u64::MAX, 0, 0xDEAD_BEEF, 42],
            quarantine: vec![
                QuarantineStatus::Active,
                QuarantineStatus::Quarantined {
                    until_refresh: 6,
                    answers_at_entry: 12,
                },
                QuarantineStatus::Probation {
                    answers_at_entry: 9,
                },
            ],
        };
        RunCheckpoint {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            objects: 3,
            annotators: 3,
            pump,
            core,
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let ck = sample_checkpoint();
        let text = RunCheckpoint::decode(&ck.encode()).unwrap().encode();
        // Deterministic rendering makes byte equality the strongest
        // round-trip check available without Eq on every nested type.
        assert_eq!(text, ck.encode());
        let back = RunCheckpoint::decode(&text).unwrap();
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(
            back.pump.budget_spent.to_bits(),
            ck.pump.budget_spent.to_bits()
        );
        assert_eq!(back.pump.trace, ck.pump.trace);
        assert_eq!(back.core.rng, ck.core.rng);
        let engine = back.core.engine.unwrap();
        assert!(engine.last.log_likelihood.is_nan());
        assert_eq!(
            engine.last.posteriors,
            ck.core.engine.as_ref().unwrap().last.posteriors
        );
    }

    #[test]
    fn rejects_corruption() {
        let ck = sample_checkpoint();
        let text = ck.encode();
        assert!(RunCheckpoint::decode("not json").is_err());
        assert!(RunCheckpoint::decode("{}").is_err());
        let wrong_version = text.replacen("\"version\":1", "\"version\":99", 1);
        assert!(RunCheckpoint::decode(&wrong_version).is_err());
        // Truncating a hex blob breaks the fixed-width invariant.
        let truncated = text.replacen("3ff8000000000000", "3ff800000000000", 1);
        assert!(RunCheckpoint::decode(&truncated).is_err());
    }
}
