//! # crowdrl-serve
//!
//! A discrete-event **asynchronous labelling runtime** for CrowdRL.
//!
//! The batch workflow ([`CrowdRl::run`]) pretends annotators answer
//! instantly: ask a panel, get the answers, infer, repeat. A deployed
//! labelling service gets none of that — answers arrive minutes apart,
//! some never arrive, and the budget must survive all of it. This crate
//! replays CrowdRL's decision loop on top of that reality:
//!
//! * a deterministic **discrete-event scheduler** ([`clock`], [`event`])
//!   driven by per-annotator latency/availability models from
//!   `crowdrl-sim`;
//! * an **in-flight assignment ledger** ([`ledger`]) with configurable
//!   timeouts, requeue-on-expiry, duplicate-answer rejection, and
//!   reservation-based exactly-once budget charging;
//! * **incremental answer ingestion** that refreshes truth inference on
//!   watermarks — every *k* delivered answers or *t* simulated time
//!   units ([`config`], [`runtime`]);
//! * two execution modes ([`ExecMode`]): single-threaded, and a
//!   crossbeam **worker pool** (response sampling) plus a dedicated
//!   **agent thread** (inference + DQN) that overlap training with event
//!   pumping — both produce identical traces by construction;
//! * a [`ServiceMetrics`] report: answer throughput, latency
//!   p50/p95/p99, timeout/requeue counts, budget burn rate.
//!
//! Entry points: [`AsyncRuntime::run`], or the [`RunAsync`] extension
//! trait that bolts `run_async` onto [`CrowdRl`]:
//!
//! ```
//! use crowdrl_core::{CrowdRl, CrowdRlConfig};
//! use crowdrl_serve::{RunAsync, ServeConfig};
//! use crowdrl_sim::{DatasetSpec, PoolSpec};
//! use crowdrl_types::rng::seeded;
//!
//! let mut rng = seeded(7);
//! let dataset = DatasetSpec::gaussian("demo", 40, 3, 2)
//!     .with_separation(3.0)
//!     .generate(&mut rng)
//!     .unwrap();
//! let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
//! let crowdrl = CrowdRl::new(CrowdRlConfig::builder().budget(120.0).build().unwrap());
//! let result = crowdrl
//!     .run_async(&dataset, &pool, &ServeConfig::default(), &mut rng)
//!     .unwrap();
//! assert!(result.outcome.coverage() > 0.0);
//! println!("{}", result.metrics);
//! ```
//!
//! The trait lives here rather than in `crowdrl-core` because the
//! dependency points this way (serve builds on core); re-exported from
//! the `crowdrl` facade it reads as part of the same API.
//!
//! [`CrowdRl`]: crowdrl_core::CrowdRl
//! [`CrowdRl::run`]: crowdrl_core::CrowdRl::run

pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod core_loop;
pub mod error;
pub mod event;
pub mod ledger;
pub mod metrics;
pub mod runtime;
pub mod sampler;
pub mod supervisor;

pub use checkpoint::{PumpCheckpoint, RunCheckpoint};
pub use clock::EventQueue;
pub use config::{ExecMode, ServeConfig};
pub use error::ServeError;
pub use event::{Event, EventKind, TraceEvent};
pub use ledger::{
    AccountBook, AccountState, AssignmentLedger, AssignmentRecord, AssignmentStatus, Delivery,
    Expiry,
};
pub use metrics::{MetricsCollector, ServiceMetrics};
pub use runtime::{AsyncOutcome, AsyncRuntime, CheckpointSink, RunControl, RunOutcome};
pub use supervisor::{
    DegradedMode, Quarantine, QuarantineConfig, QuarantineEvent, QuarantineStatus, SupervisorConfig,
};

use crowdrl_core::CrowdRl;
use crowdrl_sim::AnnotatorPool;
use crowdrl_types::{Dataset, Result};
use rand::Rng;

/// Extension trait: run a configured [`CrowdRl`] through the
/// asynchronous runtime instead of the batch loop.
pub trait RunAsync {
    /// Label `dataset` asynchronously. Same dataset, pool and budget as
    /// [`CrowdRl::run`](crowdrl_core::CrowdRl::run); the outcome is
    /// directly comparable.
    fn run_async<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        serve: &ServeConfig,
        rng: &mut R,
    ) -> Result<AsyncOutcome>;
}

impl RunAsync for CrowdRl {
    fn run_async<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        serve: &ServeConfig,
        rng: &mut R,
    ) -> Result<AsyncOutcome> {
        AsyncRuntime::new(self.config().clone(), serve.clone()).run(dataset, pool, rng)
    }
}
