//! Service-level metrics for one asynchronous labelling run.
//!
//! Two clocks matter and they are different things: the *simulated* clock
//! (annotator latencies, timeouts — what the labelling service would
//! experience) and the *wall* clock (how fast this process pumps events —
//! what a capacity planner cares about). The report keeps them separate:
//! answer throughput and latency percentiles are simulated-time, event
//! throughput is wall-time.

use crowdrl_obs as obs;
use crowdrl_types::SimTime;
use std::fmt;

/// Nearest-rank percentile over an ascending-sorted sample slice.
///
/// The edge cases are explicit and tested:
/// * an **empty** slice has no samples — every percentile reports `0.0`;
/// * `p <= 0` is the **minimum**: nearest-rank has no rank below 1, so p0
///   clamps to the first sample (this is the conventional p0 = min);
/// * `p >= 100` is the **maximum** (rank `n`);
/// * otherwise the value at rank `⌈p/100 · n⌉`, clamped into `[1, n]` —
///   which means a **single-sample** slice returns that sample for *every*
///   percentile (p0 == p50 == p100 == the sample).
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    // Negative products saturate to 0 on the `as usize` cast; the clamp
    // then lifts them to rank 1 (the minimum).
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Accumulates raw observations during the run; [`MetricsCollector::finish`]
/// turns them into a [`ServiceMetrics`] report.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    /// Delivered-answer latencies, simulated time units, arrival order.
    pub latencies: Vec<f64>,
    /// Questions dispatched.
    pub dispatched: usize,
    /// Answers delivered, recorded and charged.
    pub delivered: usize,
    /// Answers rejected (late after expiry, or duplicate).
    pub rejected: usize,
    /// Assignments that timed out.
    pub timeouts: usize,
    /// Objects put back into the candidate pool after a timeout.
    pub requeues: usize,
    /// Truth-inference refreshes run.
    pub refreshes: usize,
    /// Events processed by the pump.
    pub events: usize,
}

impl MetricsCollector {
    /// Fresh, all-zero collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finalize into a report.
    ///
    /// `sim_duration` is the clock reading when the queue drained,
    /// `wall_seconds` the measured pump time, `budget_spent` the real
    /// charges.
    pub fn finish(
        mut self,
        sim_duration: SimTime,
        wall_seconds: f64,
        budget_spent: f64,
    ) -> ServiceMetrics {
        self.latencies.sort_by(f64::total_cmp);
        let pct = |p: f64| nearest_rank(&self.latencies, p);
        let sim = sim_duration.as_f64();
        ServiceMetrics {
            dispatched: self.dispatched,
            answers_delivered: self.delivered,
            answers_rejected: self.rejected,
            timeouts: self.timeouts,
            requeues: self.requeues,
            refreshes: self.refreshes,
            events_processed: self.events,
            sim_duration,
            wall_seconds,
            latency_p50: pct(50.0),
            latency_p95: pct(95.0),
            latency_p99: pct(99.0),
            answers_per_time_unit: if sim > 0.0 {
                self.delivered as f64 / sim
            } else {
                0.0
            },
            events_per_second: if wall_seconds > 0.0 {
                self.events as f64 / wall_seconds
            } else {
                0.0
            },
            budget_spent,
            budget_burn_rate: if sim > 0.0 { budget_spent / sim } else { 0.0 },
        }
    }
}

/// The service report for one asynchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Questions dispatched to annotators.
    pub dispatched: usize,
    /// Answers delivered in time, recorded and charged.
    pub answers_delivered: usize,
    /// Answers rejected (late or duplicate) — received but never charged.
    pub answers_rejected: usize,
    /// Assignments whose timeout fired before the answer arrived.
    pub timeouts: usize,
    /// Objects returned to the candidate pool after a timeout.
    pub requeues: usize,
    /// Truth-inference refreshes triggered by the watermarks.
    pub refreshes: usize,
    /// Events the pump processed.
    pub events_processed: usize,
    /// Final simulated-clock reading.
    pub sim_duration: SimTime,
    /// Wall-clock seconds spent pumping events.
    pub wall_seconds: f64,
    /// Median delivered-answer latency, simulated time units.
    pub latency_p50: f64,
    /// 95th-percentile latency.
    pub latency_p95: f64,
    /// 99th-percentile latency.
    pub latency_p99: f64,
    /// Delivered answers per simulated time unit.
    pub answers_per_time_unit: f64,
    /// Pump throughput, events per wall-clock second.
    pub events_per_second: f64,
    /// Budget units actually charged.
    pub budget_spent: f64,
    /// Budget units charged per simulated time unit.
    pub budget_burn_rate: f64,
}

impl ServiceMetrics {
    /// Bridge this report into the `crowdrl-obs` trace stream: the
    /// service counters become trace counters and the rates/percentiles
    /// become gauges, so `crowdrl-trace` shows batch and async runs in
    /// one place. No-op unless a recorder is installed.
    pub fn emit_trace(&self) {
        self.emit_trace_scoped("");
    }

    /// [`emit_trace`](Self::emit_trace) with every metric name prefixed
    /// by `scope` (e.g. `project.3.`). The multi-tenant service emits one
    /// scoped report per project so concurrent runs' counters and gauges
    /// do not collide in a single trace file.
    pub fn emit_trace_scoped(&self, scope: &str) {
        if !obs::enabled() {
            return;
        }
        let counter = |name: &str, v: u64| obs::counter_add(&format!("{scope}{name}"), v);
        let gauge = |name: &str, v: f64| obs::gauge(&format!("{scope}{name}"), v);
        counter("serve.dispatched", self.dispatched as u64);
        counter("serve.answers_delivered", self.answers_delivered as u64);
        counter("serve.answers_rejected", self.answers_rejected as u64);
        counter("serve.timeouts", self.timeouts as u64);
        counter("serve.requeues", self.requeues as u64);
        counter("serve.refreshes", self.refreshes as u64);
        counter("serve.events_processed", self.events_processed as u64);
        // Latencies and the sim-duration gauge are simulated-time numbers;
        // wall_seconds and events_per_second are wall-clock. Gauge names
        // say which clock they belong to (`_tu` = simulated time units).
        gauge("serve.latency_p50_tu", self.latency_p50);
        gauge("serve.latency_p95_tu", self.latency_p95);
        gauge("serve.latency_p99_tu", self.latency_p99);
        gauge("serve.answers_per_tu", self.answers_per_time_unit);
        gauge("serve.events_per_second", self.events_per_second);
        gauge("serve.sim_duration_tu", self.sim_duration.as_f64());
        gauge("serve.wall_seconds", self.wall_seconds);
        gauge("serve.budget_spent", self.budget_spent);
        gauge("serve.budget_burn_rate", self.budget_burn_rate);
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "service metrics")?;
        writeln!(
            f,
            "  dispatched {}  delivered {}  rejected {}  timeouts {}  requeues {}",
            self.dispatched,
            self.answers_delivered,
            self.answers_rejected,
            self.timeouts,
            self.requeues
        )?;
        writeln!(
            f,
            "  refreshes {}  events {}  sim time {}  wall {:.3}s",
            self.refreshes, self.events_processed, self.sim_duration, self.wall_seconds
        )?;
        writeln!(
            f,
            "  latency p50/p95/p99  {:.2}/{:.2}/{:.2} tu",
            self.latency_p50, self.latency_p95, self.latency_p99
        )?;
        writeln!(
            f,
            "  throughput  {:.3} answers/tu  {:.0} events/s",
            self.answers_per_time_unit, self.events_per_second
        )?;
        write!(
            f,
            "  budget  {:.2} spent  {:.4} burn/tu",
            self.budget_spent, self.budget_burn_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut c = MetricsCollector::new();
        c.latencies = (1..=100).map(|i| i as f64).collect();
        c.delivered = 100;
        c.events = 200;
        let m = c.finish(SimTime::new(50.0).unwrap(), 2.0, 25.0);
        assert_eq!(m.latency_p50, 50.0);
        assert_eq!(m.latency_p95, 95.0);
        assert_eq!(m.latency_p99, 99.0);
        assert_eq!(m.answers_per_time_unit, 2.0);
        assert_eq!(m.events_per_second, 100.0);
        assert_eq!(m.budget_burn_rate, 0.5);
    }

    #[test]
    fn nearest_rank_empty_input_is_zero_for_all_percentiles() {
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(nearest_rank(&[], p), 0.0);
        }
    }

    #[test]
    fn nearest_rank_single_sample_is_that_sample_for_all_percentiles() {
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(nearest_rank(&[5.0], p), 5.0);
        }
    }

    #[test]
    fn nearest_rank_two_samples() {
        let sorted = [1.0, 2.0];
        // p0 is the minimum by definition (rank clamps to 1).
        assert_eq!(nearest_rank(&sorted, 0.0), 1.0);
        // p50 of two samples: ceil(0.5 * 2) = rank 1 → the lower sample.
        assert_eq!(nearest_rank(&sorted, 50.0), 1.0);
        // p100: rank 2 → the maximum.
        assert_eq!(nearest_rank(&sorted, 100.0), 2.0);
        // Anything above p50 needs rank 2 here.
        assert_eq!(nearest_rank(&sorted, 51.0), 2.0);
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let m = MetricsCollector::new().finish(SimTime::ZERO, 0.0, 0.0);
        assert_eq!(m.latency_p50, 0.0);
        assert_eq!(m.answers_per_time_unit, 0.0);
        assert_eq!(m.events_per_second, 0.0);
        // The Display form renders without panicking.
        assert!(m.to_string().contains("service metrics"));
    }
}
