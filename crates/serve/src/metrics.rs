//! Service-level metrics for one asynchronous labelling run.
//!
//! Two clocks matter and they are different things: the *simulated* clock
//! (annotator latencies, timeouts — what the labelling service would
//! experience) and the *wall* clock (how fast this process pumps events —
//! what a capacity planner cares about). The report keeps them separate:
//! answer throughput and latency percentiles are simulated-time, event
//! throughput is wall-time.

use crowdrl_types::SimTime;
use std::fmt;

/// Accumulates raw observations during the run; [`MetricsCollector::finish`]
/// turns them into a [`ServiceMetrics`] report.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    /// Delivered-answer latencies, simulated time units, arrival order.
    pub latencies: Vec<f64>,
    /// Questions dispatched.
    pub dispatched: usize,
    /// Answers delivered, recorded and charged.
    pub delivered: usize,
    /// Answers rejected (late after expiry, or duplicate).
    pub rejected: usize,
    /// Assignments that timed out.
    pub timeouts: usize,
    /// Objects put back into the candidate pool after a timeout.
    pub requeues: usize,
    /// Truth-inference refreshes run.
    pub refreshes: usize,
    /// Events processed by the pump.
    pub events: usize,
}

impl MetricsCollector {
    /// Fresh, all-zero collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finalize into a report.
    ///
    /// `sim_duration` is the clock reading when the queue drained,
    /// `wall_seconds` the measured pump time, `budget_spent` the real
    /// charges.
    pub fn finish(
        mut self,
        sim_duration: SimTime,
        wall_seconds: f64,
        budget_spent: f64,
    ) -> ServiceMetrics {
        self.latencies.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if self.latencies.is_empty() {
                return 0.0;
            }
            // Nearest-rank percentile.
            let rank = ((p / 100.0) * self.latencies.len() as f64).ceil() as usize;
            self.latencies[rank.clamp(1, self.latencies.len()) - 1]
        };
        let sim = sim_duration.as_f64();
        ServiceMetrics {
            dispatched: self.dispatched,
            answers_delivered: self.delivered,
            answers_rejected: self.rejected,
            timeouts: self.timeouts,
            requeues: self.requeues,
            refreshes: self.refreshes,
            events_processed: self.events,
            sim_duration,
            wall_seconds,
            latency_p50: pct(50.0),
            latency_p95: pct(95.0),
            latency_p99: pct(99.0),
            answers_per_time_unit: if sim > 0.0 {
                self.delivered as f64 / sim
            } else {
                0.0
            },
            events_per_second: if wall_seconds > 0.0 {
                self.events as f64 / wall_seconds
            } else {
                0.0
            },
            budget_spent,
            budget_burn_rate: if sim > 0.0 { budget_spent / sim } else { 0.0 },
        }
    }
}

/// The service report for one asynchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Questions dispatched to annotators.
    pub dispatched: usize,
    /// Answers delivered in time, recorded and charged.
    pub answers_delivered: usize,
    /// Answers rejected (late or duplicate) — received but never charged.
    pub answers_rejected: usize,
    /// Assignments whose timeout fired before the answer arrived.
    pub timeouts: usize,
    /// Objects returned to the candidate pool after a timeout.
    pub requeues: usize,
    /// Truth-inference refreshes triggered by the watermarks.
    pub refreshes: usize,
    /// Events the pump processed.
    pub events_processed: usize,
    /// Final simulated-clock reading.
    pub sim_duration: SimTime,
    /// Wall-clock seconds spent pumping events.
    pub wall_seconds: f64,
    /// Median delivered-answer latency, simulated time units.
    pub latency_p50: f64,
    /// 95th-percentile latency.
    pub latency_p95: f64,
    /// 99th-percentile latency.
    pub latency_p99: f64,
    /// Delivered answers per simulated time unit.
    pub answers_per_time_unit: f64,
    /// Pump throughput, events per wall-clock second.
    pub events_per_second: f64,
    /// Budget units actually charged.
    pub budget_spent: f64,
    /// Budget units charged per simulated time unit.
    pub budget_burn_rate: f64,
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "service metrics")?;
        writeln!(
            f,
            "  dispatched {}  delivered {}  rejected {}  timeouts {}  requeues {}",
            self.dispatched,
            self.answers_delivered,
            self.answers_rejected,
            self.timeouts,
            self.requeues
        )?;
        writeln!(
            f,
            "  refreshes {}  events {}  sim time {}  wall {:.3}s",
            self.refreshes, self.events_processed, self.sim_duration, self.wall_seconds
        )?;
        writeln!(
            f,
            "  latency p50/p95/p99  {:.2}/{:.2}/{:.2} tu",
            self.latency_p50, self.latency_p95, self.latency_p99
        )?;
        writeln!(
            f,
            "  throughput  {:.3} answers/tu  {:.0} events/s",
            self.answers_per_time_unit, self.events_per_second
        )?;
        write!(
            f,
            "  budget  {:.2} spent  {:.4} burn/tu",
            self.budget_spent, self.budget_burn_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut c = MetricsCollector::new();
        c.latencies = (1..=100).map(|i| i as f64).collect();
        c.delivered = 100;
        c.events = 200;
        let m = c.finish(SimTime::new(50.0).unwrap(), 2.0, 25.0);
        assert_eq!(m.latency_p50, 50.0);
        assert_eq!(m.latency_p95, 95.0);
        assert_eq!(m.latency_p99, 99.0);
        assert_eq!(m.answers_per_time_unit, 2.0);
        assert_eq!(m.events_per_second, 100.0);
        assert_eq!(m.budget_burn_rate, 0.5);
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let m = MetricsCollector::new().finish(SimTime::ZERO, 0.0, 0.0);
        assert_eq!(m.latency_p50, 0.0);
        assert_eq!(m.answers_per_time_unit, 0.0);
        assert_eq!(m.events_per_second, 0.0);
        // The Display form renders without panicking.
        assert!(m.to_string().contains("service metrics"));
    }
}
