//! Configuration of the asynchronous runtime.

use crate::supervisor::{QuarantineConfig, SupervisorConfig};
use crowdrl_sim::{DynamicsSpec, FaultPlan};
use crowdrl_types::{Error, Result};

/// How the runtime executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Everything on the calling thread — the reference execution. The
    /// worker-pool mode must reproduce its trace bit for bit.
    SingleThread,
    /// A crossbeam worker pool samples annotator responses and a
    /// dedicated agent thread runs inference/scoring, overlapping DQN
    /// training with event pumping.
    WorkerPool {
        /// Sampler threads (0 = available parallelism).
        workers: usize,
    },
}

/// Knobs of the asynchronous labelling service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated time units before a dispatched question expires and its
    /// reservation is released.
    pub timeout: f64,
    /// Answer watermark: refresh truth inference after this many newly
    /// delivered answers.
    pub answer_watermark: usize,
    /// Time watermark: refresh after this much simulated time since the
    /// last refresh, even if the answer watermark was not reached
    /// (checked after each processed event).
    pub time_watermark: f64,
    /// How many timeouts an object may accumulate before the service
    /// abandons it to the classifier fallback.
    pub max_requeues: usize,
    /// Execution mode.
    pub mode: ExecMode,
    /// Annotator latency/availability models (per-tier means; per-
    /// annotator dynamics are generated from the run's RNG).
    pub dynamics: DynamicsSpec,
    /// Seed of the per-assignment sampling streams. Response label,
    /// latency and availability of assignment `i` are drawn from a stream
    /// derived from `(sampling_seed, i)`, which is what makes the
    /// worker-pool trace identical to the single-threaded one.
    pub sampling_seed: u64,
    /// Deterministic fault injection applied to sampled outcomes
    /// (no-shows, abandonment, stragglers, outages, duplicates, drift).
    /// The default plan injects nothing.
    pub faults: FaultPlan,
    /// Retry/backoff policy for timed-out assignments. Backoff is off by
    /// default.
    pub supervisor: SupervisorConfig,
    /// Annotator circuit-breaker policy. Off by default.
    pub quarantine: QuarantineConfig,
    /// Take a crash-consistent checkpoint every this many truth-inference
    /// refreshes; `0` (the default) never checkpoints.
    pub checkpoint_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            timeout: 60.0,
            answer_watermark: 12,
            time_watermark: 25.0,
            max_requeues: 3,
            mode: ExecMode::SingleThread,
            dynamics: DynamicsSpec::default(),
            sampling_seed: 0x5EED_CAFE,
            faults: FaultPlan::default(),
            supervisor: SupervisorConfig::default(),
            quarantine: QuarantineConfig::default(),
            checkpoint_every: 0,
        }
    }
}

impl ServeConfig {
    /// Validate the knobs.
    pub fn validate(&self) -> Result<()> {
        if !self.timeout.is_finite() || self.timeout <= 0.0 {
            return Err(Error::InvalidParameter(format!(
                "timeout must be positive, got {}",
                self.timeout
            )));
        }
        if self.answer_watermark == 0 {
            return Err(Error::InvalidParameter(
                "answer_watermark must be at least 1".into(),
            ));
        }
        if !self.time_watermark.is_finite() || self.time_watermark <= 0.0 {
            return Err(Error::InvalidParameter(format!(
                "time_watermark must be positive, got {}",
                self.time_watermark
            )));
        }
        self.faults.validate()?;
        self.supervisor.validate()?;
        self.quarantine.validate()?;
        Ok(())
    }

    /// Set the execution mode (builder-style).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the timeout (builder-style).
    pub fn with_timeout(mut self, timeout: f64) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the watermarks (builder-style).
    pub fn with_watermarks(mut self, answers: usize, time: f64) -> Self {
        self.answer_watermark = answers;
        self.time_watermark = time;
        self
    }

    /// Set the fault plan (builder-style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the supervisor policy (builder-style).
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Set the quarantine policy (builder-style).
    pub fn with_quarantine(mut self, quarantine: QuarantineConfig) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Set the checkpoint cadence (builder-style).
    pub fn with_checkpoint_every(mut self, refreshes: usize) -> Self {
        self.checkpoint_every = refreshes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_knobs_are_rejected() {
        assert!(ServeConfig {
            timeout: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            answer_watermark: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            time_watermark: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn nested_policies_are_validated() {
        let faults = FaultPlan {
            no_show_rate: 2.0,
            ..FaultPlan::default()
        };
        assert!(ServeConfig::default()
            .with_faults(faults)
            .validate()
            .is_err());
        let sup = SupervisorConfig {
            backoff_base: f64::NAN,
            ..SupervisorConfig::default()
        };
        assert!(ServeConfig::default()
            .with_supervisor(sup)
            .validate()
            .is_err());
        let quar = QuarantineConfig {
            score_threshold: -0.1,
            ..QuarantineConfig::default()
        };
        assert!(ServeConfig::default()
            .with_quarantine(quar)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_helpers_set_fields() {
        let c = ServeConfig::default()
            .with_mode(ExecMode::WorkerPool { workers: 4 })
            .with_timeout(30.0)
            .with_watermarks(5, 10.0);
        assert_eq!(c.mode, ExecMode::WorkerPool { workers: 4 });
        assert_eq!(c.timeout, 30.0);
        assert_eq!(c.answer_watermark, 5);
        assert_eq!(c.time_watermark, 10.0);
    }
}
