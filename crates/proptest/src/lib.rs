//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace ships a
//! compact property-testing engine covering the `proptest 1.x` surface the
//! CrowdRL crates use: the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), [`prop_assert!`] / [`prop_assert_eq!`],
//! range strategies over the numeric types, [`collection::vec`],
//! [`option::of`], [`bool::ANY`], and tuple strategies.
//!
//! Differences from upstream, deliberate for a zero-dependency build:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (they are reproducible: cases derive deterministically from the test's
//!   name and case index), but is not minimized.
//! * **No persistence.** `.proptest-regressions` files are ignored.

use std::fmt;

/// Runner configuration, selected via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A failed property case; produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-case generator (SplitMix64-seeded xoshiro256++),
/// derived from the property's name and the case index so every case is
/// reproducible in isolation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Generates values of an input domain. The stand-in keeps only the
/// generation half of proptest's trait — no shrink trees.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_strategies!(f64, f32);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: an exact `usize`, a
    /// half-open range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Lower and *inclusive* upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_len - self.min_len) as u64;
            let len = self.min_len
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Fair-coin boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body; on failure the case (with
/// its generated inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(__name, __case);
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        __name, __case, __config.cases, err, __inputs
                    );
                }
            }
        }
        $crate::__proptest_each! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_are_reproducible() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::new_value(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_spec() {
        let mut rng = crate::TestRng::for_case("lens", 0);
        for _ in 0..200 {
            let v = Strategy::new_value(&crate::collection::vec(0usize..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let fixed = Strategy::new_value(&crate::collection::vec(0usize..5, 3), &mut rng);
            assert_eq!(fixed.len(), 3);
        }
    }

    #[test]
    fn option_and_bool_strategies_cover_both_arms() {
        let mut rng = crate::TestRng::for_case("cover", 0);
        let (mut nones, mut trues) = (0, 0);
        for _ in 0..400 {
            if Strategy::new_value(&crate::option::of(0usize..3), &mut rng).is_none() {
                nones += 1;
            }
            if Strategy::new_value(&crate::bool::ANY, &mut rng) {
                trues += 1;
            }
        }
        assert!(nones > 20 && nones < 380);
        assert!(trues > 100 && trues < 300);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro itself: tuples, vecs and asserts all work.
        #[test]
        fn macro_generates_and_checks(
            pairs in crate::collection::vec((0usize..10, crate::bool::ANY), 0..16),
            x in 1u64..100,
        ) {
            prop_assert!(x >= 1);
            prop_assert!(x < 100, "x was {}", x);
            for (n, _flag) in &pairs {
                prop_assert!(*n < 10);
            }
            prop_assert_eq!(pairs.len(), pairs.iter().filter(|(n, _)| *n < 10).count());
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(v in 0usize..10) {
                prop_assert!(v > 100, "v is only {}", v);
            }
        }
        always_fails();
    }
}
