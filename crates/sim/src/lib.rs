//! # crowdrl-sim
//!
//! A crowdsourcing-platform simulator standing in for the parts of the
//! CrowdRL evaluation we cannot ship: the proprietary TAL speech datasets,
//! the Fashion 10000 image set, and the human annotators themselves.
//!
//! Three layers:
//!
//! * [`datasets`] — synthetic dataset generators. A generic class-conditional
//!   Gaussian generator plus presets mirroring the paper's three datasets
//!   (Speech12, Speech3, Fashion) in cardinality, feature-family structure
//!   (contextual/prosodic blocks with C / P / CP views) and relative
//!   hardness.
//! * [`annotators`] — annotator pools. Each annotator is a latent
//!   [`ConfusionMatrix`](crowdrl_types::ConfusionMatrix) (the paper's own
//!   model of annotator expertise); workers are sampled noisy, experts
//!   near-perfect, and costs follow the paper (workers 1 unit, experts 5–10).
//! * [`platform`] — the interaction boundary. Labelling algorithms hold a
//!   [`Platform`] and may only *ask* (object, annotator) questions through
//!   it; the platform charges the budget, samples the answer through the
//!   latent confusion matrix, and records it. Ground truth never crosses
//!   this boundary.
//! * [`faults`] — deterministic fault injection for chaos testing: a seeded
//!   [`FaultPlan`] of no-shows, abandonment, stragglers, platform outages,
//!   duplicate deliveries and mid-run annotator quality drift, applied to
//!   sampled outcomes by a stateless [`FaultInjector`].

pub mod annotators;
pub mod datasets;
pub mod faults;
pub mod latency;
pub mod platform;

pub use annotators::{AnnotatorPool, PoolSpec};
pub use datasets::{DatasetSpec, FashionSpec, SpeechSpec, SpeechViews};
pub use faults::{
    FaultInjector, FaultPlan, FaultRecord, InjectedOutcome, OutageWindow, ProjectAbort,
    ProjectOutage, ProjectPanic, QualityDrift, ServiceFaultPlan,
};
pub use latency::{AnnotatorDynamics, CapacitySpec, DynamicsSpec, LatencyModel};
pub use platform::Platform;
