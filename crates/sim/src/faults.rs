//! Deterministic fault injection for the asynchronous labelling runtime.
//!
//! Real crowdsourcing platforms fail in ways the happy-path latency model
//! never exercises: workers accept a task and vanish, abandon it halfway,
//! answer hours late, the platform itself goes down for a window, answers
//! arrive twice or out of order, and a worker who was good an hour ago
//! degrades into a spammer. A [`FaultPlan`] describes a seeded schedule of
//! such faults; a [`FaultInjector`] applies them to sampled annotator
//! outcomes *deterministically* — every fault decision is a pure function
//! of `(plan seed, assignment id)` plus the dispatch clock, so the injected
//! stream is bit-identical at any worker-pool width and across
//! checkpoint/restore boundaries without any injector state to persist.
//!
//! The injector transforms outcomes; it never touches the ledger or the
//! budget. The runtime's supervision layer (retry budgets, quarantine,
//! degraded modes) is what turns these injected faults into recoveries.

use crowdrl_types::rng::{derive_seed, seeded};
use crowdrl_types::{AnnotatorId, AssignmentId, ClassId, Error, Result, SimTime};
use rand::Rng;

/// A platform outage: answers that would arrive inside the window are held
/// and delivered at its end (the platform buffers, it does not lose).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// Window start, simulated time units (inclusive).
    pub start: f64,
    /// Window end, simulated time units (exclusive).
    pub end: f64,
}

impl OutageWindow {
    /// Validate bounds: finite, non-negative, `start < end`.
    pub fn validate(&self) -> Result<()> {
        if !self.start.is_finite() || !self.end.is_finite() || self.start < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "outage window bounds must be finite and non-negative, got [{}, {})",
                self.start, self.end
            )));
        }
        if self.start >= self.end {
            return Err(Error::InvalidParameter(format!(
                "outage window must have start < end, got [{}, {})",
                self.start, self.end
            )));
        }
        Ok(())
    }

    /// Whether an arrival at `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// A mid-run quality collapse: from `at` onward the annotator reports
/// uniformly random labels (a spammer), regardless of the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityDrift {
    /// The annotator that degrades.
    pub annotator: AnnotatorId,
    /// Simulated time at which the collapse starts.
    pub at: f64,
}

impl QualityDrift {
    /// Validate: onset must be finite and non-negative.
    pub fn validate(&self) -> Result<()> {
        if !self.at.is_finite() || self.at < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "drift onset must be finite and non-negative, got {}",
                self.at
            )));
        }
        Ok(())
    }
}

/// A seeded schedule of platform faults.
///
/// The default plan injects nothing, so wiring a `FaultPlan` through a
/// runtime config cannot perturb existing runs. Rates are per-assignment
/// probabilities; every draw comes from a stream keyed by the assignment
/// id, never from the run's main RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the sampling seed).
    pub seed: u64,
    /// Probability a dispatched assignment is silently never answered
    /// (on top of the annotator's modelled drop rate).
    pub no_show_rate: f64,
    /// Probability the annotator abandons mid-task: the answer exists but
    /// arrives only after the assignment's deadline, so the runtime sees a
    /// timeout followed by a late (rejected) delivery.
    pub abandon_rate: f64,
    /// Probability of a heavy-tail straggler response.
    pub straggler_rate: f64,
    /// Latency multiplier for stragglers (must be ≥ 1).
    pub straggler_factor: f64,
    /// Probability the platform delivers the same answer twice.
    pub duplicate_rate: f64,
    /// Delay of the duplicate copy after the original arrival (≥ 0).
    pub duplicate_delay: f64,
    /// Platform outage windows; arrivals inside a window are deferred to
    /// its end.
    pub outages: Vec<OutageWindow>,
    /// Scheduled per-annotator quality collapses.
    pub drifts: Vec<QualityDrift>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xFA_17,
            no_show_rate: 0.0,
            abandon_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 4.0,
            duplicate_rate: 0.0,
            duplicate_delay: 1.0,
            outages: Vec::new(),
            drifts: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True when this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.no_show_rate == 0.0
            && self.abandon_rate == 0.0
            && self.straggler_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.outages.is_empty()
            && self.drifts.is_empty()
    }

    /// Validate every rate, factor, window and drift; degenerate plans
    /// (NaN rates, inverted windows, sub-unit straggler factors) are
    /// rejected with a description of the offending field.
    pub fn validate(&self) -> Result<()> {
        for (name, rate) in [
            ("no_show_rate", self.no_show_rate),
            ("abandon_rate", self.abandon_rate),
            ("straggler_rate", self.straggler_rate),
            ("duplicate_rate", self.duplicate_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(Error::InvalidParameter(format!(
                    "fault plan {name} must be in [0,1], got {rate}"
                )));
            }
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(Error::InvalidParameter(format!(
                "straggler_factor must be finite and >= 1, got {}",
                self.straggler_factor
            )));
        }
        if !self.duplicate_delay.is_finite() || self.duplicate_delay < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "duplicate_delay must be finite and non-negative, got {}",
                self.duplicate_delay
            )));
        }
        for w in &self.outages {
            w.validate()?;
        }
        for d in &self.drifts {
            d.validate()?;
        }
        Ok(())
    }
}

/// A platform outage scoped to one tenant of the multi-tenant service:
/// only the named project's arrivals are buffered through the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectOutage {
    /// Submission index of the affected project.
    pub project: usize,
    /// The outage window, in service simulated time.
    pub window: OutageWindow,
}

/// A scheduled mid-run project kill: at service time `at` the project is
/// failed (its reservations released, its broker evidence withdrawn) as
/// if its owner had pulled the plug.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectAbort {
    /// Submission index of the project to abort.
    pub project: usize,
    /// Service simulated time of the abort.
    pub at: f64,
}

/// A scheduled panic inside one project's shard advancement — the
/// deterministic stand-in for a poisoned tenant whose decision loop
/// blows up. The service must contain it to that project.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectPanic {
    /// Submission index of the project whose shard panics.
    pub project: usize,
    /// The panic fires in the first scheduling round whose horizon
    /// passes this service simulated time.
    pub at: f64,
}

/// Service-level fault schedule for the multi-tenant runtime: faults
/// scoped to individual tenants rather than to assignments. The default
/// plan injects nothing, so wiring it through a service config cannot
/// perturb existing runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceFaultPlan {
    /// Project-scoped outage windows.
    pub outages: Vec<ProjectOutage>,
    /// Scheduled mid-run project aborts.
    pub aborts: Vec<ProjectAbort>,
    /// Scheduled per-project shard panics.
    pub panics: Vec<ProjectPanic>,
}

impl ServiceFaultPlan {
    /// True when this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.outages.is_empty() && self.aborts.is_empty() && self.panics.is_empty()
    }

    /// Validate every window and schedule entry.
    pub fn validate(&self) -> Result<()> {
        for o in &self.outages {
            o.window.validate()?;
        }
        for (what, at) in self
            .aborts
            .iter()
            .map(|a| ("abort", a.at))
            .chain(self.panics.iter().map(|p| ("panic", p.at)))
        {
            if !at.is_finite() || at < 0.0 {
                return Err(Error::InvalidParameter(format!(
                    "service fault {what} time must be finite and non-negative, got {at}"
                )));
            }
        }
        Ok(())
    }

    /// Push an arrival at `t` for `project` past every one of that
    /// project's outage windows (fixed point — windows may chain).
    pub fn defer(&self, project: usize, mut t: f64) -> f64 {
        loop {
            let mut moved = false;
            for o in &self.outages {
                if o.project == project && o.window.contains(t) {
                    t = o.window.end;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The earliest scheduled abort for `project`, if any.
    pub fn abort_at(&self, project: usize) -> Option<f64> {
        self.aborts
            .iter()
            .filter(|a| a.project == project)
            .map(|a| a.at)
            .min_by(f64::total_cmp)
    }

    /// The earliest scheduled panic for `project`, if any.
    pub fn panic_at(&self, project: usize) -> Option<f64> {
        self.panics
            .iter()
            .filter(|p| p.project == project)
            .map(|p| p.at)
            .min_by(f64::total_cmp)
    }
}

/// Which faults were injected into one assignment — the runtime feeds
/// these into its `fault.injected.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRecord {
    /// The answer was suppressed entirely.
    pub no_show: bool,
    /// The answer was delayed past the assignment deadline.
    pub abandoned: bool,
    /// The latency was multiplied by the straggler factor.
    pub straggler: bool,
    /// The arrival was deferred by an outage window.
    pub outage: bool,
    /// A duplicate delivery was scheduled.
    pub duplicate: bool,
    /// The label was replaced by spammer (uniform) output.
    pub drifted: bool,
}

impl FaultRecord {
    /// True when no fault touched the assignment.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// The injector's verdict for one sampled outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedOutcome {
    /// The (possibly rewritten) response: `None` = never answered;
    /// `Some((label, latency))` = the label arrives `latency` after
    /// dispatch.
    pub response: Option<(ClassId, SimTime)>,
    /// Absolute arrival time of a duplicate copy of the answer, if one was
    /// injected (always at or after the original arrival).
    pub duplicate_at: Option<SimTime>,
    /// What was injected, for metrics.
    pub faults: FaultRecord,
}

/// Applies a [`FaultPlan`] to sampled annotator outcomes.
///
/// Stateless by construction: every decision derives from
/// `seeded(derive_seed(plan.seed, assignment id))` with a fixed draw order
/// (spam label, no-show, abandon, straggler, duplicate — do not reorder),
/// plus the dispatch clock for outage/drift onset checks. Two runs that
/// dispatch the same assignment ids at the same times inject identical
/// faults, regardless of thread count or checkpoint boundaries.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    num_classes: usize,
}

impl FaultInjector {
    /// Build an injector over `num_classes` label classes. Fails on a
    /// degenerate plan or a class count of zero.
    pub fn new(plan: FaultPlan, num_classes: usize) -> Result<Self> {
        plan.validate()?;
        if num_classes == 0 {
            return Err(Error::InvalidParameter(
                "fault injector needs at least one class".into(),
            ));
        }
        Ok(Self { plan, num_classes })
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `annotator` has drifted into a spammer by time `now`.
    pub fn drifted(&self, annotator: AnnotatorId, now: SimTime) -> bool {
        self.plan
            .drifts
            .iter()
            .any(|d| d.annotator == annotator && now.as_f64() >= d.at)
    }

    /// Transform one sampled outcome. `now` is the dispatch time and
    /// `timeout` the assignment's timeout (deadline = `now + timeout`).
    pub fn apply(
        &self,
        id: AssignmentId,
        annotator: AnnotatorId,
        now: SimTime,
        timeout: f64,
        response: Option<(ClassId, SimTime)>,
    ) -> InjectedOutcome {
        let mut faults = FaultRecord::default();
        if self.plan.is_noop() {
            return InjectedOutcome {
                response,
                duplicate_at: None,
                faults,
            };
        }

        // One private stream per assignment; five draws in fixed order so
        // every decision is independent of which earlier faults fired.
        let mut stream = seeded(derive_seed(self.plan.seed, id.0));
        let spam_label = ClassId(stream.random_range(0..self.num_classes));
        let u_no_show: f64 = stream.random();
        let u_abandon: f64 = stream.random();
        let u_straggle: f64 = stream.random();
        let u_duplicate: f64 = stream.random();

        let mut response = response;
        if let Some((label, _)) = response.as_mut() {
            if self.drifted(annotator, now) {
                *label = spam_label;
                faults.drifted = true;
            }
        }

        if response.is_some() && u_no_show < self.plan.no_show_rate {
            response = None;
            faults.no_show = true;
        }

        let mut duplicate_at = None;
        if let Some((_, latency)) = response.as_mut() {
            let mut lat = latency.as_f64();
            if u_abandon < self.plan.abandon_rate {
                // Mid-task abandonment: the answer limps in strictly after
                // the deadline, so the runtime times out first and then
                // sees a late delivery it must reject.
                lat = lat.max(timeout * 1.5 + 1.0);
                faults.abandoned = true;
            } else if u_straggle < self.plan.straggler_rate {
                lat *= self.plan.straggler_factor;
                faults.straggler = true;
            }
            let arrival = self.defer_through_outages(now.as_f64() + lat);
            if arrival > now.as_f64() + lat {
                faults.outage = true;
            }
            if u_duplicate < self.plan.duplicate_rate {
                let dup = self.defer_through_outages(arrival + self.plan.duplicate_delay);
                duplicate_at = SimTime::new(dup).ok();
                faults.duplicate = duplicate_at.is_some();
            }
            *latency = SimTime::new((arrival - now.as_f64()).max(0.0)).unwrap_or(SimTime::ZERO);
        }

        InjectedOutcome {
            response,
            duplicate_at,
            faults,
        }
    }

    /// Push `t` past every outage window that contains it. Windows may
    /// chain (the end of one inside the next), so iterate to a fixed point;
    /// validated windows have positive width, so this terminates.
    fn defer_through_outages(&self, mut t: f64) -> f64 {
        loop {
            let mut moved = false;
            for w in &self.plan.outages {
                if w.contains(t) {
                    t = w.end;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    fn chaotic_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            no_show_rate: 0.2,
            abandon_rate: 0.2,
            straggler_rate: 0.3,
            straggler_factor: 5.0,
            duplicate_rate: 0.3,
            duplicate_delay: 2.0,
            outages: vec![OutageWindow {
                start: 50.0,
                end: 60.0,
            }],
            drifts: vec![QualityDrift {
                annotator: AnnotatorId(1),
                at: 40.0,
            }],
        }
    }

    #[test]
    fn service_plan_defers_only_the_named_project() {
        let plan = ServiceFaultPlan {
            outages: vec![
                ProjectOutage {
                    project: 2,
                    window: OutageWindow {
                        start: 10.0,
                        end: 20.0,
                    },
                },
                // Chained window for the same project.
                ProjectOutage {
                    project: 2,
                    window: OutageWindow {
                        start: 20.0,
                        end: 25.0,
                    },
                },
            ],
            ..ServiceFaultPlan::default()
        };
        plan.validate().unwrap();
        assert!(!plan.is_noop());
        assert_eq!(plan.defer(2, 12.0), 25.0);
        assert_eq!(plan.defer(2, 30.0), 30.0);
        // Other projects pass through the same clock untouched.
        assert_eq!(plan.defer(0, 12.0), 12.0);
    }

    #[test]
    fn service_plan_schedules_and_validates_kills() {
        let plan = ServiceFaultPlan {
            aborts: vec![ProjectAbort {
                project: 1,
                at: 40.0,
            }],
            panics: vec![
                ProjectPanic {
                    project: 3,
                    at: 55.0,
                },
                ProjectPanic {
                    project: 3,
                    at: 15.0,
                },
            ],
            ..ServiceFaultPlan::default()
        };
        plan.validate().unwrap();
        assert_eq!(plan.abort_at(1), Some(40.0));
        assert_eq!(plan.abort_at(0), None);
        assert_eq!(plan.panic_at(3), Some(15.0), "earliest panic wins");
        assert!(ServiceFaultPlan::default().is_noop());
        let bad = ServiceFaultPlan {
            aborts: vec![ProjectAbort {
                project: 0,
                at: f64::NAN,
            }],
            ..ServiceFaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = ServiceFaultPlan {
            outages: vec![ProjectOutage {
                project: 0,
                window: OutageWindow {
                    start: 5.0,
                    end: 2.0,
                },
            }],
            ..ServiceFaultPlan::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn default_plan_is_noop_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        plan.validate().unwrap();
        let inj = FaultInjector::new(plan, 2).unwrap();
        let out = inj.apply(
            AssignmentId(0),
            AnnotatorId(0),
            t(0.0),
            10.0,
            Some((ClassId(1), t(3.0))),
        );
        assert_eq!(out.response, Some((ClassId(1), t(3.0))));
        assert_eq!(out.duplicate_at, None);
        assert!(out.faults.is_clean());
    }

    #[test]
    fn validate_rejects_degenerate_plans() {
        type Mutation = Box<dyn Fn(&mut FaultPlan)>;
        let cases: Vec<(&str, Mutation)> = vec![
            ("nan rate", Box::new(|p| p.no_show_rate = f64::NAN)),
            ("rate > 1", Box::new(|p| p.abandon_rate = 1.5)),
            ("negative rate", Box::new(|p| p.straggler_rate = -0.1)),
            ("factor < 1", Box::new(|p| p.straggler_factor = 0.5)),
            ("nan factor", Box::new(|p| p.straggler_factor = f64::NAN)),
            ("negative delay", Box::new(|p| p.duplicate_delay = -1.0)),
            (
                "inverted window",
                Box::new(|p| {
                    p.outages = vec![OutageWindow {
                        start: 5.0,
                        end: 2.0,
                    }]
                }),
            ),
            (
                "zero-width window",
                Box::new(|p| {
                    p.outages = vec![OutageWindow {
                        start: 5.0,
                        end: 5.0,
                    }]
                }),
            ),
            (
                "negative window",
                Box::new(|p| {
                    p.outages = vec![OutageWindow {
                        start: -1.0,
                        end: 2.0,
                    }]
                }),
            ),
            (
                "nan drift onset",
                Box::new(|p| {
                    p.drifts = vec![QualityDrift {
                        annotator: AnnotatorId(0),
                        at: f64::NAN,
                    }]
                }),
            ),
        ];
        for (name, mutate) in cases {
            let mut plan = FaultPlan::default();
            mutate(&mut plan);
            assert!(plan.validate().is_err(), "{name} should be rejected");
            assert!(FaultInjector::new(plan, 2).is_err(), "{name}");
        }
        assert!(FaultInjector::new(FaultPlan::default(), 0).is_err());
    }

    #[test]
    fn injection_is_a_pure_function_of_the_assignment_id() {
        let inj = FaultInjector::new(chaotic_plan(), 3).unwrap();
        for id in 0..200 {
            let a = inj.apply(
                AssignmentId(id),
                AnnotatorId(0),
                t(10.0),
                25.0,
                Some((ClassId(0), t(4.0))),
            );
            let b = inj.apply(
                AssignmentId(id),
                AnnotatorId(0),
                t(10.0),
                25.0,
                Some((ClassId(0), t(4.0))),
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rates_are_respected_empirically() {
        let plan = FaultPlan {
            no_show_rate: 0.25,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2).unwrap();
        let n = 4000;
        let suppressed = (0..n)
            .filter(|&i| {
                inj.apply(
                    AssignmentId(i),
                    AnnotatorId(0),
                    t(0.0),
                    10.0,
                    Some((ClassId(0), t(1.0))),
                )
                .response
                .is_none()
            })
            .count();
        let rate = suppressed as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "no-show rate {rate}");
    }

    #[test]
    fn abandonment_arrives_after_the_deadline() {
        let plan = FaultPlan {
            abandon_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2).unwrap();
        let timeout = 25.0;
        let out = inj.apply(
            AssignmentId(3),
            AnnotatorId(0),
            t(100.0),
            timeout,
            Some((ClassId(1), t(2.0))),
        );
        let (_, latency) = out.response.unwrap();
        assert!(out.faults.abandoned);
        assert!(
            latency.as_f64() > timeout,
            "late answer must miss the deadline: {latency}"
        );
    }

    #[test]
    fn stragglers_scale_latency() {
        let plan = FaultPlan {
            straggler_rate: 1.0,
            straggler_factor: 6.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2).unwrap();
        let out = inj.apply(
            AssignmentId(5),
            AnnotatorId(0),
            t(0.0),
            1e6,
            Some((ClassId(0), t(3.0))),
        );
        let (_, latency) = out.response.unwrap();
        assert!(out.faults.straggler);
        assert!((latency.as_f64() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn outage_defers_arrivals_to_window_end() {
        let plan = FaultPlan {
            outages: vec![
                OutageWindow {
                    start: 4.0,
                    end: 9.0,
                },
                // Chained window: arrivals pushed to 9.0 land in this one.
                OutageWindow {
                    start: 9.0,
                    end: 12.0,
                },
            ],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2).unwrap();
        let out = inj.apply(
            AssignmentId(0),
            AnnotatorId(0),
            t(0.0),
            100.0,
            Some((ClassId(0), t(5.0))),
        );
        let (_, latency) = out.response.unwrap();
        assert!(out.faults.outage);
        assert!((latency.as_f64() - 12.0).abs() < 1e-9);
        // Arrivals outside every window pass through untouched.
        let clean = inj.apply(
            AssignmentId(1),
            AnnotatorId(0),
            t(0.0),
            100.0,
            Some((ClassId(0), t(2.0))),
        );
        assert_eq!(clean.response.unwrap().1, t(2.0));
        assert!(!clean.faults.outage);
    }

    #[test]
    fn duplicates_trail_the_original() {
        let plan = FaultPlan {
            duplicate_rate: 1.0,
            duplicate_delay: 2.5,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2).unwrap();
        let out = inj.apply(
            AssignmentId(9),
            AnnotatorId(0),
            t(10.0),
            100.0,
            Some((ClassId(0), t(4.0))),
        );
        assert!(out.faults.duplicate);
        let dup = out.duplicate_at.unwrap();
        assert!((dup.as_f64() - 16.5).abs() < 1e-9);
        // No duplicate for a no-show.
        let plan = FaultPlan {
            duplicate_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2).unwrap();
        let out = inj.apply(AssignmentId(9), AnnotatorId(0), t(10.0), 100.0, None);
        assert_eq!(out.duplicate_at, None);
    }

    #[test]
    fn drift_turns_labels_uniform_after_onset() {
        let plan = FaultPlan {
            drifts: vec![QualityDrift {
                annotator: AnnotatorId(2),
                at: 50.0,
            }],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 4).unwrap();
        // Before onset: label passes through.
        let before = inj.apply(
            AssignmentId(0),
            AnnotatorId(2),
            t(49.0),
            10.0,
            Some((ClassId(3), t(1.0))),
        );
        assert_eq!(before.response.unwrap().0, ClassId(3));
        assert!(!before.faults.drifted);
        // After onset: labels are (seeded-)uniform; over many assignments
        // every class appears and the truth is no longer privileged.
        let mut counts = [0usize; 4];
        for id in 0..2000 {
            let out = inj.apply(
                AssignmentId(id),
                AnnotatorId(2),
                t(60.0),
                10.0,
                Some((ClassId(3), t(1.0))),
            );
            assert!(out.faults.drifted);
            counts[out.response.unwrap().0.index()] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            let frac = n as f64 / 2000.0;
            assert!((frac - 0.25).abs() < 0.04, "class {c}: {frac}");
        }
        // Other annotators are untouched at the same clock.
        let other = inj.apply(
            AssignmentId(0),
            AnnotatorId(1),
            t(60.0),
            10.0,
            Some((ClassId(3), t(1.0))),
        );
        assert_eq!(other.response.unwrap().0, ClassId(3));
    }
}
