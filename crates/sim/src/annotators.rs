//! Simulated annotator pools.
//!
//! Each annotator is a latent [`ConfusionMatrix`] — the paper's own model of
//! annotator expertise (§II-A). Workers get noisy per-class accuracies
//! sampled from a configurable range (default 0.55–0.85, bracketing
//! the worker qualities 0.60–0.65 in Table II); experts sample near-perfect
//! accuracies (default 0.95–1.00, cf. 0.985/1.0 in Table II).

use crowdrl_types::{
    AnnotatorId, AnnotatorKind, AnnotatorProfile, ClassId, ConfusionMatrix, Error, Result,
};
use rand::Rng;

/// Specification of an annotator pool.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Number of crowdsourcing workers.
    pub num_workers: usize,
    /// Number of domain experts.
    pub num_experts: usize,
    /// Cost per worker answer (paper: 1 unit).
    pub worker_cost: f64,
    /// Cost per expert answer (paper: 5 or 10 units).
    pub expert_cost: f64,
    /// Per-class worker accuracy is sampled uniformly from this range.
    pub worker_accuracy: (f64, f64),
    /// Per-class expert accuracy is sampled uniformly from this range.
    pub expert_accuracy: (f64, f64),
}

impl PoolSpec {
    /// A pool with the paper's default costs (worker 1, expert 10) and
    /// accuracy ranges (workers 0.55–0.80, experts 0.95–1.00).
    pub fn new(num_workers: usize, num_experts: usize) -> Self {
        Self {
            num_workers,
            num_experts,
            worker_cost: 1.0,
            expert_cost: 10.0,
            worker_accuracy: (0.55, 0.85),
            expert_accuracy: (0.95, 1.0),
        }
    }

    /// Override the expert cost (the paper's running example uses 5).
    pub fn with_expert_cost(mut self, cost: f64) -> Self {
        self.expert_cost = cost;
        self
    }

    /// Override the worker accuracy range.
    pub fn with_worker_accuracy(mut self, lo: f64, hi: f64) -> Self {
        self.worker_accuracy = (lo, hi);
        self
    }

    /// Override the expert accuracy range.
    pub fn with_expert_accuracy(mut self, lo: f64, hi: f64) -> Self {
        self.expert_accuracy = (lo, hi);
        self
    }

    /// Total pool size `|W|`.
    pub fn size(&self) -> usize {
        self.num_workers + self.num_experts
    }

    fn validate(&self) -> Result<()> {
        if self.size() == 0 {
            return Err(Error::InvalidParameter(
                "pool must contain at least one annotator".into(),
            ));
        }
        for (lo, hi, who) in [
            (self.worker_accuracy.0, self.worker_accuracy.1, "worker"),
            (self.expert_accuracy.0, self.expert_accuracy.1, "expert"),
        ] {
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                return Err(Error::InvalidParameter(format!(
                    "{who} accuracy range [{lo},{hi}] invalid"
                )));
            }
        }
        if self.worker_cost <= 0.0 || self.expert_cost <= 0.0 {
            return Err(Error::InvalidParameter(
                "annotator costs must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Sample a pool for a `num_classes`-class task. Workers occupy the
    /// first `num_workers` ids, experts the rest.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        num_classes: usize,
        rng: &mut R,
    ) -> Result<AnnotatorPool> {
        self.validate()?;
        if num_classes < 2 {
            return Err(Error::InvalidParameter("need at least two classes".into()));
        }
        let mut profiles = Vec::with_capacity(self.size());
        let mut latent = Vec::with_capacity(self.size());
        for i in 0..self.size() {
            let (kind, cost, (lo, hi)) = if i < self.num_workers {
                (
                    AnnotatorKind::Worker,
                    self.worker_cost,
                    self.worker_accuracy,
                )
            } else {
                (
                    AnnotatorKind::Expert,
                    self.expert_cost,
                    self.expert_accuracy,
                )
            };
            profiles.push(AnnotatorProfile::new(AnnotatorId(i), kind, cost)?);
            // Per-class accuracy: each row gets its own diagonal, modelling
            // class-dependent skill (an annotator may over-report one class).
            let mut rows = Vec::with_capacity(num_classes);
            for _ in 0..num_classes {
                let acc = lo + rng.random::<f64>() * (hi - lo);
                let off = (1.0 - acc) / (num_classes - 1) as f64;
                let mut row = vec![off; num_classes];
                row[rows.len()] = acc;
                rows.push(row);
            }
            latent.push(ConfusionMatrix::from_rows(&rows)?);
        }
        Ok(AnnotatorPool { profiles, latent })
    }
}

/// A concrete pool: observable profiles plus latent confusion matrices.
#[derive(Debug, Clone)]
pub struct AnnotatorPool {
    profiles: Vec<AnnotatorProfile>,
    latent: Vec<ConfusionMatrix>,
}

impl AnnotatorPool {
    /// Build a pool from explicit profiles and matrices (tests, worked
    /// examples such as the paper's Table II pool).
    pub fn from_parts(
        profiles: Vec<AnnotatorProfile>,
        latent: Vec<ConfusionMatrix>,
    ) -> Result<Self> {
        if profiles.is_empty() {
            return Err(Error::InvalidParameter(
                "pool must contain at least one annotator".into(),
            ));
        }
        if profiles.len() != latent.len() {
            return Err(Error::DimensionMismatch {
                expected: profiles.len(),
                actual: latent.len(),
                context: "annotator pool".into(),
            });
        }
        for (i, p) in profiles.iter().enumerate() {
            if p.id.index() != i {
                return Err(Error::InvalidParameter(format!(
                    "profile at position {i} has id {}",
                    p.id
                )));
            }
        }
        let k = latent[0].num_classes();
        if latent.iter().any(|m| m.num_classes() != k) {
            return Err(Error::InvalidParameter(
                "inconsistent class counts in pool".into(),
            ));
        }
        Ok(Self { profiles, latent })
    }

    /// Pool size `|W|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the pool has no annotators (never, per constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles.
    #[inline]
    pub fn profiles(&self) -> &[AnnotatorProfile] {
        &self.profiles
    }

    /// One profile.
    #[inline]
    pub fn profile(&self, id: AnnotatorId) -> &AnnotatorProfile {
        &self.profiles[id.index()]
    }

    /// The cheapest per-answer cost in the pool (budget-exhaustion check).
    pub fn min_cost(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.cost)
            .fold(f64::INFINITY, f64::min)
    }

    /// Ids of all workers.
    pub fn workers(&self) -> impl Iterator<Item = AnnotatorId> + '_ {
        self.profiles
            .iter()
            .filter(|p| !p.is_expert())
            .map(|p| p.id)
    }

    /// Ids of all experts.
    pub fn experts(&self) -> impl Iterator<Item = AnnotatorId> + '_ {
        self.profiles.iter().filter(|p| p.is_expert()).map(|p| p.id)
    }

    /// **Simulation only.** Sample annotator `id`'s answer for an object
    /// whose true class is `truth`.
    pub fn sample_answer<R: Rng + ?Sized>(
        &self,
        id: AnnotatorId,
        truth: ClassId,
        rng: &mut R,
    ) -> ClassId {
        self.latent[id.index()].sample_answer(truth, rng)
    }

    /// **Evaluation only.** The latent confusion matrix of annotator `id` —
    /// for computing estimation error in experiments, never for labelling
    /// decisions.
    pub fn latent_confusion(&self, id: AnnotatorId) -> &ConfusionMatrix {
        &self.latent[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    #[test]
    fn generate_orders_workers_then_experts() {
        let mut rng = seeded(1);
        let pool = PoolSpec::new(3, 2).generate(2, &mut rng).unwrap();
        assert_eq!(pool.len(), 5);
        assert!(!pool.is_empty());
        for i in 0..3 {
            assert_eq!(pool.profile(AnnotatorId(i)).kind, AnnotatorKind::Worker);
            assert_eq!(pool.profile(AnnotatorId(i)).cost, 1.0);
        }
        for i in 3..5 {
            assert_eq!(pool.profile(AnnotatorId(i)).kind, AnnotatorKind::Expert);
            assert_eq!(pool.profile(AnnotatorId(i)).cost, 10.0);
        }
        assert_eq!(pool.workers().count(), 3);
        assert_eq!(pool.experts().count(), 2);
        assert_eq!(pool.min_cost(), 1.0);
    }

    #[test]
    fn latent_qualities_respect_ranges() {
        let mut rng = seeded(2);
        let pool = PoolSpec::new(10, 10).generate(3, &mut rng).unwrap();
        for id in pool.workers() {
            let q = pool.latent_confusion(id).quality();
            assert!((0.55..=0.85).contains(&q), "worker quality {q}");
        }
        for id in pool.experts() {
            let q = pool.latent_confusion(id).quality();
            assert!((0.95..=1.0).contains(&q), "expert quality {q}");
        }
    }

    #[test]
    fn experts_answer_more_accurately_than_workers() {
        let mut rng = seeded(3);
        let pool = PoolSpec::new(1, 1).generate(2, &mut rng).unwrap();
        let n = 5000;
        let acc = |id: AnnotatorId, rng: &mut rand::rngs::StdRng| {
            (0..n)
                .filter(|_| pool.sample_answer(id, ClassId(0), rng) == ClassId(0))
                .count() as f64
                / n as f64
        };
        let worker_acc = acc(AnnotatorId(0), &mut rng);
        let expert_acc = acc(AnnotatorId(1), &mut rng);
        assert!(
            expert_acc > worker_acc + 0.1,
            "expert {expert_acc} worker {worker_acc}"
        );
    }

    #[test]
    fn spec_validation() {
        let mut rng = seeded(4);
        assert!(PoolSpec::new(0, 0).generate(2, &mut rng).is_err());
        assert!(PoolSpec::new(1, 0).generate(1, &mut rng).is_err());
        assert!(PoolSpec::new(1, 0)
            .with_worker_accuracy(0.9, 0.5)
            .generate(2, &mut rng)
            .is_err());
        assert!(PoolSpec::new(1, 0)
            .with_worker_accuracy(-0.1, 0.5)
            .generate(2, &mut rng)
            .is_err());
        let mut bad = PoolSpec::new(1, 1);
        bad.worker_cost = 0.0;
        assert!(bad.generate(2, &mut rng).is_err());
    }

    #[test]
    fn from_parts_validates_consistency() {
        let profiles = vec![
            AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, 1.0).unwrap(),
            AnnotatorProfile::new(AnnotatorId(1), AnnotatorKind::Expert, 5.0).unwrap(),
        ];
        let latent = vec![
            ConfusionMatrix::with_accuracy(2, 0.6).unwrap(),
            ConfusionMatrix::with_accuracy(2, 0.99).unwrap(),
        ];
        let pool = AnnotatorPool::from_parts(profiles.clone(), latent.clone()).unwrap();
        assert_eq!(pool.len(), 2);

        // Mismatched lengths.
        assert!(AnnotatorPool::from_parts(profiles.clone(), latent[..1].to_vec()).is_err());
        // Wrong id order.
        let swapped = vec![profiles[1].clone(), profiles[0].clone()];
        assert!(AnnotatorPool::from_parts(swapped, latent.clone()).is_err());
        // Inconsistent class counts.
        let mixed = vec![
            ConfusionMatrix::with_accuracy(2, 0.6).unwrap(),
            ConfusionMatrix::with_accuracy(3, 0.9).unwrap(),
        ];
        assert!(AnnotatorPool::from_parts(profiles, mixed).is_err());
        assert!(AnnotatorPool::from_parts(vec![], vec![]).is_err());
    }

    #[test]
    fn paper_table2_pool_reproduces_costs() {
        // Table II: three workers at cost 1, two experts at cost 5.
        let mut rng = seeded(5);
        let pool = PoolSpec::new(3, 2)
            .with_expert_cost(5.0)
            .generate(2, &mut rng)
            .unwrap();
        assert_eq!(pool.profile(AnnotatorId(4)).cost, 5.0);
        assert_eq!(pool.min_cost(), 1.0);
    }
}
