//! The crowdsourcing platform: the only interface through which labelling
//! algorithms may interact with annotators.
//!
//! A [`Platform`] owns the budget and the growing [`AnswerSet`]. Asking a
//! question (a) verifies the annotator hasn't already answered that object,
//! (b) charges the annotator's cost against the budget atomically, then
//! (c) samples the answer through the annotator's latent confusion matrix.
//! Ground truth never crosses this boundary: algorithms see only answers,
//! costs and features.

use crate::annotators::AnnotatorPool;
use crowdrl_types::{AnnotatorId, Answer, AnswerSet, Budget, Dataset, Error, ObjectId, Result};
use rand::Rng;

/// A simulated crowdsourcing platform bound to one dataset and pool.
#[derive(Debug, Clone)]
pub struct Platform<'a> {
    dataset: &'a Dataset,
    pool: &'a AnnotatorPool,
    budget: Budget,
    answers: AnswerSet,
}

impl<'a> Platform<'a> {
    /// Open a platform session with `budget` units to spend.
    pub fn new(dataset: &'a Dataset, pool: &'a AnnotatorPool, budget: Budget) -> Self {
        let answers = AnswerSet::new(dataset.len());
        Self {
            dataset,
            pool,
            budget,
            answers,
        }
    }

    /// The dataset being labelled (features are public; algorithms must not
    /// call its `truth` accessors — see [`Dataset::truth`]).
    #[inline]
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The annotator pool's public profiles.
    #[inline]
    pub fn pool(&self) -> &'a AnnotatorPool {
        self.pool
    }

    /// Current budget state.
    #[inline]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// All answers collected so far.
    #[inline]
    pub fn answers(&self) -> &AnswerSet {
        &self.answers
    }

    /// True when `annotator` can still be paid for one more answer.
    pub fn can_afford(&self, annotator: AnnotatorId) -> bool {
        self.budget.can_afford(self.pool.profile(annotator).cost)
    }

    /// True when not even the cheapest annotator can be paid.
    pub fn exhausted(&self) -> bool {
        self.budget.exhausted_for(self.pool.min_cost())
    }

    /// Ask `annotator` to label `object`: charge the cost, sample the
    /// answer, record it, and return it.
    ///
    /// Fails (without charging) when the object is out of range, the
    /// annotator already answered it, or the budget cannot cover the cost.
    pub fn ask<R: Rng + ?Sized>(
        &mut self,
        object: ObjectId,
        annotator: AnnotatorId,
        rng: &mut R,
    ) -> Result<Answer> {
        if object.index() >= self.dataset.len() {
            return Err(Error::IndexOutOfBounds {
                index: object.index(),
                len: self.dataset.len(),
                context: "platform ask".into(),
            });
        }
        if annotator.index() >= self.pool.len() {
            return Err(Error::IndexOutOfBounds {
                index: annotator.index(),
                len: self.pool.len(),
                context: "platform ask (annotator)".into(),
            });
        }
        if self.answers.has_answered(object, annotator) {
            return Err(Error::InvalidParameter(format!(
                "annotator {annotator} already answered object {object}"
            )));
        }
        let cost = self.pool.profile(annotator).cost;
        self.budget.charge(cost)?;
        let truth = self.dataset.truth(object.index());
        let label = self.pool.sample_answer(annotator, truth, rng);
        let answer = Answer {
            object,
            annotator,
            label,
        };
        self.answers
            .record(answer)
            .expect("pre-checked answer must record");
        Ok(answer)
    }

    /// Ask several annotators about the same object, stopping early if the
    /// budget runs out. Returns the answers actually obtained.
    pub fn ask_many<R: Rng + ?Sized>(
        &mut self,
        object: ObjectId,
        annotators: &[AnnotatorId],
        rng: &mut R,
    ) -> Vec<Answer> {
        let mut got = Vec::with_capacity(annotators.len());
        for &a in annotators {
            match self.ask(object, a, rng) {
                Ok(ans) => got.push(ans),
                Err(Error::BudgetExhausted { .. }) => break,
                Err(_) => continue, // duplicate answer etc.: skip
            }
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotators::PoolSpec;
    use crate::datasets::DatasetSpec;
    use crowdrl_types::rng::seeded;

    fn setup(budget: f64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(100);
        let dataset = DatasetSpec::gaussian("t", 10, 2, 2)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(2, 1).generate(2, &mut rng).unwrap();
        let _ = budget;
        (dataset, pool)
    }

    #[test]
    fn ask_charges_and_records() {
        let (dataset, pool) = setup(20.0);
        let mut platform = Platform::new(&dataset, &pool, Budget::new(20.0).unwrap());
        let mut rng = seeded(1);
        let ans = platform.ask(ObjectId(0), AnnotatorId(0), &mut rng).unwrap();
        assert_eq!(ans.object, ObjectId(0));
        assert_eq!(platform.budget().spent(), 1.0);
        assert_eq!(platform.answers().total_answers(), 1);
        assert!(platform.answers().has_answered(ObjectId(0), AnnotatorId(0)));
    }

    #[test]
    fn duplicate_ask_fails_without_charging() {
        let (dataset, pool) = setup(20.0);
        let mut platform = Platform::new(&dataset, &pool, Budget::new(20.0).unwrap());
        let mut rng = seeded(2);
        platform.ask(ObjectId(0), AnnotatorId(0), &mut rng).unwrap();
        assert!(platform.ask(ObjectId(0), AnnotatorId(0), &mut rng).is_err());
        assert_eq!(platform.budget().spent(), 1.0);
    }

    #[test]
    fn overdraft_is_rejected() {
        let (dataset, pool) = setup(1.5);
        // Expert costs 10; budget 1.5 affords one worker answer only.
        let mut platform = Platform::new(&dataset, &pool, Budget::new(1.5).unwrap());
        let mut rng = seeded(3);
        assert!(!platform.can_afford(AnnotatorId(2))); // expert
        assert!(platform.ask(ObjectId(0), AnnotatorId(2), &mut rng).is_err());
        platform.ask(ObjectId(0), AnnotatorId(0), &mut rng).unwrap();
        assert!(platform.exhausted());
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let (dataset, pool) = setup(20.0);
        let mut platform = Platform::new(&dataset, &pool, Budget::new(20.0).unwrap());
        let mut rng = seeded(4);
        assert!(platform
            .ask(ObjectId(99), AnnotatorId(0), &mut rng)
            .is_err());
        assert!(platform
            .ask(ObjectId(0), AnnotatorId(99), &mut rng)
            .is_err());
        assert_eq!(platform.budget().spent(), 0.0);
    }

    #[test]
    fn ask_many_stops_at_budget() {
        let (dataset, pool) = setup(2.0);
        let mut platform = Platform::new(&dataset, &pool, Budget::new(2.0).unwrap());
        let mut rng = seeded(5);
        let got = platform.ask_many(
            ObjectId(1),
            &[AnnotatorId(0), AnnotatorId(1), AnnotatorId(2)],
            &mut rng,
        );
        // Two workers fit (1+1), the expert (10) does not.
        assert_eq!(got.len(), 2);
        assert_eq!(platform.budget().spent(), 2.0);
    }

    #[test]
    fn ask_many_skips_duplicates() {
        let (dataset, pool) = setup(20.0);
        let mut platform = Platform::new(&dataset, &pool, Budget::new(20.0).unwrap());
        let mut rng = seeded(6);
        platform.ask(ObjectId(0), AnnotatorId(0), &mut rng).unwrap();
        let got = platform.ask_many(ObjectId(0), &[AnnotatorId(0), AnnotatorId(1)], &mut rng);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].annotator, AnnotatorId(1));
    }

    #[test]
    fn answers_reflect_latent_quality() {
        // An expert pool answering many objects should mostly match truth.
        let mut rng = seeded(7);
        let dataset = DatasetSpec::gaussian("t", 200, 2, 2)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(0, 1)
            .with_expert_accuracy(0.99, 1.0)
            .generate(2, &mut rng)
            .unwrap();
        let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
        let mut correct = 0;
        for i in 0..200 {
            let ans = platform.ask(ObjectId(i), AnnotatorId(0), &mut rng).unwrap();
            if ans.label == dataset.truth(i) {
                correct += 1;
            }
        }
        assert!(correct >= 190, "correct={correct}");
    }
}
