//! Synthetic dataset generators.
//!
//! The paper evaluates on three real datasets we cannot redistribute:
//!
//! * **Speech12** — 2344 videos of grade-1/2 oral reports, binary labels,
//!   50-d contextual + 1582-d prosodic features;
//! * **Speech3** — 1898 grade-3 videos, same features;
//! * **Fashion** — 32 398 social images, binary "fashion-related" labels.
//!
//! We substitute class-conditional Gaussian generators that preserve what
//! the evaluation actually exercises (see DESIGN.md §1): a classifier can
//! learn the task imperfectly from features; concatenated feature views
//! beat single views; and the speech tasks are *harder* than fashion
//! (lower class separation, more irreducible label noise), which is what
//! drives the paper's "CrowdRL wins more on hard tasks" observations.

use crowdrl_types::rng::{normal, sample_weighted};
use crowdrl_types::{ClassId, Dataset, Error, Result};
use rand::Rng;

/// Generic class-conditional Gaussian dataset generator.
///
/// Each class `c` gets a centroid placed deterministically on an
/// axis-aligned lattice scaled by `separation`; objects sample their class
/// from `class_balance`, then features `x = centroid_c + N(0, 1)` per
/// informative dimension, plus `noise_dims` pure-noise dimensions.
/// `label_noise` flips the stored ground truth of that fraction of objects
/// to a uniformly random *other* class, modelling irreducible task
/// ambiguity (the videos human graders genuinely disagree on).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    name: String,
    num_objects: usize,
    informative_dims: usize,
    noise_dims: usize,
    num_classes: usize,
    separation: f64,
    label_noise: f64,
    class_balance: Vec<f64>,
}

impl DatasetSpec {
    /// A balanced Gaussian dataset: `num_objects` objects, `dim`
    /// informative dimensions, `num_classes` classes, separation 2.0 and no
    /// label noise. Customize with the builder methods.
    pub fn gaussian(
        name: impl Into<String>,
        num_objects: usize,
        dim: usize,
        num_classes: usize,
    ) -> Self {
        Self {
            name: name.into(),
            num_objects,
            informative_dims: dim,
            noise_dims: 0,
            num_classes,
            separation: 2.0,
            label_noise: 0.0,
            class_balance: vec![1.0 / num_classes.max(1) as f64; num_classes],
        }
    }

    /// Distance between class centroids, in noise standard deviations.
    /// Lower = harder task.
    pub fn with_separation(mut self, separation: f64) -> Self {
        self.separation = separation;
        self
    }

    /// Fraction of objects whose ground truth is flipped to a random other
    /// class (irreducible ambiguity).
    pub fn with_label_noise(mut self, noise: f64) -> Self {
        self.label_noise = noise;
        self
    }

    /// Append `dims` pure-noise feature columns.
    pub fn with_noise_dims(mut self, dims: usize) -> Self {
        self.noise_dims = dims;
        self
    }

    /// Class prior (normalized internally).
    pub fn with_class_balance(mut self, balance: Vec<f64>) -> Self {
        self.class_balance = balance;
        self
    }

    /// Number of objects this spec will generate.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Total feature dimensionality (informative + noise).
    pub fn dim(&self) -> usize {
        self.informative_dims + self.noise_dims
    }

    fn validate(&self) -> Result<()> {
        if self.num_objects == 0 {
            return Err(Error::InvalidParameter(
                "num_objects must be positive".into(),
            ));
        }
        if self.informative_dims == 0 {
            return Err(Error::InvalidParameter(
                "need at least one informative dim".into(),
            ));
        }
        if self.num_classes < 2 {
            return Err(Error::InvalidParameter("need at least two classes".into()));
        }
        if !(0.0..=1.0).contains(&self.label_noise) {
            return Err(Error::InvalidParameter(format!(
                "label_noise must be in [0,1], got {}",
                self.label_noise
            )));
        }
        if self.separation < 0.0 || !self.separation.is_finite() {
            return Err(Error::InvalidParameter(
                "separation must be non-negative".into(),
            ));
        }
        if self.class_balance.len() != self.num_classes {
            return Err(Error::DimensionMismatch {
                expected: self.num_classes,
                actual: self.class_balance.len(),
                context: "class balance".into(),
            });
        }
        if self
            .class_balance
            .iter()
            .any(|&p| p < 0.0 || !p.is_finite())
            || self.class_balance.iter().sum::<f64>() <= 0.0
        {
            return Err(Error::InvalidParameter(
                "class balance must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Class centroids: class `c` displaces dimension `d` by
    /// `±separation / (2·√dims)` following a deterministic sign pattern.
    ///
    /// The scaling makes `separation` the **total** Euclidean distance
    /// between class centroids regardless of dimensionality, so the
    /// Bayes-optimal accuracy of a two-class dataset is `Φ(separation/2)`
    /// (before label noise) whether the signal is spread over 2 dims or
    /// 200. That lets presets dial task hardness directly.
    fn centroid(&self, class: usize, dim: usize) -> f64 {
        // Two classes get exactly-antipodal sign patterns so the centroid
        // distance is exactly `separation`; more classes fall back to a
        // deterministic hash pattern (distinct, roughly sep/√2 apart).
        let bit = if self.num_classes == 2 {
            (class + dim) % 2
        } else {
            let pattern = (class + 1).wrapping_mul(0x9E37);
            (pattern >> (dim % 16)) & 1
        };
        let half = self.separation / (2.0 * (self.informative_dims as f64).sqrt());
        if bit == 1 {
            half
        } else {
            -half
        }
    }

    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dataset> {
        self.validate()?;
        let dim = self.dim();
        let mut features = Vec::with_capacity(self.num_objects * dim);
        let mut truth = Vec::with_capacity(self.num_objects);
        for _ in 0..self.num_objects {
            let class = sample_weighted(rng, &self.class_balance)
                .ok_or_else(|| Error::NumericalFailure("class sampling failed".into()))?;
            for d in 0..self.informative_dims {
                features.push(normal(rng, self.centroid(class, d), 1.0) as f32);
            }
            for _ in 0..self.noise_dims {
                features.push(normal(rng, 0.0, 1.0) as f32);
            }
            // Irreducible ambiguity: flip a fraction of ground truths.
            let final_class = if self.label_noise > 0.0 && rng.random::<f64>() < self.label_noise {
                let other = rng.random_range(0..self.num_classes - 1);
                if other >= class {
                    other + 1
                } else {
                    other
                }
            } else {
                class
            };
            truth.push(ClassId(final_class));
        }
        Dataset::new(self.name.clone(), features, dim, truth, self.num_classes)
    }
}

/// The three feature views of a speech dataset (§VI-A.1): contextual only
/// (`C`), prosodic only (`P`), and concatenated (`CP`).
#[derive(Debug, Clone)]
pub struct SpeechViews {
    /// Contextual features only (e.g. `S12C`).
    pub c: Dataset,
    /// Prosodic features only (e.g. `S12P`).
    pub p: Dataset,
    /// Concatenated features (e.g. `S12CP`).
    pub cp: Dataset,
}

/// Generator for a speech-assessment-style dataset with two feature blocks.
///
/// The paper's contextual features are a 50-d vector and prosodic features
/// a 1582-d vector; we default to 50-d contextual and a scaled-down 150-d
/// prosodic block (full 1582 is supported but slows benches ~10x without
/// changing any comparison — see EXPERIMENTS.md). Each block carries
/// *partial* class signal (separations are total centroid distances, so
/// the per-block Bayes accuracy is `Φ(sep/2)` before label noise); blocks
/// compose orthogonally, giving the CP view distance
/// `√(sep_c² + sep_p²)` — the highest signal-to-noise ratio, reproducing
/// the paper's observation (5) in §VI-B.1 that concatenated features
/// label best. The defaults put the CP classifier ceiling near 0.8,
/// leaving real headroom for annotators — speech assessment is a task
/// where features alone do not suffice, which is the regime the paper
/// evaluates.
#[derive(Debug, Clone)]
pub struct SpeechSpec {
    /// Base name; views are suffixed `c` / `p` / `cp`.
    pub name: String,
    /// Number of video clips.
    pub num_objects: usize,
    /// Contextual block width (paper: 50).
    pub contextual_dim: usize,
    /// Prosodic block width (paper: 1582; default 150 for speed).
    pub prosodic_dim: usize,
    /// Class separation of the contextual block.
    pub contextual_separation: f64,
    /// Class separation of the prosodic block (noisier).
    pub prosodic_separation: f64,
    /// Irreducible label ambiguity.
    pub label_noise: f64,
}

impl SpeechSpec {
    /// Speech12 analogue: 2344 grade-1/2 clips. The paper treats grade-1/2
    /// speakers as *harder* to assess; we encode that as lower separation.
    pub fn speech12() -> Self {
        Self {
            name: "s12".into(),
            num_objects: 2344,
            contextual_dim: 50,
            prosodic_dim: 150,
            contextual_separation: 1.8,
            prosodic_separation: 1.3,
            label_noise: 0.06,
        }
    }

    /// Speech3 analogue: 1898 grade-3 clips, slightly easier than Speech12.
    pub fn speech3() -> Self {
        Self {
            name: "s3".into(),
            num_objects: 1898,
            contextual_dim: 50,
            prosodic_dim: 150,
            contextual_separation: 2.0,
            prosodic_separation: 1.5,
            label_noise: 0.05,
        }
    }

    /// Scale the object count (used by quick tests and the fig5 sampling
    /// sweep).
    pub fn with_num_objects(mut self, n: usize) -> Self {
        self.num_objects = n;
        self
    }

    /// Override the prosodic block width — e.g. the paper's full 1582 dims
    /// (the default 150 keeps benches fast without changing comparisons;
    /// separations are total distances, so block width does not change the
    /// task's information content).
    pub fn with_prosodic_dim(mut self, dim: usize) -> Self {
        self.prosodic_dim = dim;
        self
    }

    /// Generate the three views over a single draw of objects.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SpeechViews> {
        if self.contextual_dim == 0 || self.prosodic_dim == 0 {
            return Err(Error::InvalidParameter(
                "speech blocks must be non-empty".into(),
            ));
        }
        // Build the CP dataset directly: contextual block then prosodic
        // block, each with its own separation. We reuse DatasetSpec's
        // centroid pattern by generating per-block and concatenating.
        let ctx_spec = DatasetSpec::gaussian(
            format!("{}c", self.name),
            self.num_objects,
            self.contextual_dim,
            2,
        )
        .with_separation(self.contextual_separation)
        .with_label_noise(0.0);
        let pro_spec = DatasetSpec::gaussian(
            format!("{}p", self.name),
            self.num_objects,
            self.prosodic_dim,
            2,
        )
        .with_separation(self.prosodic_separation)
        .with_label_noise(0.0);
        ctx_spec.validate()?;
        pro_spec.validate()?;
        if !(0.0..=1.0).contains(&self.label_noise) {
            return Err(Error::InvalidParameter(
                "label_noise must be in [0,1]".into(),
            ));
        }

        let dim = self.contextual_dim + self.prosodic_dim;
        let mut features = Vec::with_capacity(self.num_objects * dim);
        let mut truth = Vec::with_capacity(self.num_objects);
        for _ in 0..self.num_objects {
            let class = if rng.random::<f64>() < 0.5 { 0 } else { 1 };
            for d in 0..self.contextual_dim {
                features.push(normal(rng, ctx_spec.centroid(class, d), 1.0) as f32);
            }
            for d in 0..self.prosodic_dim {
                features.push(normal(rng, pro_spec.centroid(class, d), 1.0) as f32);
            }
            let final_class = if rng.random::<f64>() < self.label_noise {
                1 - class
            } else {
                class
            };
            truth.push(ClassId(final_class));
        }
        let cp = Dataset::new(format!("{}cp", self.name), features, dim, truth, 2)?;
        let ctx_cols: Vec<usize> = (0..self.contextual_dim).collect();
        let pro_cols: Vec<usize> = (self.contextual_dim..dim).collect();
        let c = cp.select_columns(&ctx_cols, format!("{}c", self.name))?;
        let p = cp.select_columns(&pro_cols, format!("{}p", self.name))?;
        Ok(SpeechViews { c, p, cp })
    }
}

/// Generator for a Fashion-10000-style dataset: large, binary, and easier
/// than the speech tasks (the paper notes "labelling an object as
/// fashion-related or not was easier", §VI-B.2).
#[derive(Debug, Clone)]
pub struct FashionSpec {
    /// Number of images (paper: 32 398).
    pub num_objects: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Class separation (high: easy task).
    pub separation: f64,
    /// Irreducible label ambiguity (low).
    pub label_noise: f64,
}

impl FashionSpec {
    /// The full-size Fashion analogue.
    pub fn fashion() -> Self {
        Self {
            num_objects: 32_398,
            dim: 64,
            separation: 3.0,
            label_noise: 0.02,
        }
    }

    /// Scale the object count.
    pub fn with_num_objects(mut self, n: usize) -> Self {
        self.num_objects = n;
        self
    }

    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dataset> {
        DatasetSpec::gaussian("fashion", self.num_objects, self.dim, 2)
            .with_separation(self.separation)
            .with_label_noise(self.label_noise)
            .generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    #[test]
    fn gaussian_generates_requested_shape() {
        let mut rng = seeded(1);
        let d = DatasetSpec::gaussian("t", 100, 5, 3)
            .generate(&mut rng)
            .unwrap();
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 5);
        assert_eq!(d.num_classes(), 3);
        assert!(d.truth_slice().iter().all(|c| c.index() < 3));
    }

    #[test]
    fn separation_controls_class_distance() {
        let mut rng = seeded(2);
        let near = DatasetSpec::gaussian("n", 400, 4, 2)
            .with_separation(0.2)
            .generate(&mut rng)
            .unwrap();
        let far = DatasetSpec::gaussian("f", 400, 4, 2)
            .with_separation(4.0)
            .generate(&mut rng)
            .unwrap();
        // Between-class centroid distance should scale with separation.
        let dist = |d: &Dataset| {
            let mut sums = [[0.0f64; 4]; 2];
            let mut counts = [0usize; 2];
            for i in 0..d.len() {
                let c = d.truth(i).index();
                counts[c] += 1;
                for (s, &f) in sums[c].iter_mut().zip(d.features(i)) {
                    *s += f as f64;
                }
            }
            let mut dd = 0.0;
            for (s0, s1) in sums[0].iter().zip(&sums[1]) {
                let a = s0 / counts[0] as f64;
                let b = s1 / counts[1] as f64;
                dd += (a - b).powi(2);
            }
            dd.sqrt()
        };
        assert!(
            dist(&far) > 4.0 * dist(&near),
            "far={} near={}",
            dist(&far),
            dist(&near)
        );
    }

    #[test]
    fn label_noise_flips_expected_fraction() {
        let mut rng = seeded(3);
        // With huge separation, features identify the sampled class exactly;
        // label noise makes truth disagree with the feature-implied class.
        let d = DatasetSpec::gaussian("t", 4000, 2, 2)
            .with_separation(20.0)
            .with_label_noise(0.2)
            .generate(&mut rng)
            .unwrap();
        // With 20x separation, a sign rule on the first informative dim
        // recovers the *sampled* class exactly, so truth agrees with it for
        // ~80% (or ~20%, depending on sign convention) of objects.
        let agree = (0..d.len())
            .filter(|&i| (d.features(i)[0] > 0.0) == (d.truth(i) == ClassId(1)))
            .count() as f64
            / d.len() as f64;
        let frac = agree.max(1.0 - agree);
        assert!((frac - 0.8).abs() < 0.03, "agreement {frac}");
    }

    #[test]
    fn class_balance_shifts_prior() {
        let mut rng = seeded(4);
        let d = DatasetSpec::gaussian("t", 3000, 2, 2)
            .with_class_balance(vec![0.9, 0.1])
            .generate(&mut rng)
            .unwrap();
        let prior = d.class_prior();
        assert!((prior[0] - 0.9).abs() < 0.03, "prior {prior:?}");
    }

    #[test]
    fn spec_validation_errors() {
        let mut rng = seeded(5);
        assert!(DatasetSpec::gaussian("t", 0, 2, 2)
            .generate(&mut rng)
            .is_err());
        assert!(DatasetSpec::gaussian("t", 10, 0, 2)
            .generate(&mut rng)
            .is_err());
        assert!(DatasetSpec::gaussian("t", 10, 2, 1)
            .generate(&mut rng)
            .is_err());
        assert!(DatasetSpec::gaussian("t", 10, 2, 2)
            .with_label_noise(1.5)
            .generate(&mut rng)
            .is_err());
        assert!(DatasetSpec::gaussian("t", 10, 2, 2)
            .with_separation(-1.0)
            .generate(&mut rng)
            .is_err());
        assert!(DatasetSpec::gaussian("t", 10, 2, 2)
            .with_class_balance(vec![1.0])
            .generate(&mut rng)
            .is_err());
    }

    #[test]
    fn speech_views_share_truth_and_split_dims() {
        let mut rng = seeded(6);
        let spec = SpeechSpec::speech12().with_num_objects(200);
        let views = spec.generate(&mut rng).unwrap();
        assert_eq!(views.cp.len(), 200);
        assert_eq!(views.c.dim(), 50);
        assert_eq!(views.p.dim(), 150);
        assert_eq!(views.cp.dim(), 200);
        assert_eq!(views.c.truth_slice(), views.cp.truth_slice());
        assert_eq!(views.p.truth_slice(), views.cp.truth_slice());
        assert_eq!(views.c.name(), "s12c");
        assert_eq!(views.p.name(), "s12p");
        assert_eq!(views.cp.name(), "s12cp");
        // CP's first block equals C.
        assert_eq!(views.cp.features(0)[..50], *views.c.features(0));
    }

    #[test]
    fn full_paper_prosodic_width_is_supported() {
        let mut rng = seeded(9);
        let views = SpeechSpec::speech12()
            .with_num_objects(20)
            .with_prosodic_dim(1582)
            .generate(&mut rng)
            .unwrap();
        assert_eq!(views.p.dim(), 1582);
        assert_eq!(views.cp.dim(), 50 + 1582);
    }

    #[test]
    fn speech_presets_match_paper_cardinalities() {
        assert_eq!(SpeechSpec::speech12().num_objects, 2344);
        assert_eq!(SpeechSpec::speech3().num_objects, 1898);
        assert_eq!(FashionSpec::fashion().num_objects, 32_398);
    }

    #[test]
    fn speech3_is_easier_than_speech12() {
        let s12 = SpeechSpec::speech12();
        let s3 = SpeechSpec::speech3();
        assert!(s3.contextual_separation > s12.contextual_separation);
        assert!(s3.label_noise <= s12.label_noise);
    }

    #[test]
    fn fashion_generates_binary_easy_task() {
        let mut rng = seeded(7);
        let d = FashionSpec::fashion()
            .with_num_objects(300)
            .generate(&mut rng)
            .unwrap();
        assert_eq!(d.len(), 300);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.name(), "fashion");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetSpec::gaussian("t", 50, 3, 2);
        let a = spec.generate(&mut seeded(8)).unwrap();
        let b = spec.generate(&mut seeded(8)).unwrap();
        assert_eq!(a, b);
        let c = spec.generate(&mut seeded(9)).unwrap();
        assert_ne!(a, c);
    }
}
