//! First-order optimizers.
//!
//! An [`Optimizer`] updates one parameter tensor at a time, identified by a
//! stable slot index assigned by the [`Network`](crate::Network) (two slots
//! per layer: weights, bias). Stateful optimizers (momentum, Adam) allocate
//! their buffers lazily on first sight of a slot.

/// A first-order parameter-update rule.
pub trait Optimizer {
    /// Apply one update to the parameter tensor in `slot` given its
    /// gradient. `param` and `grad` always have equal length.
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Reset any accumulated state (e.g. when re-initializing a network).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent: `p -= lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _slot: usize, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), grad.len());
        for (p, &g) in param.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn reset(&mut self) {}
}

/// SGD with classical momentum: `v = mu*v + g; p -= lr*v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient `mu` in `[0,1)`.
    pub mu: f32,
    velocity: Vec<Vec<f32>>,
}

impl Momentum {
    /// Momentum SGD.
    pub fn new(lr: f32, mu: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0,1)");
        Self {
            lr,
            mu,
            velocity: Vec::new(),
        }
    }

    fn slot_state(&mut self, slot: usize, len: usize) -> &mut Vec<f32> {
        if self.velocity.len() <= slot {
            self.velocity.resize_with(slot + 1, Vec::new);
        }
        let v = &mut self.velocity[slot];
        if v.len() != len {
            *v = vec![0.0; len];
        }
        v
    }
}

impl Optimizer for Momentum {
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), grad.len());
        let mu = self.mu;
        let lr = self.lr;
        let v = self.slot_state(slot, param.len());
        for ((p, &g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vi = mu * *vi + g;
            *p -= lr * *vi;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with bias correction — the default for both the
/// classifier and the Q-network.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (default 0.9).
    pub beta1: f32,
    /// Second-moment decay (default 0.999).
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Per-slot (first moment, second moment, step count).
    state: Vec<(Vec<f32>, Vec<f32>, u64)>,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999, 1e-8)` hyperparameters.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            state: Vec::new(),
        }
    }

    /// The per-slot moment buffers and step counts, for checkpointing.
    pub fn state(&self) -> &[(Vec<f32>, Vec<f32>, u64)] {
        &self.state
    }

    /// Restore moment buffers captured by [`Adam::state`]. Training after
    /// a restore continues bit-identically to never having stopped.
    pub fn restore_state(&mut self, state: Vec<(Vec<f32>, Vec<f32>, u64)>) {
        self.state = state;
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), grad.len());
        if self.state.len() <= slot {
            self.state
                .resize_with(slot + 1, || (Vec::new(), Vec::new(), 0));
        }
        let (m, v, t) = &mut self.state[slot];
        if m.len() != param.len() {
            *m = vec![0.0; param.len()];
            *v = vec![0.0; param.len()];
            *t = 0;
        }
        *t += 1;
        let b1t = 1.0 - self.beta1.powi(*t as i32);
        let b2t = 1.0 - self.beta2.powi(*t as i32);
        // Elementwise, so the 8-lane kernel is bit-identical to the scalar
        // loop (see `crowdrl_linalg::simd::adam_update`) and safe to use in
        // every numeric mode.
        crowdrl_linalg::simd::adam_update(
            param, grad, m, v, self.lr, self.beta1, self.beta2, self.eps, b1t, b2t,
        );
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(p) = (p - 3)^2 with each optimizer; all should converge.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = [0.0f32];
        for _ in 0..steps {
            let g = [2.0 * (p[0] - 3.0)];
            opt.update(0, &mut p, &g);
        }
        p[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((minimize(&mut opt, 100) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Momentum::new(0.05, 0.9);
        assert!((minimize(&mut opt, 200) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!((minimize(&mut opt, 300) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_update_is_exact() {
        let mut opt = Sgd::new(0.5);
        let mut p = [1.0f32, 2.0];
        opt.update(0, &mut p, &[1.0, -2.0]);
        assert_eq!(p, [0.5, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1.0, 0.5);
        let mut p = [0.0f32];
        opt.update(0, &mut p, &[1.0]); // v=1, p=-1
        opt.update(0, &mut p, &[1.0]); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
        opt.reset();
        opt.update(0, &mut p, &[1.0]); // v restarts at 1
        assert!((p[0] + 3.5).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ≈ lr * sign(g).
        let mut opt = Adam::new(0.1);
        let mut p = [0.0f32];
        opt.update(0, &mut p, &[5.0]);
        assert!((p[0] + 0.1).abs() < 1e-4, "p={}", p[0]);
    }

    #[test]
    fn optimizers_keep_slots_independent() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f32];
        let mut b = [0.0f32, 0.0];
        opt.update(0, &mut a, &[1.0]);
        opt.update(1, &mut b, &[1.0, -1.0]);
        opt.update(0, &mut a, &[1.0]);
        assert!(a[0] < 0.0);
        assert!(b[0] < 0.0 && b[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }
}
