//! Weight initialization schemes.

use crowdrl_linalg::Matrix;
use rand::Rng;

/// Sample a uniform value in `[-limit, limit]`.
fn uniform<R: Rng + ?Sized>(rng: &mut R, limit: f32) -> f32 {
    (rng.random::<f32>() * 2.0 - 1.0) * limit
}

/// Xavier/Glorot uniform initialization — appropriate for tanh/sigmoid
/// layers: `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| uniform(rng, limit)).collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// He/Kaiming uniform initialization — appropriate for ReLU layers:
/// `limit = sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / fan_in as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| uniform(rng, limit)).collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    #[test]
    fn xavier_respects_limit_and_shape() {
        let mut rng = seeded(1);
        let m = xavier_uniform(&mut rng, 100, 50);
        assert_eq!((m.rows(), m.cols()), (100, 50));
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        // Not all zeros.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn he_respects_limit() {
        let mut rng = seeded(2);
        let m = he_uniform(&mut rng, 64, 8);
        let limit = (6.0f32 / 64.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_uniform(&mut seeded(3), 4, 4);
        let b = xavier_uniform(&mut seeded(3), 4, 4);
        assert_eq!(a, b);
        let c = xavier_uniform(&mut seeded(4), 4, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn init_mean_is_near_zero() {
        let mut rng = seeded(5);
        let m = he_uniform(&mut rng, 200, 200);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.01, "mean={mean}");
    }
}
