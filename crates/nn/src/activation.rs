//! Element-wise activation functions with their derivatives.

/// The activation applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x` — used for output heads (logits / Q-values).
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = tanh(x)`.
    Tanh,
    /// `f(x) = 1 / (1 + e^-x)` — the paper's output nonlinearity; we apply
    /// softmax at the loss instead for multi-class heads, but sigmoid is
    /// available for parity.
    Sigmoid,
}

impl Activation {
    /// Apply the activation to `x`.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative `f'(x)` given the *pre-activation* `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(Activation::Identity.apply(-2.5), -2.5);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
    }

    #[test]
    fn derivative_known_values() {
        assert_eq!(Activation::Identity.derivative(3.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-0.5), 0.0);
        assert_eq!(Activation::Relu.derivative(0.5), 1.0);
        assert!((Activation::Sigmoid.derivative(0.0) - 0.25).abs() < 1e-6);
        assert!((Activation::Tanh.derivative(0.0) - 1.0).abs() < 1e-6);
    }

    proptest! {
        /// Derivatives match central finite differences.
        #[test]
        fn prop_derivative_matches_finite_difference(x in -3.0f32..3.0) {
            let h = 1e-3f32;
            for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                prop_assert!((act.derivative(x) - fd).abs() < 1e-2,
                    "{act:?} at {x}: analytic {} vs fd {}", act.derivative(x), fd);
            }
            // ReLU: skip the kink at 0.
            if x.abs() > 0.01 {
                let act = Activation::Relu;
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                prop_assert!((act.derivative(x) - fd).abs() < 1e-2);
            }
        }

        #[test]
        fn prop_sigmoid_bounded(x in -100.0f32..100.0) {
            let y = Activation::Sigmoid.apply(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y.is_finite());
        }
    }
}
