//! A feed-forward network: a stack of [`Dense`] layers with training
//! plumbing (forward, backward, optimizer dispatch, parameter sync).

use crate::activation::Activation;
use crate::layer::Dense;
use crate::optimizer::Optimizer;
use crowdrl_linalg::{Matrix, NumericMode};
use rand::Rng;

/// A multi-layer perceptron.
///
/// Built from a list of layer sizes and a hidden activation; the output
/// layer is always [`Activation::Identity`] so heads can apply softmax (via
/// the loss) or use raw values as Q-estimates.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Dense>,
    /// Reused clip buffer for [`Network::step`] — avoids one allocation
    /// per tensor per optimizer step when gradient clipping is on.
    clip_scratch: Vec<f32>,
}

impl Network {
    /// Build an MLP with `sizes = [in, h1, ..., out]` and `hidden`
    /// activation on all non-final layers.
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn mlp<R: Rng + ?Sized>(sizes: &[usize], hidden: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_last = layers.len() == sizes.len() - 2;
            let act = if is_last {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Dense::new(w[0], w[1], act, rng));
        }
        Self {
            layers,
            clip_scratch: Vec::new(),
        }
    }

    /// Set the numeric mode on every layer (see [`Dense::set_numeric_mode`]
    /// for which paths dispatch on it). `Reference` (the default) keeps the
    /// bit-pinned blocked kernels; `Fast` enables the SIMD kernels for
    /// training forwards/backwards and batched inference.
    pub fn set_numeric_mode(&mut self, mode: NumericMode) {
        for layer in &mut self.layers {
            layer.set_numeric_mode(mode);
        }
    }

    /// The network's numeric mode (uniform across layers).
    pub fn numeric_mode(&self) -> NumericMode {
        self.layers
            .first()
            .map(Dense::numeric_mode)
            .unwrap_or_default()
    }

    /// Total scratch-buffer accounting across layers: `(reuses, bytes)`
    /// served from reused buffers instead of fresh allocations (see the
    /// `serve.scratch.*` obs counters).
    pub fn scratch_stats(&self) -> (u64, u64) {
        self.layers
            .iter()
            .map(Dense::scratch_stats)
            .fold((0, 0), |(reuses, bytes), (r, b)| (reuses + r, bytes + b))
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("network has layers").input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("network has layers").output_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Training forward pass (caches per-layer state).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first_mut().expect("network has layers");
        let mut h = first.forward(x);
        for layer in rest {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference forward pass (no caching, usable on `&self`).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first().expect("network has layers");
        let mut h = first.forward_inference(x);
        for layer in rest {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// Inference forward where the input factors over the cartesian
    /// product of `left` and `right` row blocks: the full input of pair
    /// `(i, j)` is `concat(left.row(i), right.row(j))` and its output
    /// lands in row `i * right.rows() + j` (row-major, left-outer).
    ///
    /// The first layer computes each block's partial pre-activation once
    /// per *distinct* row and sums them per pair (see
    /// [`Dense::forward_inference_outer`]); the remaining layers run as
    /// one batched forward over all pairs. When many left rows pair with
    /// many right rows this removes most of the first layer's
    /// multiply-adds. Matches [`Network::forward_inference`] on the
    /// materialized pair matrix up to f32 rounding in the first layer's
    /// reduction order.
    pub fn forward_inference_outer(&self, left: &Matrix, right: &Matrix) -> Matrix {
        let mut h = self.layers[0].forward_inference_outer(left, right);
        for layer in &self.layers[1..] {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// The first layer — the decide path's activation cache and interval
    /// bounds work against its weights directly.
    pub fn first_layer(&self) -> &Dense {
        &self.layers[0]
    }

    /// Run layers `1..` over an already-activated first-layer output.
    /// Combined with externally assembled first-layer activations (cached
    /// annotator partials resumed with run-level features), this is
    /// bit-identical per row to [`Network::forward_inference_outer`]
    /// because every layer forward is row-independent.
    pub fn tail_forward_inference(&self, h: &Matrix) -> Matrix {
        let mut h = h.clone();
        for layer in &self.layers[1..] {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// Propagate elementwise bounds on the first layer's *activated*
    /// output through layers `1..` (see [`Dense::forward_interval`] for
    /// the f32 soundness argument). Returns `(lo, hi)` bounds on the
    /// network output.
    pub fn tail_forward_interval(&self, lo: &[f32], hi: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut lo = lo.to_vec();
        let mut hi = hi.to_vec();
        for layer in &self.layers[1..] {
            let (l, h) = layer.forward_interval(&lo, &hi);
            lo = l;
            hi = h;
        }
        (lo, hi)
    }

    /// Backpropagate `d_out = dL/d(output)`, accumulating layer gradients.
    /// The first layer skips its `dL/dx` product (no caller consumes the
    /// network's input gradient); the skip is bit-invisible to every
    /// accumulated gradient.
    pub fn backward(&mut self, d_out: &Matrix) {
        let (first, rest) = self.layers.split_first_mut().expect("network has layers");
        match rest.split_last_mut() {
            None => first.backward_params_only(d_out),
            Some((last, mid)) => {
                let mut g = last.backward(d_out);
                for layer in mid.iter_mut().rev() {
                    g = layer.backward(&g);
                }
                first.backward_params_only(&g);
            }
        }
    }

    /// Clear all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Apply one optimizer step using the accumulated gradients, with
    /// optional gradient-norm clipping (`max_grad` per tensor, infinity
    /// norm).
    pub fn step(&mut self, opt: &mut dyn Optimizer, max_grad: Option<f32>) {
        let clip_scratch = &mut self.clip_scratch;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (pi, (param, grad)) in layer.params_and_grads().into_iter().enumerate() {
                let slot = li * 2 + pi;
                if let Some(limit) = max_grad {
                    clip_scratch.clear();
                    clip_scratch.extend_from_slice(grad);
                    crowdrl_linalg::ops::clip_inplace(clip_scratch, limit);
                    opt.update(slot, param, clip_scratch);
                } else {
                    opt.update(slot, param, grad);
                }
            }
        }
    }

    /// Copy all parameters from `other` (target-network sync). Panics on
    /// architecture mismatch.
    pub fn copy_params_from(&mut self, other: &Network) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "layer count mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.copy_params_from(src);
        }
    }

    /// Soft target update: `θ_self = (1 - tau) θ_self + tau θ_other`.
    pub fn blend_params_from(&mut self, other: &Network, tau: f32) {
        assert!((0.0..=1.0).contains(&tau), "tau must be in [0,1]");
        let theirs = other.flatten_params();
        let mut ours = self.flatten_params();
        for (o, t) in ours.iter_mut().zip(&theirs) {
            *o = (1.0 - tau) * *o + tau * t;
        }
        self.load_params(&ours);
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Serialize all parameters into one flat vector.
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Load parameters from a flat vector produced by
    /// [`Network::flatten_params`]. Panics on length mismatch.
    pub fn load_params(&mut self, data: &[f32]) {
        assert_eq!(
            data.len(),
            self.param_count(),
            "parameter buffer length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&data[offset..]);
        }
    }

    /// Finite-difference gradient check: returns the maximum relative error
    /// between analytic and numeric gradients of `loss_fn` over all
    /// parameters. Test-support API; slow by design.
    pub fn gradient_check(
        &mut self,
        x: &Matrix,
        loss_fn: &dyn Fn(&Matrix) -> (f32, Matrix),
        h: f32,
    ) -> f32 {
        // Analytic gradients.
        self.zero_grad();
        let out = self.forward(x);
        let (_, d_out) = loss_fn(&out);
        self.backward(&d_out);
        let analytic: Vec<f32> = {
            let mut grads = Vec::new();
            for layer in &mut self.layers {
                for (_, grad) in layer.params_and_grads() {
                    grads.extend_from_slice(grad);
                }
            }
            grads
        };

        let mut params = self.flatten_params();
        let mut max_rel = 0.0f32;
        for i in 0..params.len() {
            let orig = params[i];
            params[i] = orig + h;
            self.load_params(&params);
            let (lp, _) = loss_fn(&self.forward_inference(x));
            params[i] = orig - h;
            self.load_params(&params);
            let (lm, _) = loss_fn(&self.forward_inference(x));
            params[i] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            let denom = analytic[i].abs().max(numeric.abs()).max(1e-4);
            max_rel = max_rel.max((analytic[i] - numeric).abs() / denom);
        }
        self.load_params(&params);
        max_rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optimizer::{Adam, Sgd};
    use crowdrl_types::rng::seeded;

    #[test]
    fn mlp_shapes() {
        let mut rng = seeded(1);
        let net = Network::mlp(&[4, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.num_layers(), 2);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut rng = seeded(2);
        let mut net = Network::mlp(&[3, 5, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 0.0, -1.0]]);
        let train = net.forward(&x);
        let infer = net.forward_inference(&x);
        assert_eq!(train, infer);
        assert_eq!(train.rows(), 2);
        assert_eq!(train.cols(), 2);
    }

    #[test]
    fn forward_inference_outer_matches_pair_forward() {
        let mut rng = seeded(21);
        let net = Network::mlp(&[6, 8, 4, 1], Activation::Relu, &mut rng);
        let left = Matrix::from_rows(&[&[0.2, -0.5, 0.9, 0.1], &[-1.1, 0.3, 0.0, 0.7]]);
        let right = Matrix::from_rows(&[&[0.4, -0.2], &[1.3, 0.6], &[-0.8, 0.0]]);
        let out = net.forward_inference_outer(&left, &right);
        assert_eq!(out.rows(), 6);
        assert_eq!(out.cols(), 1);
        for i in 0..left.rows() {
            for j in 0..right.rows() {
                let mut full: Vec<f32> = left.row(i).to_vec();
                full.extend_from_slice(right.row(j));
                let want = net
                    .forward_inference(&Matrix::from_vec(1, 6, full))
                    .get(0, 0);
                let got = out.get(i * right.rows() + j, 0);
                assert!(
                    (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                    "pair ({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn cached_partial_resume_matches_outer_bitwise() {
        // The decide-path contract: accumulating the first layer's
        // right-block partial in two column chunks (cacheable prefix, then
        // run-level suffix), adding the bias, combining with the left
        // partial and running the tail must reproduce
        // `forward_inference_outer` bit for bit.
        let mut rng = seeded(31);
        let net = Network::mlp(&[10, 8, 4, 1], Activation::Relu, &mut rng);
        let left = Matrix::from_rows(&[&[0.2f32, -0.5, 0.9, 0.1], &[-1.1, 0.3, 0.0, 0.7]]);
        let right = Matrix::from_rows(&[
            &[0.4f32, -0.2, 0.0, 1.5, -0.3, 0.8],
            &[1.3, 0.6, -0.4, 0.0, 0.2, -1.0],
            &[-0.8, 0.0, 0.5, 0.9, -1.2, 0.1],
        ]);
        let reference = net.forward_inference_outer(&left, &right);

        let first = net.first_layer();
        let lp = first.partial_matmul(&left, 0);
        let h1 = first.output_dim();
        let mut combined = Matrix::zeros(left.rows() * right.rows(), h1);
        for j in 0..right.rows() {
            // Cacheable prefix: first 4 of the 6 right columns.
            let mut partial = vec![0.0f32; h1];
            first.accumulate_partial(&mut partial, &right.row(j)[..4], left.cols());
            // Resume with the remaining 2 columns, then bias.
            let mut rp = partial.clone();
            first.accumulate_partial(&mut rp, &right.row(j)[4..], left.cols() + 4);
            for (v, b) in rp.iter_mut().zip(first.bias()) {
                *v += b;
            }
            for i in 0..left.rows() {
                let dst = combined.row_mut(i * right.rows() + j);
                for (h, d) in dst.iter_mut().enumerate() {
                    *d = first.activation().apply(lp.get(i, h) + rp[h]);
                }
            }
        }
        let out = net.tail_forward_inference(&combined);
        assert_eq!(out.rows(), reference.rows());
        for r in 0..out.rows() {
            assert_eq!(
                out.get(r, 0).to_bits(),
                reference.get(r, 0).to_bits(),
                "row {r}"
            );
        }
    }

    #[test]
    fn interval_bounds_contain_all_pair_outputs() {
        // Bound soundness in f32: for every left row, the interval built
        // from the column envelope of the left partials must contain the
        // exact kernel output for every (left, right) pair.
        for seed in 40..48u64 {
            let mut rng = seeded(seed);
            let net = Network::mlp(&[9, 12, 6, 1], Activation::Relu, &mut rng);
            let mut randf = |n: usize| -> Vec<f32> {
                (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
            };
            let left = Matrix::from_vec(9, 5, randf(45));
            let right = Matrix::from_vec(5, 4, {
                let mut v = randf(20);
                v[3] = 0.0; // exercise the kernel's zero-skip
                v[7] = 0.0;
                v
            });
            let reference = net.forward_inference_outer(&left, &right);

            let first = net.first_layer();
            let lp = first.partial_matmul(&left, 0);
            let h1 = first.output_dim();
            let mut env_lo = vec![f32::INFINITY; h1];
            let mut env_hi = vec![f32::NEG_INFINITY; h1];
            for i in 0..lp.rows() {
                for (h, &v) in lp.row(i).iter().enumerate() {
                    env_lo[h] = env_lo[h].min(v);
                    env_hi[h] = env_hi[h].max(v);
                }
            }
            for j in 0..right.rows() {
                let mut rp = vec![0.0f32; h1];
                first.accumulate_partial(&mut rp, right.row(j), left.cols());
                for (v, b) in rp.iter_mut().zip(first.bias()) {
                    *v += b;
                }
                let act = first.activation();
                let l0_lo: Vec<f32> = (0..h1).map(|h| act.apply(env_lo[h] + rp[h])).collect();
                let l0_hi: Vec<f32> = (0..h1).map(|h| act.apply(env_hi[h] + rp[h])).collect();
                let (t_lo, t_hi) = net.tail_forward_interval(&l0_lo, &l0_hi);
                for i in 0..left.rows() {
                    let q = reference.get(i * right.rows() + j, 0);
                    assert!(
                        t_lo[0] <= q && q <= t_hi[0],
                        "seed {seed} pair ({i},{j}): {q} outside [{}, {}]",
                        t_lo[0],
                        t_hi[0]
                    );
                }
            }
        }
    }

    #[test]
    fn fast_mode_matches_reference_within_tolerance() {
        // Full-network parity between the SIMD fast path and the reference
        // kernels: training forward, inference forward, and one optimizer
        // step. The modes differ only in reduction order, so outputs agree
        // to the documented fast-kernel tolerance (1e-4 relative — see
        // crowdrl_linalg::simd).
        let mut rng = seeded(77);
        let reference = Network::mlp(&[12, 32, 16, 4], Activation::Relu, &mut rng);
        let mut fast = reference.clone();
        fast.set_numeric_mode(NumericMode::Fast);
        assert_eq!(fast.numeric_mode(), NumericMode::Fast);
        assert_eq!(reference.numeric_mode(), NumericMode::Reference);

        let mut vals = seeded(78);
        let x = Matrix::from_vec(
            9,
            12,
            (0..108).map(|_| vals.random::<f32>() * 2.0 - 1.0).collect(),
        );
        let want = reference.forward_inference(&x);
        let got = fast.forward_inference(&x);
        for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
            assert!(
                (w - g).abs() <= 1e-4 * w.abs().max(1.0),
                "inference diverged: {w} vs {g}"
            );
        }

        // One training step in each mode stays within tolerance too.
        let mut reference = reference;
        let target = Matrix::zeros(9, 4);
        for net in [&mut reference, &mut fast] {
            net.zero_grad();
            let out = net.forward(&x);
            let (_, d) = loss::huber(&out, &target, 1.0);
            net.backward(&d);
            net.step(&mut Adam::new(1e-2), Some(1.0));
        }
        for (w, g) in reference.flatten_params().iter().zip(fast.flatten_params()) {
            assert!(
                (w - g).abs() <= 1e-4 * w.abs().max(1.0),
                "post-step params diverged: {w} vs {g}"
            );
        }
    }

    #[test]
    fn param_round_trip_preserves_outputs() {
        let mut rng = seeded(3);
        let src = Network::mlp(&[2, 4, 2], Activation::Relu, &mut rng);
        let mut dst = Network::mlp(&[2, 4, 2], Activation::Relu, &mut rng);
        dst.load_params(&src.flatten_params());
        let x = Matrix::from_rows(&[&[0.5, -0.5]]);
        assert_eq!(src.forward_inference(&x), dst.forward_inference(&x));
    }

    #[test]
    fn copy_and_blend_params() {
        let mut rng = seeded(4);
        let src = Network::mlp(&[2, 3, 1], Activation::Relu, &mut rng);
        let mut dst = Network::mlp(&[2, 3, 1], Activation::Relu, &mut rng);
        dst.copy_params_from(&src);
        assert_eq!(src.flatten_params(), dst.flatten_params());

        let mut half = Network::mlp(&[2, 3, 1], Activation::Relu, &mut rng);
        let before = half.flatten_params();
        half.blend_params_from(&src, 0.5);
        let after = half.flatten_params();
        for ((b, a), s) in before.iter().zip(&after).zip(src.flatten_params()) {
            assert!((a - 0.5 * (b + s)).abs() < 1e-6);
        }
    }

    #[test]
    fn training_reduces_cross_entropy_on_xor() {
        let mut rng = seeded(5);
        let mut net = Network::mlp(&[2, 16, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let mut opt = Adam::new(0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..400 {
            net.zero_grad();
            let out = net.forward(&x);
            let (l, d) = loss::softmax_cross_entropy(&out, &y, None);
            net.backward(&d);
            net.step(&mut opt, None);
            first.get_or_insert(l);
            last = l;
        }
        assert!(last < 0.1 * first.unwrap(), "first={:?} last={last}", first);
        // Predictions match XOR.
        let out = net.forward_inference(&x);
        for (i, want) in [0usize, 1, 1, 0].into_iter().enumerate() {
            assert_eq!(crowdrl_linalg::ops::argmax(out.row(i)), want, "row {i}");
        }
    }

    #[test]
    fn gradient_check_passes_for_ce_loss() {
        let mut rng = seeded(6);
        let mut net = Network::mlp(&[3, 4, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.2, -0.1, 0.4], &[-0.3, 0.5, 0.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0], &[0.3, 0.7]]);
        let loss_fn = move |out: &Matrix| loss::softmax_cross_entropy(out, &targets, None);
        let max_rel = net.gradient_check(&x, &loss_fn, 1e-2);
        assert!(max_rel < 0.05, "max relative gradient error {max_rel}");
    }

    #[test]
    fn gradient_check_passes_for_huber_loss() {
        let mut rng = seeded(7);
        let mut net = Network::mlp(&[2, 5, 1], Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.7, -0.2]]);
        let target = Matrix::from_rows(&[&[0.3]]);
        let loss_fn = move |out: &Matrix| loss::huber(out, &target, 1.0);
        let max_rel = net.gradient_check(&x, &loss_fn, 1e-2);
        assert!(max_rel < 0.05, "max relative gradient error {max_rel}");
    }

    #[test]
    fn step_with_clipping_bounds_update() {
        let mut rng = seeded(8);
        let mut net = Network::mlp(&[1, 1], Activation::Identity, &mut rng);
        let before = net.flatten_params();
        net.zero_grad();
        let out = net.forward(&Matrix::from_rows(&[&[100.0]]));
        let (_, d) = loss::mse(&out, &Matrix::from_rows(&[&[-1000.0]]));
        net.backward(&d);
        net.step(&mut Sgd::new(1.0), Some(0.5));
        let after = net.flatten_params();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() <= 0.5 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "need at least input and output sizes")]
    fn mlp_rejects_single_size() {
        let mut rng = seeded(9);
        let _ = Network::mlp(&[4], Activation::Relu, &mut rng);
    }
}
