//! Dense (fully-connected) layer with cached forward state for backprop.

use crate::activation::Activation;
use crate::init;
use crowdrl_linalg::{Matrix, NumericMode};
use rand::Rng;

/// Copy `src` into `slot`, reusing the existing allocation when shapes
/// match (steady-state training loops hit the reuse arm every step).
/// Returns the bytes reused, or 0 when a fresh allocation was needed.
fn copy_into(slot: &mut Option<Matrix>, src: &Matrix) -> usize {
    match slot {
        Some(m) if m.rows() == src.rows() && m.cols() == src.cols() => {
            m.as_mut_slice().copy_from_slice(src.as_slice());
            src.len() * std::mem::size_of::<f32>()
        }
        _ => {
            *slot = Some(src.clone());
            0
        }
    }
}

/// A dense layer: `y = act(x W + b)` with `W: [in x out]`, `b: [out]`.
///
/// The layer caches its input and pre-activation during [`Dense::forward`]
/// so [`Dense::backward`] can compute gradients; gradients accumulate into
/// `grad_w`/`grad_b` until [`Dense::zero_grad`] clears them.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    /// Cached input from the last forward pass.
    input: Option<Matrix>,
    /// Cached pre-activation from the last forward pass.
    preact: Option<Matrix>,
    /// Scratch for `d_pre` in [`Dense::backward`], reused across steps.
    bwd_dpre: Option<Matrix>,
    /// Scratch-buffer reuse count (hits of the in-place `copy_into` arm).
    scratch_reuses: u64,
    /// Bytes served from reused scratch instead of fresh allocations.
    scratch_bytes: u64,
    /// Which matmul kernels [`Dense::forward`]/[`Dense::backward`]/
    /// [`Dense::forward_inference`] dispatch to. `Reference` (the default)
    /// is the bit-pinned blocked kernel; `Fast` is the SIMD kernel with a
    /// different (documented) reduction order. The decide-path entry
    /// points — [`Dense::forward_inference_outer`]'s partial matmuls,
    /// [`Dense::partial_matmul`], [`Dense::accumulate_partial`] and
    /// [`Dense::forward_interval`] — stay on the exact reference op order
    /// in *both* modes, preserving the first-layer prefix-cache bit
    /// contract (see DESIGN.md §14).
    mode: NumericMode,
}

impl Dense {
    /// Create a layer with activation-appropriate initialization
    /// (He for ReLU, Xavier otherwise) and zero biases.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "layer dims must be positive"
        );
        let w = match act {
            Activation::Relu => init::he_uniform(rng, input_dim, output_dim),
            _ => init::xavier_uniform(rng, input_dim, output_dim),
        };
        Self {
            w,
            b: vec![0.0; output_dim],
            act,
            grad_w: Matrix::zeros(input_dim, output_dim),
            grad_b: vec![0.0; output_dim],
            input: None,
            preact: None,
            bwd_dpre: None,
            scratch_reuses: 0,
            scratch_bytes: 0,
            mode: NumericMode::Reference,
        }
    }

    /// Scratch-buffer accounting: `(reuses, bytes)` served from reused
    /// buffers since construction (see `serve.scratch.*` obs counters).
    #[inline]
    pub fn scratch_stats(&self) -> (u64, u64) {
        (self.scratch_reuses, self.scratch_bytes)
    }

    /// Set the numeric mode for the train/inference matmuls (see the
    /// `mode` field docs for which paths are affected).
    #[inline]
    pub fn set_numeric_mode(&mut self, mode: NumericMode) {
        self.mode = mode;
    }

    /// The layer's numeric mode.
    #[inline]
    pub fn numeric_mode(&self) -> NumericMode {
        self.mode
    }

    /// Input dimensionality.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    #[inline]
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation.
    #[inline]
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Forward pass over a batch (`x: [batch x in]`), caching state for
    /// backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "layer input dim mismatch");
        let mut pre = x.matmul_mode(&self.w, self.mode);
        pre.add_row_broadcast(&self.b);
        // Snapshot input/pre-activation into reused scratch, then turn
        // `pre` into the activated output in place — same bits as the
        // previous clone-then-map, one fewer allocation per step.
        let reused = copy_into(&mut self.input, x) + copy_into(&mut self.preact, &pre);
        if reused > 0 {
            self.scratch_reuses += 1;
            self.scratch_bytes += reused as u64;
        }
        let act = self.act;
        pre.map_inplace(|v| act.apply(v));
        pre
    }

    /// Forward pass without caching — for inference and target networks.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "layer input dim mismatch");
        let mut pre = x.matmul_mode(&self.w, self.mode);
        pre.add_row_broadcast(&self.b);
        let act = self.act;
        pre.map_inplace(|v| act.apply(v));
        pre
    }

    /// Inference forward over the cartesian product of two input blocks:
    /// the effective input of pair `(i, j)` is
    /// `concat(left.row(i), right.row(j))` and the output row for that
    /// pair is `i * right.rows() + j` (row-major, left-outer).
    ///
    /// Instead of materializing the `left.rows() * right.rows()` pair
    /// matrix, each block's partial pre-activation is computed once per
    /// *distinct* row (the bias folds into the right block) and the
    /// pair's pre-activation is their sum. Matches
    /// [`Dense::forward_inference`] on the materialized pairs up to f32
    /// rounding — the split associates the dot-product reduction
    /// differently.
    pub fn forward_inference_outer(&self, left: &Matrix, right: &Matrix) -> Matrix {
        assert_eq!(
            left.cols() + right.cols(),
            self.input_dim(),
            "layer input dim mismatch"
        );
        let h = self.output_dim();
        // Split W by input rows: the first `left.cols()` rows multiply
        // the left block, the remaining rows the right block.
        let mut w_left = Matrix::zeros(left.cols(), h);
        for r in 0..left.cols() {
            w_left.row_mut(r).copy_from_slice(self.w.row(r));
        }
        let mut w_right = Matrix::zeros(right.cols(), h);
        for r in 0..right.cols() {
            w_right
                .row_mut(r)
                .copy_from_slice(self.w.row(left.cols() + r));
        }
        let lp = left.matmul(&w_left);
        let mut rp = right.matmul(&w_right);
        rp.add_row_broadcast(&self.b);

        let act = self.act;
        let mut out = Matrix::zeros(left.rows() * right.rows(), h);
        for i in 0..left.rows() {
            let lrow = lp.row(i);
            for j in 0..right.rows() {
                let dst = out.row_mut(i * right.rows() + j);
                for ((d, &l), &r) in dst.iter_mut().zip(lrow).zip(rp.row(j)) {
                    *d = act.apply(l + r);
                }
            }
        }
        out
    }

    /// The bias vector (read-only). The factored decide path adds it to
    /// resumed partial pre-activations exactly the way
    /// [`forward_inference_outer`](Dense::forward_inference_outer) does.
    #[inline]
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// The sub-matmul of [`Dense::forward_inference_outer`] for one input
    /// block: weight rows `[col_offset, col_offset + x.cols())` are copied
    /// into a dense block and multiplied — the identical op sequence the
    /// outer forward runs for its `left`/`right` partials, so results are
    /// bit-identical to that path. No bias, no activation.
    pub fn partial_matmul(&self, x: &Matrix, col_offset: usize) -> Matrix {
        assert!(
            col_offset + x.cols() <= self.input_dim(),
            "partial block exceeds layer input"
        );
        let h = self.output_dim();
        let mut w_block = Matrix::zeros(x.cols(), h);
        for r in 0..x.cols() {
            w_block
                .row_mut(r)
                .copy_from_slice(self.w.row(col_offset + r));
        }
        x.matmul(&w_block)
    }

    /// Accumulate one input row's partial pre-activation into `acc`,
    /// where `x` occupies input columns `[col_offset, col_offset +
    /// x.len())`. Replicates the matmul kernel's per-element op sequence —
    /// terms added in ascending-`k` order, `a == 0.0` terms skipped,
    /// separate multiply then add-assign roundings — so accumulating a
    /// row in two consecutive column blocks is bit-identical to one
    /// `partial_matmul` over the concatenated row. This is what lets the
    /// decide path cache the annotator-specific prefix of the first-layer
    /// partial and resume with the run-level suffix later.
    pub fn accumulate_partial(&self, acc: &mut [f32], x: &[f32], col_offset: usize) {
        assert_eq!(acc.len(), self.output_dim(), "partial width mismatch");
        assert!(
            col_offset + x.len() <= self.input_dim(),
            "partial block exceeds layer input"
        );
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let w_row = self.w.row(col_offset + k);
            for (o, &b) in acc.iter_mut().zip(w_row) {
                *o += a * b;
            }
        }
    }

    /// Interval forward: given elementwise bounds `lo[i] <= x[i] <= hi[i]`
    /// on the input, return bounds on the output that are *sound in f32
    /// arithmetic* against [`Dense::forward_inference`]'s kernel.
    ///
    /// Soundness argument: the kernel accumulates `acc += x[k] * w[k][o]`
    /// in ascending-`k` order with correctly-rounded ops, and correctly
    /// rounded `+`/`*` are monotone in each argument. Accumulating the
    /// sign-selected endpoint (`hi` for positive weights, `lo` for
    /// negative) in the same order therefore stays `>=` (resp. `<=`) the
    /// true accumulation after every step, including steps the kernel
    /// skips for `x[k] == 0.0` (skipping adds exact zero; the selected
    /// endpoint's term has the sign of the bound being grown). Bias
    /// addition and the (monotone) activation preserve the ordering.
    pub fn forward_interval(&self, lo: &[f32], hi: &[f32]) -> (Vec<f32>, Vec<f32>) {
        assert_eq!(lo.len(), self.input_dim(), "interval width mismatch");
        assert_eq!(hi.len(), self.input_dim(), "interval width mismatch");
        let h = self.output_dim();
        let mut out_lo = vec![0.0f32; h];
        let mut out_hi = vec![0.0f32; h];
        for k in 0..lo.len() {
            let w_row = self.w.row(k);
            let (l, u) = (lo[k], hi[k]);
            for o in 0..h {
                let w = w_row[o];
                let (tl, tu) = if w >= 0.0 { (l, u) } else { (u, l) };
                out_lo[o] += tl * w;
                out_hi[o] += tu * w;
            }
        }
        let act = self.act;
        for o in 0..h {
            out_lo[o] += self.b[o];
            out_hi[o] += self.b[o];
            out_lo[o] = act.apply(out_lo[o]);
            out_hi[o] = act.apply(out_hi[o]);
        }
        (out_lo, out_hi)
    }

    /// Backward pass: given `d_out = dL/dy`, accumulate `dL/dW`, `dL/db`
    /// and return `dL/dx`.
    ///
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        self.backward_accumulate(d_out);
        let d_pre = self.bwd_dpre.as_ref().expect("set by backward_accumulate");
        d_pre.matmul_nt_mode(&self.w, self.mode)
    }

    /// Backward pass that accumulates `dL/dW` and `dL/db` but skips the
    /// `dL/dx` product. For a network's *first* layer the input gradient
    /// has no consumer, so the skip saves one full matmul per step and is
    /// bit-invisible to every parameter and gradient.
    pub fn backward_params_only(&mut self, d_out: &Matrix) {
        self.backward_accumulate(d_out);
    }

    fn backward_accumulate(&mut self, d_out: &Matrix) {
        let input = self.input.as_ref().expect("backward before forward");
        let preact = self.preact.as_ref().expect("backward before forward");
        assert_eq!(d_out.rows(), preact.rows(), "backward batch mismatch");
        assert_eq!(d_out.cols(), self.output_dim(), "backward dim mismatch");

        // d_pre = d_out ⊙ act'(pre), built in reused scratch.
        let reused = copy_into(&mut self.bwd_dpre, d_out);
        if reused > 0 {
            self.scratch_reuses += 1;
            self.scratch_bytes += reused as u64;
        }
        let d_pre = self.bwd_dpre.as_mut().expect("scratch just filled");
        for i in 0..d_pre.rows() {
            let pre_row = preact.row(i);
            for (dp, &p) in d_pre.row_mut(i).iter_mut().zip(pre_row) {
                *dp *= self.act.derivative(p);
            }
        }

        // dW += x^T d_pre ; db += col_sums(d_pre)
        // Reference mode routes the x^T d_pre product through a temporary
        // and a single add_assign — gradient accumulation rounding is
        // pinned by the `gradients_accumulate_until_zeroed` semantics.
        // Fast mode fuses the product into `grad_w` (no temporary, no
        // second pass); its rounding is covered by the fast-mode tolerance
        // contract, not the bit pin.
        match self.mode {
            NumericMode::Reference => self.grad_w.add_assign(&input.matmul_tn(d_pre)),
            NumericMode::Fast => {
                crowdrl_linalg::simd::matmul_tn_acc_fast(input, d_pre, &mut self.grad_w)
            }
        }
        for (gb, s) in self.grad_b.iter_mut().zip(d_pre.col_sums()) {
            *gb += s;
        }
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.scale(0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// (weights, bias) as mutable slices paired with their gradients, for
    /// the optimizer: `[(param, grad); 2]`.
    pub fn params_and_grads(&mut self) -> [(&mut [f32], &[f32]); 2] {
        // Split borrows: weights+grad_w, bias+grad_b.
        let Dense {
            w,
            b,
            grad_w,
            grad_b,
            ..
        } = self;
        [
            (w.as_mut_slice(), grad_w.as_slice()),
            (b.as_mut_slice(), grad_b.as_slice()),
        ]
    }

    /// Copy parameters from another layer of identical shape (target-network
    /// sync).
    pub fn copy_params_from(&mut self, other: &Dense) {
        assert_eq!(self.input_dim(), other.input_dim());
        assert_eq!(self.output_dim(), other.output_dim());
        self.w = other.w.clone();
        self.b = other.b.clone();
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Flatten parameters into `out` (serialization).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Read parameters back from a flat slice; returns the number consumed.
    pub fn read_params(&mut self, data: &[f32]) -> usize {
        let n = self.param_count();
        assert!(data.len() >= n, "parameter buffer too short");
        let (wpart, bpart) = data[..n].split_at(self.w.len());
        self.w.as_mut_slice().copy_from_slice(wpart);
        self.b.copy_from_slice(bpart);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    #[test]
    fn forward_identity_layer_is_affine() {
        let mut rng = seeded(1);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        // Overwrite with known weights.
        layer.read_params(&[1.0, 0.0, 0.0, 1.0, 0.5, -0.5]);
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[2.5, 2.5]);
        // Inference path agrees.
        let yi = layer.forward_inference(&x);
        assert_eq!(y, yi);
    }

    #[test]
    fn relu_layer_clamps_negative_preactivations() {
        let mut rng = seeded(2);
        let mut layer = Dense::new(1, 2, Activation::Relu, &mut rng);
        layer.read_params(&[1.0, -1.0, 0.0, 0.0]);
        let y = layer.forward(&Matrix::from_rows(&[&[3.0]]));
        assert_eq!(y.as_slice(), &[3.0, 0.0]);
    }

    #[test]
    fn forward_inference_outer_matches_materialized_pairs() {
        let mut rng = seeded(10);
        let layer = Dense::new(5, 4, Activation::Relu, &mut rng);
        let left = Matrix::from_rows(&[&[0.3, -0.1, 0.7], &[1.2, 0.0, -0.4]]);
        let right = Matrix::from_rows(&[&[0.5, -0.9], &[-0.2, 0.4], &[0.0, 1.1]]);
        let out = layer.forward_inference_outer(&left, &right);
        assert_eq!(out.rows(), 6);
        assert_eq!(out.cols(), 4);
        for i in 0..left.rows() {
            for j in 0..right.rows() {
                let mut full: Vec<f32> = left.row(i).to_vec();
                full.extend_from_slice(right.row(j));
                let x = Matrix::from_vec(1, 5, full);
                let want = layer.forward_inference(&x);
                for (got, want) in out.row(i * right.rows() + j).iter().zip(want.row(0)) {
                    assert!(
                        (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                        "pair ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "layer input dim mismatch")]
    fn forward_inference_outer_rejects_wrong_split() {
        let mut rng = seeded(11);
        let layer = Dense::new(4, 2, Activation::Relu, &mut rng);
        let left = Matrix::from_rows(&[&[0.1, 0.2]]);
        let right = Matrix::from_rows(&[&[0.3]]);
        let _ = layer.forward_inference_outer(&left, &right);
    }

    #[test]
    fn backward_computes_known_gradients() {
        let mut rng = seeded(3);
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng);
        layer.read_params(&[0.5, -0.5, 0.0]);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let _ = layer.forward(&x);
        let dx = layer.backward(&Matrix::from_rows(&[&[1.0]]));
        // dL/dx = d_pre * W^T = [0.5, -0.5]
        assert_eq!(dx.as_slice(), &[0.5, -0.5]);
        // dW = x^T * d_pre = [1, 2]^T
        let [(_, gw), (_, gb)] = layer.params_and_grads();
        assert_eq!(gw, &[1.0, 2.0]);
        assert_eq!(gb, &[1.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = seeded(4);
        let mut layer = Dense::new(1, 1, Activation::Identity, &mut rng);
        layer.read_params(&[1.0, 0.0]);
        let x = Matrix::from_rows(&[&[2.0]]);
        for _ in 0..3 {
            let _ = layer.forward(&x);
            let _ = layer.backward(&Matrix::from_rows(&[&[1.0]]));
        }
        {
            let [(_, gw), _] = layer.params_and_grads();
            assert_eq!(gw, &[6.0]);
        }
        layer.zero_grad();
        let [(_, gw), _] = layer.params_and_grads();
        assert_eq!(gw, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = seeded(5);
        let mut layer = Dense::new(1, 1, Activation::Identity, &mut rng);
        let _ = layer.backward(&Matrix::from_rows(&[&[1.0]]));
    }

    #[test]
    fn param_round_trip() {
        let mut rng = seeded(6);
        let src = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let mut buf = Vec::new();
        src.write_params(&mut buf);
        assert_eq!(buf.len(), src.param_count());
        let mut dst = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let consumed = dst.read_params(&buf);
        assert_eq!(consumed, buf.len());
        let mut buf2 = Vec::new();
        dst.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn copy_params_from_syncs_layers() {
        let mut rng = seeded(7);
        let src = Dense::new(2, 2, Activation::Relu, &mut rng);
        let mut dst = Dense::new(2, 2, Activation::Relu, &mut rng);
        dst.copy_params_from(&src);
        let x = Matrix::from_rows(&[&[0.3, -0.7]]);
        assert_eq!(src.forward_inference(&x), dst.forward_inference(&x));
    }
}
