//! # crowdrl-nn
//!
//! From-scratch feed-forward neural networks for CrowdRL.
//!
//! The paper trains two models:
//!
//! * the **classifier** `φ` — "a fully connected neural network with a
//!   sigmoid output layer" (§VI-A.4) that rates unlabelled objects and
//!   participates in joint truth inference, and
//! * the **Deep Q-Network** that scores (object, annotator) actions
//!   (§IV-A).
//!
//! Both are small MLPs, so this crate implements exactly what they need:
//! dense layers with ReLU/Tanh/Sigmoid activations, softmax cross-entropy
//! (with *soft* targets and per-sample weights — required by the joint EM,
//! which retrains `φ` on posterior-weighted labels), MSE and Huber losses
//! for Q-regression, and SGD/Momentum/Adam optimizers. A finite-difference
//! gradient checker validates the backward pass in tests.
//!
//! Everything is `f32`, CPU-only, deterministic given a seeded RNG.

pub mod activation;
pub mod classifier;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;

pub use activation::Activation;
pub use classifier::{ClassifierConfig, ClassifierSnapshot, SoftmaxClassifier};
pub use layer::Dense;
pub use network::Network;
pub use optimizer::{Adam, Momentum, Optimizer, Sgd};
