//! Loss functions and their gradients with respect to network outputs.
//!
//! Classification uses softmax cross-entropy over logits with **soft
//! targets** and optional **per-sample weights**: CrowdRL's joint inference
//! retrains the classifier on EM posteriors `q(y_i)` rather than hard
//! labels (§V-A.2), and the derivative of CE∘softmax is the numerically
//! pleasant `softmax(z) - target`.
//!
//! Q-learning uses MSE or Huber regression on selected outputs.

use crowdrl_linalg::{ops, Matrix};

/// Mean softmax cross-entropy over a batch of logits.
///
/// * `logits`: `[batch x classes]`
/// * `targets`: `[batch x classes]`, each row a distribution (soft labels)
/// * `weights`: optional per-sample weights (defaults to 1)
///
/// Returns `(loss, d_logits)` where the gradient is already averaged over
/// the batch (and weight-scaled).
pub fn softmax_cross_entropy(
    logits: &Matrix,
    targets: &Matrix,
    weights: Option<&[f32]>,
) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.rows(), "batch mismatch");
    assert_eq!(logits.cols(), targets.cols(), "class-count mismatch");
    if let Some(w) = weights {
        assert_eq!(w.len(), logits.rows(), "weight length mismatch");
    }
    let batch = logits.rows().max(1);
    let mut probs = logits.clone();
    ops::softmax_rows_inplace(&mut probs);

    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let inv = 1.0 / batch as f32;
    for i in 0..logits.rows() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        let p = probs.row(i);
        let t = targets.row(i);
        let mut row_loss = 0.0f64;
        for (&pi, &ti) in p.iter().zip(t) {
            if ti > 0.0 {
                row_loss -= ti as f64 * (pi.max(1e-12) as f64).ln();
            }
        }
        loss += w as f64 * row_loss;
        let g = grad.row_mut(i);
        for (gi, &ti) in g.iter_mut().zip(t) {
            *gi = (*gi - ti) * w * inv;
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Mean squared error over a batch: `L = mean((pred - target)^2) / 2`.
///
/// Returns `(loss, d_pred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let n = pred.len().max(1) as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f64;
    for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
        let d = *g - t;
        loss += (d * d) as f64;
        *g = d / n;
    }
    ((loss / (2.0 * n as f64)) as f32, grad)
}

/// Huber (smooth-L1) loss with threshold `delta` — the standard DQN loss:
/// quadratic near zero, linear in the tails, so a single wildly-wrong
/// TD target cannot blow up the gradient.
///
/// Returns `(loss, d_pred)`, both averaged over all elements.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f32) -> (f32, Matrix) {
    assert!(delta > 0.0, "delta must be positive");
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "huber shape mismatch"
    );
    let n = pred.len().max(1) as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f64;
    for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
        let d = *g - t;
        if d.abs() <= delta {
            loss += (0.5 * d * d) as f64;
            *g = d / n;
        } else {
            loss += (delta * (d.abs() - 0.5 * delta)) as f64;
            *g = delta * d.signum() / n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, -20.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, grad) = softmax_cross_entropy(&logits, &targets, None);
        assert!(loss < 1e-6, "loss={loss}");
        assert!(grad.as_slice().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn cross_entropy_uniform_prediction_is_log_k() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &targets, None);
        assert!((loss - 3f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_target() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &targets, None);
        assert!((grad.get(0, 0) - (-0.5)).abs() < 1e-6);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_weights_scale_gradient() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (_, g1) = softmax_cross_entropy(&logits, &targets, Some(&[1.0]));
        let (_, g2) = softmax_cross_entropy(&logits, &targets, Some(&[2.0]));
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
        // Zero-weight sample contributes nothing.
        let (loss, g0) = softmax_cross_entropy(&logits, &targets, Some(&[0.0]));
        assert_eq!(loss, 0.0);
        assert!(g0.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn cross_entropy_accepts_soft_targets() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let targets = Matrix::from_rows(&[&[0.5, 0.5]]);
        let (_, grad) = softmax_cross_entropy(&logits, &targets, None);
        // softmax = target exactly: zero gradient.
        assert!(grad.as_slice().iter().all(|g| g.abs() < 1e-7));
    }

    #[test]
    fn mse_known_values() {
        let pred = Matrix::from_rows(&[&[3.0, 0.0]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 1.0).abs() < 1e-6); // (4 + 0) / (2*2)
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6); // 2/2
        assert_eq!(grad.get(0, 1), 0.0);
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let pred = Matrix::from_rows(&[&[0.5]]);
        let target = Matrix::from_rows(&[&[0.0]]);
        let (hl, hg) = huber(&pred, &target, 1.0);
        let (ml, mg) = mse(&pred, &target);
        assert!((hl - ml).abs() < 1e-6);
        assert!((hg.get(0, 0) - mg.get(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        let pred = Matrix::from_rows(&[&[10.0]]);
        let target = Matrix::from_rows(&[&[0.0]]);
        let (loss, grad) = huber(&pred, &target, 1.0);
        assert!((loss - 9.5).abs() < 1e-5);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6); // capped at delta
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn huber_rejects_nonpositive_delta() {
        let m = Matrix::zeros(1, 1);
        let _ = huber(&m, &m, 0.0);
    }

    proptest! {
        /// CE gradient matches finite differences through the softmax.
        #[test]
        fn prop_ce_gradient_matches_fd(
            l0 in -2.0f32..2.0, l1 in -2.0f32..2.0, t in 0.0f32..1.0) {
            let targets = Matrix::from_rows(&[&[t, 1.0 - t]]);
            let f = |a: f32, b: f32| {
                softmax_cross_entropy(&Matrix::from_rows(&[&[a, b]]), &targets, None).0
            };
            let (_, grad) = softmax_cross_entropy(
                &Matrix::from_rows(&[&[l0, l1]]), &targets, None);
            let h = 1e-3;
            let fd0 = (f(l0 + h, l1) - f(l0 - h, l1)) / (2.0 * h);
            let fd1 = (f(l0, l1 + h) - f(l0, l1 - h)) / (2.0 * h);
            prop_assert!((grad.get(0, 0) - fd0).abs() < 1e-2);
            prop_assert!((grad.get(0, 1) - fd1).abs() < 1e-2);
        }

        /// Huber loss and |gradient| are bounded by delta in the tails.
        #[test]
        fn prop_huber_gradient_bounded(p in -100.0f32..100.0, delta in 0.1f32..5.0) {
            let pred = Matrix::from_rows(&[&[p]]);
            let target = Matrix::from_rows(&[&[0.0]]);
            let (_, grad) = huber(&pred, &target, delta);
            prop_assert!(grad.get(0, 0).abs() <= delta + 1e-6);
        }
    }
}
