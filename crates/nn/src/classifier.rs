//! The paper's classifier `φ`: an MLP with a probabilistic (softmax) head.
//!
//! `φ_{c_j}(o_i) = p(y_i = c_j | φ)` rates each object (Algorithm 1, line 6)
//! and feeds both labelled-set enrichment and the joint truth-inference
//! model. The joint EM retrains `φ` each iteration on the current
//! posteriors `q(y_i)` — *soft* targets with per-object weights — which
//! [`SoftmaxClassifier::fit`] supports directly.

use crate::activation::Activation;
use crate::loss;
use crate::network::Network;
use crate::optimizer::Adam;
use crowdrl_linalg::{ops, Matrix, NumericMode};
use crowdrl_types::rng::permutation;
use crowdrl_types::{ClassId, Error, Result};
use rand::Rng;

/// Training hyperparameters for [`SoftmaxClassifier`].
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    /// Hidden-layer sizes (empty = multinomial logistic regression).
    pub hidden: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Epochs per `fit` call.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 weight decay (applied as loss-gradient shrinkage).
    pub weight_decay: f32,
    /// Matmul kernel selection for the classifier network. `Reference`
    /// (default) is the bit-pinned blocked kernel; `Fast` enables the SIMD
    /// kernels for fit forwards/backwards and batched prediction.
    /// Snapshots are NOT interchangeable across modes.
    pub numeric: NumericMode,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            // Multinomial logistic regression by default: in the
            // few-labels/high-dimension regime a labelling loop lives in,
            // a linear probabilistic model generalizes far better than an
            // MLP, and it is the Bayes-optimal form for
            // class-conditional-Gaussian features. Add hidden layers for
            // nonlinear feature spaces.
            hidden: vec![],
            activation: Activation::Relu,
            learning_rate: 1e-2,
            epochs: 30,
            batch_size: 32,
            weight_decay: 2e-2,
            numeric: NumericMode::default(),
        }
    }
}

impl ClassifierConfig {
    /// Validate hyperparameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(Error::InvalidParameter(
                "learning_rate must be positive".into(),
            ));
        }
        if self.epochs == 0 {
            return Err(Error::InvalidParameter("epochs must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(Error::InvalidParameter(
                "batch_size must be positive".into(),
            ));
        }
        if self.weight_decay < 0.0 || !self.weight_decay.is_finite() {
            return Err(Error::InvalidParameter(
                "weight_decay must be non-negative".into(),
            ));
        }
        if self.hidden.contains(&0) {
            return Err(Error::InvalidParameter(
                "hidden sizes must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A multi-class probabilistic classifier (MLP + softmax head).
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    net: Network,
    opt: Adam,
    config: ClassifierConfig,
    num_classes: usize,
    trained: bool,
    generation: u64,
}

impl SoftmaxClassifier {
    /// Create an untrained classifier for `input_dim` features and
    /// `num_classes` classes.
    pub fn new<R: Rng + ?Sized>(
        config: ClassifierConfig,
        input_dim: usize,
        num_classes: usize,
        rng: &mut R,
    ) -> Result<Self> {
        config.validate()?;
        if input_dim == 0 {
            return Err(Error::InvalidParameter("input_dim must be positive".into()));
        }
        if num_classes < 2 {
            return Err(Error::InvalidParameter("need at least two classes".into()));
        }
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(num_classes);
        let mut net = Network::mlp(&sizes, config.activation, rng);
        net.set_numeric_mode(config.numeric);
        let opt = Adam::new(config.learning_rate);
        Ok(Self {
            net,
            opt,
            config,
            num_classes,
            trained: false,
            generation: 0,
        })
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether `fit` has been called at least once with data.
    #[inline]
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Parameter generation: incremented after every successful [`fit`],
    /// so caches of predictions (e.g. `crowdrl-core`'s feature cache) can
    /// detect that the classifier changed without hashing its weights.
    ///
    /// [`fit`]: SoftmaxClassifier::fit
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Train on a batch of rows with *soft* targets and optional per-sample
    /// weights, running `config.epochs` epochs of minibatch Adam.
    ///
    /// `x`: `[n x input_dim]`; `targets`: `[n x num_classes]` rows summing
    /// to one; `weights`: length-`n` non-negative, defaults to all-ones.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        targets: &Matrix,
        weights: Option<&[f32]>,
        rng: &mut R,
    ) -> Result<f32> {
        self.fit_with_epochs(x, targets, weights, self.config.epochs, rng)
    }

    /// [`fit`](SoftmaxClassifier::fit) with an explicit epoch count in
    /// place of `config.epochs` — the warm-start path of the incremental
    /// inference engine continues training from the current weights (and
    /// the persistent Adam state) with a short epoch budget, while cold
    /// fits keep using the configured count.
    pub fn fit_with_epochs<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        targets: &Matrix,
        weights: Option<&[f32]>,
        epochs: usize,
        rng: &mut R,
    ) -> Result<f32> {
        if epochs == 0 {
            return Err(Error::InvalidParameter("epochs must be positive".into()));
        }
        if x.rows() == 0 {
            return Err(Error::InvalidParameter("cannot fit on zero samples".into()));
        }
        if x.rows() != targets.rows() {
            return Err(Error::DimensionMismatch {
                expected: x.rows(),
                actual: targets.rows(),
                context: "classifier targets".into(),
            });
        }
        if targets.cols() != self.num_classes {
            return Err(Error::DimensionMismatch {
                expected: self.num_classes,
                actual: targets.cols(),
                context: "classifier target classes".into(),
            });
        }
        if let Some(w) = weights {
            if w.len() != x.rows() {
                return Err(Error::DimensionMismatch {
                    expected: x.rows(),
                    actual: w.len(),
                    context: "classifier sample weights".into(),
                });
            }
        }

        let n = x.rows();
        let bs = self.config.batch_size.min(n);
        let mut last_loss = 0.0;
        for _ in 0..epochs {
            let order = permutation(rng, n);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0;
            for chunk in order.chunks(bs) {
                let bx = gather_rows(x, chunk);
                let bt = gather_rows(targets, chunk);
                let bw: Option<Vec<f32>> = weights.map(|w| chunk.iter().map(|&i| w[i]).collect());
                self.net.zero_grad();
                let out = self.net.forward(&bx);
                let (l, d) = loss::softmax_cross_entropy(&out, &bt, bw.as_deref());
                self.net.backward(&d);
                self.apply_weight_decay();
                self.net.step(&mut self.opt, Some(5.0));
                epoch_loss += l;
                batches += 1;
            }
            last_loss = epoch_loss / batches.max(1) as f32;
            if !last_loss.is_finite() {
                return Err(Error::NumericalFailure("classifier loss diverged".into()));
            }
        }
        self.trained = true;
        self.generation += 1;
        Ok(last_loss)
    }

    /// Convenience: train on hard labels (converted to one-hot targets).
    pub fn fit_hard<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        labels: &[ClassId],
        rng: &mut R,
    ) -> Result<f32> {
        if labels.len() != x.rows() {
            return Err(Error::DimensionMismatch {
                expected: x.rows(),
                actual: labels.len(),
                context: "classifier hard labels".into(),
            });
        }
        let mut targets = Matrix::zeros(labels.len(), self.num_classes);
        for (i, c) in labels.iter().enumerate() {
            if c.index() >= self.num_classes {
                return Err(Error::InvalidParameter(format!(
                    "label {c} out of range for {} classes",
                    self.num_classes
                )));
            }
            targets.set(i, c.index(), 1.0);
        }
        self.fit(x, &targets, None, rng)
    }

    fn apply_weight_decay(&mut self) {
        if self.config.weight_decay > 0.0 {
            // Decoupled weight decay: shrink parameters directly.
            let mut params = self.net.flatten_params();
            let decay = 1.0 - self.config.weight_decay;
            for p in params.iter_mut() {
                *p *= decay;
            }
            self.net.load_params(&params);
        }
    }

    /// Class-probability rows for a feature matrix: `[n x num_classes]`,
    /// each row a distribution.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = self.net.forward_inference(x);
        ops::softmax_rows_inplace(&mut out);
        out
    }

    /// Class probabilities for one object's features.
    pub fn predict_proba_one(&self, features: &[f32]) -> Vec<f64> {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        let p = self.predict_proba(&x);
        p.row(0).iter().map(|&v| v as f64).collect()
    }

    /// Hard prediction (argmax class) for one object's features.
    pub fn predict_one(&self, features: &[f32]) -> ClassId {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        let p = self.net.forward_inference(&x);
        ClassId(ops::argmax(p.row(0)))
    }

    /// Hard predictions for a feature matrix.
    pub fn predict(&self, x: &Matrix) -> Vec<ClassId> {
        let p = self.net.forward_inference(x);
        (0..p.rows())
            .map(|i| ClassId(ops::argmax(p.row(i))))
            .collect()
    }

    /// Access the underlying network (e.g. for parameter inspection).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Capture the full training state — weights, Adam moments, trained
    /// flag and cache generation — for checkpointing.
    pub fn snapshot(&self) -> ClassifierSnapshot {
        ClassifierSnapshot {
            params: self.net.flatten_params(),
            opt_state: self.opt.state().to_vec(),
            trained: self.trained,
            generation: self.generation,
        }
    }

    /// Restore a state captured by [`SoftmaxClassifier::snapshot`] into a
    /// classifier constructed with the same config/shape. Training after a
    /// restore continues bit-identically to never having stopped.
    pub fn restore(&mut self, snap: ClassifierSnapshot) -> Result<()> {
        if snap.params.len() != self.net.param_count() {
            return Err(Error::DimensionMismatch {
                expected: self.net.param_count(),
                actual: snap.params.len(),
                context: "classifier snapshot params".into(),
            });
        }
        self.net.load_params(&snap.params);
        self.opt.restore_state(snap.opt_state);
        self.trained = snap.trained;
        self.generation = snap.generation;
        Ok(())
    }
}

/// Serializable training state of a [`SoftmaxClassifier`].
#[derive(Debug, Clone)]
pub struct ClassifierSnapshot {
    /// Flattened network parameters.
    pub params: Vec<f32>,
    /// Adam per-slot (first moment, second moment, step count).
    pub opt_state: Vec<(Vec<f32>, Vec<f32>, u64)>,
    /// Whether `fit` has succeeded at least once.
    pub trained: bool,
    /// Prediction-cache generation counter.
    pub generation: u64,
}

/// Gather rows of `m` at `idx` into a new matrix.
fn gather_rows(m: &Matrix, idx: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), m.cols());
    for (r, &i) in idx.iter().enumerate() {
        out.row_mut(r).copy_from_slice(m.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;

    /// Two well-separated Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<ClassId>) {
        let mut rng = seeded(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let (mx, my) = if c == 0 { (-2.0, -2.0) } else { (2.0, 2.0) };
            xs.push((crowdrl_types::rng::normal(&mut rng, mx, 0.7)) as f32);
            xs.push((crowdrl_types::rng::normal(&mut rng, my, 0.7)) as f32);
            ys.push(ClassId(c));
        }
        (Matrix::from_vec(n, 2, xs), ys)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(200, 11);
        let mut rng = seeded(12);
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        assert!(!clf.is_trained());
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        assert!(clf.is_trained());
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = blobs(60, 13);
        let mut rng = seeded(14);
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        let p = clf.predict_proba(&x);
        for i in 0..p.rows() {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
            assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let one = clf.predict_proba_one(x.row(0));
        assert_eq!(one.len(), 2);
        assert!((one.iter().sum::<f64>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn soft_targets_and_weights_train() {
        let (x, y) = blobs(100, 15);
        let mut rng = seeded(16);
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        let mut targets = Matrix::zeros(x.rows(), 2);
        for (i, c) in y.iter().enumerate() {
            // Soft labels: 0.9 on the true class.
            targets.set(i, c.index(), 0.9);
            targets.set(i, 1 - c.index(), 0.1);
        }
        let weights: Vec<f32> = (0..x.rows())
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.5 })
            .collect();
        let loss = clf.fit(&x, &targets, Some(&weights), &mut rng).unwrap();
        assert!(loss.is_finite());
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn rejects_bad_shapes_and_configs() {
        let mut rng = seeded(17);
        assert!(SoftmaxClassifier::new(ClassifierConfig::default(), 0, 2, &mut rng).is_err());
        assert!(SoftmaxClassifier::new(ClassifierConfig::default(), 2, 1, &mut rng).is_err());
        let bad = ClassifierConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(SoftmaxClassifier::new(bad, 2, 2, &mut rng).is_err());
        let bad = ClassifierConfig {
            learning_rate: -1.0,
            ..Default::default()
        };
        assert!(SoftmaxClassifier::new(bad, 2, 2, &mut rng).is_err());
        let bad = ClassifierConfig {
            hidden: vec![0],
            ..Default::default()
        };
        assert!(SoftmaxClassifier::new(bad, 2, 2, &mut rng).is_err());

        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        let x = Matrix::zeros(3, 2);
        assert!(clf
            .fit(&Matrix::zeros(0, 2), &Matrix::zeros(0, 2), None, &mut rng)
            .is_err());
        assert!(clf.fit(&x, &Matrix::zeros(2, 2), None, &mut rng).is_err());
        assert!(clf.fit(&x, &Matrix::zeros(3, 3), None, &mut rng).is_err());
        assert!(clf
            .fit(&x, &Matrix::zeros(3, 2), Some(&[1.0]), &mut rng)
            .is_err());
        assert!(clf.fit_hard(&x, &[ClassId(0)], &mut rng).is_err());
        assert!(clf.fit_hard(&x, &[ClassId(9); 3], &mut rng).is_err());
    }

    #[test]
    fn logistic_regression_mode_works() {
        // Empty hidden layers = multinomial logistic regression.
        let (x, y) = blobs(150, 18);
        let mut rng = seeded(19);
        let config = ClassifierConfig {
            hidden: vec![],
            epochs: 60,
            ..Default::default()
        };
        let mut clf = SoftmaxClassifier::new(config, 2, 2, &mut rng).unwrap();
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn generation_bumps_only_on_successful_fit() {
        let (x, y) = blobs(30, 22);
        let mut rng = seeded(23);
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        assert_eq!(clf.generation(), 0);
        // A rejected fit (shape mismatch) must not bump the generation.
        assert!(clf.fit_hard(&x, &[ClassId(0)], &mut rng).is_err());
        assert_eq!(clf.generation(), 0);
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        assert_eq!(clf.generation(), 1);
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        assert_eq!(clf.generation(), 2);
    }

    #[test]
    fn fit_with_epochs_matches_fit_at_configured_count() {
        let (x, y) = blobs(50, 24);
        let mut targets = Matrix::zeros(x.rows(), 2);
        for (i, c) in y.iter().enumerate() {
            targets.set(i, c.index(), 1.0);
        }
        let run = |explicit: bool| {
            let mut rng = seeded(25);
            let mut clf =
                SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
            if explicit {
                let epochs = ClassifierConfig::default().epochs;
                clf.fit_with_epochs(&x, &targets, None, epochs, &mut rng)
                    .unwrap();
            } else {
                clf.fit(&x, &targets, None, &mut rng).unwrap();
            }
            clf.network().flatten_params()
        };
        assert_eq!(run(true), run(false));
        let mut rng = seeded(26);
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        assert!(clf
            .fit_with_epochs(&x, &targets, None, 0, &mut rng)
            .is_err());
    }

    #[test]
    fn snapshot_restore_resumes_training_bit_identically() {
        let (x, y) = blobs(60, 27);
        let mut targets = Matrix::zeros(x.rows(), 2);
        for (i, c) in y.iter().enumerate() {
            targets.set(i, c.index(), 1.0);
        }
        // Uninterrupted: two fits in a row.
        let mut rng = seeded(28);
        let mut full = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        full.fit(&x, &targets, None, &mut rng).unwrap();
        let snap = full.snapshot();
        full.fit(&x, &targets, None, &mut rng).unwrap();

        // Interrupted: restore the snapshot into a fresh classifier (same
        // rng point) and run the second fit there.
        let mut rng2 = seeded(28);
        let mut resumed =
            SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng2).unwrap();
        resumed.fit(&x, &targets, None, &mut rng2).unwrap();
        resumed.restore(snap).unwrap();
        resumed.fit(&x, &targets, None, &mut rng2).unwrap();

        assert_eq!(
            full.network().flatten_params(),
            resumed.network().flatten_params()
        );
        assert_eq!(full.generation(), resumed.generation());
        // Shape mismatch is rejected.
        let mut other =
            SoftmaxClassifier::new(ClassifierConfig::default(), 3, 2, &mut rng).unwrap();
        assert!(other.restore(full.snapshot()).is_err());
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let (x, y) = blobs(50, 20);
        let run = || {
            let mut rng = seeded(21);
            let mut clf =
                SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
            clf.fit_hard(&x, &y, &mut rng).unwrap();
            clf.network().flatten_params()
        };
        assert_eq!(run(), run());
    }
}
