//! Dawid–Skene EM truth inference \[48\].
//!
//! The classical confusion-matrix EM: initialize posteriors by majority
//! vote, then alternate
//!
//! * **M-step** — re-estimate each annotator's confusion matrix `Π̂^j` and
//!   the class prior from the current posteriors, and
//! * **E-step** — `q(y_i = c) ∝ prior_c · Π_j π̂^j[c, y_i^j]`
//!
//! until the posteriors stop moving or `max_iters` is reached. This is the
//! inference engine the DLTA and IDLE baselines use, and the
//! annotators-only special case of CrowdRL's joint model (drop the
//! classifier term from the E-step and you get exactly this).

use crate::mv::{estimate_confusions, MajorityVote};
use crate::result::InferenceResult;
use crowdrl_linalg::pool;
use crowdrl_obs as obs;
use crowdrl_types::prob;
use crowdrl_types::{AnswerSet, Error, ObjectId, Result};

/// Configuration and entry point for Dawid–Skene EM.
#[derive(Debug, Clone)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Clamp every annotator's estimated diagonal to at least this value
    /// (`None` = classical unconstrained DS). The default 0.5 encodes the
    /// non-adversarial-annotator assumption and prevents the label-switching
    /// failure mode where EM decides a weak annotator is *anti*-correlated
    /// and flips the labels they dominate.
    pub min_diagonal: Option<f64>,
    /// Estimate a single accuracy per annotator ("one-coin" model) instead
    /// of a full confusion matrix. With few answers per annotator the full
    /// matrix overfits per-class asymmetries (one class's diagonal drifts
    /// high, the other low) and EM amplifies the drift; the one-coin model
    /// is the standard stabilization and is the default. Set to `false`
    /// for the classical full-matrix estimator.
    pub one_coin: bool,
    /// Re-estimate the class prior each M-step (classical DS). With weak
    /// annotators the estimated prior drifts toward whichever class is
    /// momentarily ahead and then herds split votes to it, so the default
    /// keeps a fixed uniform prior (as PM-style weighted voting does).
    pub estimate_prior: bool,
}

impl Default for DawidSkene {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-6,
            min_diagonal: Some(0.5),
            one_coin: true,
            estimate_prior: false,
        }
    }
}

impl DawidSkene {
    /// Run EM over all answered objects.
    pub fn infer(
        &self,
        answers: &AnswerSet,
        num_classes: usize,
        num_annotators: usize,
    ) -> Result<InferenceResult> {
        if self.max_iters == 0 {
            return Err(Error::InvalidParameter("max_iters must be positive".into()));
        }
        let _span = obs::span("em.ds.infer");
        // Initialize with majority vote.
        let mut state = MajorityVote.infer(answers, num_classes, num_annotators)?;
        let mut iterations = 0;
        let mut log_likelihood = f64::NEG_INFINITY;
        for _ in 0..self.max_iters {
            iterations += 1;
            // M-step: confusions and prior from current posteriors.
            state.confusions =
                self.m_step(answers, &state.posteriors, num_classes, num_annotators)?;
            if self.estimate_prior {
                let mut prior = vec![1e-9f64; num_classes]; // tiny floor
                for post in state.posteriors.iter().flatten() {
                    for (pr, &q) in prior.iter_mut().zip(post) {
                        *pr += q;
                    }
                }
                prob::normalize(&mut prior);
                state.class_prior = prior;
            } else {
                state.class_prior = vec![1.0 / num_classes as f64; num_classes];
            }

            // E-step in log space for stability. Chunked over fixed object
            // ranges; per-chunk posteriors and log-likelihood/max-delta
            // partials are merged in chunk-index order, so the result is
            // bit-identical at every thread count (DESIGN.md §9). The
            // per-annotator log-confusion tables are computed once per
            // iteration instead of once per (answer, class) pair.
            let log_prior: Vec<f64> = state
                .class_prior
                .iter()
                .map(|&p| p.max(1e-12).ln())
                .collect();
            let log_conf = crate::par::log_confusion_tables(&state.confusions, num_classes);
            let k = num_classes;
            let posteriors = &state.posteriors;
            let _kind = pool::task_kind("em_estep");
            let chunks =
                pool::map_chunks(answers.num_objects(), crate::par::OBJECT_CHUNK, |range| {
                    let mut posts: Vec<(usize, Vec<f64>)> = Vec::new();
                    let mut ll = 0.0f64;
                    let mut max_delta = 0.0f64;
                    let mut logp = vec![0.0f64; k];
                    for i in range {
                        let votes = answers.answers_for(ObjectId(i));
                        if votes.is_empty() {
                            continue;
                        }
                        logp.copy_from_slice(&log_prior);
                        for &(a, label) in votes {
                            let table = &log_conf[a.index() * k * k..(a.index() + 1) * k * k];
                            for (c, lp) in logp.iter_mut().enumerate() {
                                *lp += table[c * k + label.index()];
                            }
                        }
                        let mut q = Vec::with_capacity(k);
                        let lse = prob::softmax_from_logs(&logp, &mut q);
                        ll += lse;
                        if let Some(old) = &posteriors[i] {
                            for (o, n) in old.iter().zip(&q) {
                                max_delta = max_delta.max((o - n).abs());
                            }
                        }
                        posts.push((i, q));
                    }
                    (posts, ll, max_delta)
                });
            let mut max_delta = 0.0f64;
            let mut ll = 0.0f64;
            for (posts, ll_part, delta_part) in chunks {
                ll += ll_part;
                max_delta = max_delta.max(delta_part);
                for (i, q) in posts {
                    state.posteriors[i] = Some(q);
                }
            }
            log_likelihood = ll;
            if !log_likelihood.is_finite() {
                return Err(Error::NumericalFailure("DS likelihood diverged".into()));
            }
            if obs::enabled() {
                obs::gauge_step("em.ds.ll", (iterations - 1) as f64, ll);
                obs::gauge_step("em.ds.delta", (iterations - 1) as f64, max_delta);
            }
            if max_delta < self.tol {
                break;
            }
        }
        // Final M-step so reported confusions match the final posteriors.
        state.confusions = self.m_step(answers, &state.posteriors, num_classes, num_annotators)?;
        obs::counter_add("em.ds.runs", 1);
        obs::histogram("em.ds.iters", iterations as f64);
        state.iterations = iterations;
        state.log_likelihood = log_likelihood;
        Ok(state)
    }

    /// M-step dispatch: one-coin or full-matrix, with the diagonal floor.
    /// Shared with the incremental [`engine`](crate::engine), whose warm
    /// M-step re-estimates confusions over *all* carried posteriors.
    pub(crate) fn m_step(
        &self,
        answers: &AnswerSet,
        posteriors: &[Option<Vec<f64>>],
        num_classes: usize,
        num_annotators: usize,
    ) -> Result<Vec<crowdrl_types::ConfusionMatrix>> {
        let mut confusions = if self.one_coin {
            estimate_one_coin(answers, posteriors, num_classes, num_annotators)?
        } else {
            estimate_confusions(answers, posteriors, num_classes, num_annotators)?
        };
        if let Some(floor) = self.min_diagonal {
            for m in &mut confusions {
                m.clamp_diagonal_min(floor)?;
            }
        }
        Ok(confusions)
    }
}

/// One-coin M-step: each annotator gets a single shrunk accuracy
/// `acc_j = (17.5 + Σ_i q_i(label_ij)) / (25 + #answers_j)` turned into a
/// symmetric confusion matrix. Estimates are capped at 0.92: EM otherwise
/// inflates one annotator's accuracy toward 1.0 (their answers define the
/// posterior, which then certifies their answers), after which that
/// annotator single-handedly outvotes the rest of the panel.
pub(crate) fn estimate_one_coin(
    answers: &AnswerSet,
    posteriors: &[Option<Vec<f64>>],
    num_classes: usize,
    num_annotators: usize,
) -> Result<Vec<crowdrl_types::ConfusionMatrix>> {
    // Shrinkage prior: pseudo-observations at accuracy 0.7 with strength
    // 25. EM's accuracy spread between same-quality annotators is mostly
    // estimation noise, and an inflated spread lets one annotator outvote
    // the rest (the posterior then certifies that annotator's answers — a
    // runaway feedback loop); the prior damps the loop without blocking
    // genuinely-different annotators from separating given enough answers.
    //
    // The sufficient statistics are summed per fixed object chunk and the
    // partials merged in chunk-index order (DESIGN.md §9).
    let _kind = pool::task_kind("em_mstep");
    let partials = pool::map_chunks(
        answers.num_objects(),
        crate::par::OBJECT_CHUNK,
        |range| -> Result<(Vec<f64>, Vec<f64>)> {
            let mut correct = vec![0.0f64; num_annotators];
            let mut total = vec![0.0f64; num_annotators];
            for i in range {
                let Some(post) = posteriors[i].as_ref() else {
                    continue;
                };
                for &(a, label) in answers.answers_for(ObjectId(i)) {
                    let j = a.index();
                    if j >= num_annotators {
                        return Err(Error::IndexOutOfBounds {
                            index: j,
                            len: num_annotators,
                            context: "one-coin estimation".into(),
                        });
                    }
                    correct[j] += post.get(label.index()).copied().unwrap_or(0.0);
                    total[j] += 1.0;
                }
            }
            Ok((correct, total))
        },
    );
    let mut correct = vec![17.5f64; num_annotators];
    let mut total = vec![25.0f64; num_annotators];
    for partial in partials {
        let (c, t) = partial?;
        crate::par::accumulate(&mut correct, &c);
        crate::par::accumulate(&mut total, &t);
    }
    (0..num_annotators)
        .map(|j| {
            crowdrl_types::ConfusionMatrix::with_accuracy(
                num_classes,
                (correct[j] / total[j]).clamp(0.0, 0.92),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorId, Answer, ClassId, ConfusionMatrix};

    fn ans(o: usize, a: usize, c: usize) -> Answer {
        Answer {
            object: ObjectId(o),
            annotator: AnnotatorId(a),
            label: ClassId(c),
        }
    }

    /// Simulate answers from annotators with known accuracies over known
    /// truths; returns (answers, truths).
    fn simulate(n: usize, accs: &[f64], seed: u64) -> (AnswerSet, Vec<ClassId>) {
        let mut rng = seeded(seed);
        let mats: Vec<ConfusionMatrix> = accs
            .iter()
            .map(|&a| ConfusionMatrix::with_accuracy(2, a).unwrap())
            .collect();
        let mut answers = AnswerSet::new(n);
        let mut truths = Vec::with_capacity(n);
        for i in 0..n {
            let truth = ClassId(i % 2);
            truths.push(truth);
            for (j, m) in mats.iter().enumerate() {
                let label = m.sample_answer(truth, &mut rng);
                answers.record(ans(i, j, label.index())).unwrap();
            }
        }
        (answers, truths)
    }

    #[test]
    fn recovers_truth_with_mixed_quality_annotators() {
        let (answers, truths) = simulate(600, &[0.9, 0.85, 0.6, 0.55, 0.8], 2);
        let r = DawidSkene::default().infer(&answers, 2, 5).unwrap();
        let correct = truths
            .iter()
            .enumerate()
            .filter(|(i, t)| r.label(ObjectId(*i)) == Some(**t))
            .count();
        let acc = correct as f64 / truths.len() as f64;
        assert!(acc > 0.93, "DS accuracy {acc}");
        assert!(r.validate(2, 1e-6));
    }

    #[test]
    fn beats_majority_vote_with_skewed_panel() {
        // Three bad annotators + two excellent ones: MV is dominated by the
        // bad majority; DS learns to discount them.
        let (answers, truths) = simulate(400, &[0.55, 0.55, 0.55, 0.97, 0.97], 7);
        let acc_of = |labels: Vec<Option<ClassId>>| {
            truths
                .iter()
                .enumerate()
                .filter(|(i, t)| labels[*i] == Some(**t))
                .count() as f64
                / truths.len() as f64
        };
        let mv = MajorityVote.infer(&answers, 2, 5).unwrap();
        let ds = DawidSkene::default().infer(&answers, 2, 5).unwrap();
        let mv_acc = acc_of((0..400).map(|i| mv.label(ObjectId(i))).collect());
        let ds_acc = acc_of((0..400).map(|i| ds.label(ObjectId(i))).collect());
        assert!(
            ds_acc > mv_acc + 0.02,
            "DS {ds_acc} should beat MV {mv_acc} with a skewed panel"
        );
    }

    #[test]
    fn recovers_annotator_qualities() {
        // Three annotators: with only two, EM cannot break the tie between
        // "annotator A is right" and "annotator B is right" on disagreements.
        let (answers, _) = simulate(2000, &[0.9, 0.6, 0.8], 13);
        let r = DawidSkene::default().infer(&answers, 2, 3).unwrap();
        let q = r.qualities();
        assert!((q[0] - 0.9).abs() < 0.06, "q0={}", q[0]);
        assert!((q[1] - 0.6).abs() < 0.08, "q1={}", q[1]);
        assert!((q[2] - 0.8).abs() < 0.07, "q2={}", q[2]);
    }

    #[test]
    fn unanimous_answers_stay_certain() {
        let mut answers = AnswerSet::new(3);
        for o in 0..3 {
            for a in 0..3 {
                answers.record(ans(o, a, 1)).unwrap();
            }
        }
        let r = DawidSkene::default().infer(&answers, 2, 3).unwrap();
        for o in 0..3 {
            assert_eq!(r.label(ObjectId(o)), Some(ClassId(1)));
            // Shrinkage keeps the accuracy estimates near the 0.7 prior
            // with only three answers each, so confidence is high but not
            // extreme.
            assert!(r.confidence(ObjectId(o)).unwrap() > 0.85);
        }
    }

    #[test]
    fn converges_and_reports_iterations() {
        let (answers, _) = simulate(100, &[0.8, 0.8, 0.8], 3);
        let r = DawidSkene::default().infer(&answers, 2, 3).unwrap();
        assert!(r.iterations >= 1 && r.iterations <= 50);
        assert!(r.log_likelihood.is_finite());
    }

    #[test]
    fn objects_without_answers_stay_none() {
        let mut answers = AnswerSet::new(3);
        answers.record(ans(1, 0, 0)).unwrap();
        let r = DawidSkene::default().infer(&answers, 2, 1).unwrap();
        assert!(r.posteriors[0].is_none());
        assert!(r.posteriors[1].is_some());
        assert!(r.posteriors[2].is_none());
    }

    #[test]
    fn rejects_zero_iters() {
        let answers = AnswerSet::new(1);
        let ds = DawidSkene {
            max_iters: 0,
            ..Default::default()
        };
        assert!(ds.infer(&answers, 2, 1).is_err());
    }
}
