//! Shared output type for all truth-inference algorithms.

use crowdrl_types::prob;
use crowdrl_types::{ClassId, ConfusionMatrix, ObjectId};

/// The output of one truth-inference pass.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// `posteriors[i]` is the inferred distribution over classes for object
    /// `i`, or `None` if the object had no answers (nothing to infer from).
    pub posteriors: Vec<Option<Vec<f64>>>,
    /// Estimated confusion matrix `Π̂^j` per annotator.
    pub confusions: Vec<ConfusionMatrix>,
    /// Estimated class prior.
    pub class_prior: Vec<f64>,
    /// EM iterations actually run (1 for non-iterative algorithms).
    pub iterations: usize,
    /// Final expected log-likelihood (NaN for algorithms without one).
    pub log_likelihood: f64,
}

impl InferenceResult {
    /// The MAP label for object `o`, if it was inferred. Ties break toward
    /// the lowest class index.
    pub fn label(&self, o: ObjectId) -> Option<ClassId> {
        self.posteriors[o.index()]
            .as_ref()
            .and_then(|p| prob::argmax(p))
            .map(ClassId)
    }

    /// The posterior probability of the MAP label (confidence), if any.
    pub fn confidence(&self, o: ObjectId) -> Option<f64> {
        let p = self.posteriors[o.index()].as_ref()?;
        let idx = prob::argmax(p)?;
        Some(p[idx])
    }

    /// The estimated scalar quality `tr(Π̂)/|C|` of each annotator.
    pub fn qualities(&self) -> Vec<f64> {
        self.confusions
            .iter()
            .map(ConfusionMatrix::quality)
            .collect()
    }

    /// Objects that received a posterior.
    pub fn inferred_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.posteriors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| ObjectId(i))
    }

    /// Check every present posterior is a valid distribution (tests).
    pub fn validate(&self, num_classes: usize, tol: f64) -> bool {
        self.posteriors
            .iter()
            .flatten()
            .all(|p| prob::is_distribution(p, num_classes, tol))
            && prob::is_distribution(&self.class_prior, num_classes, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> InferenceResult {
        InferenceResult {
            posteriors: vec![Some(vec![0.8, 0.2]), None, Some(vec![0.5, 0.5])],
            confusions: vec![ConfusionMatrix::with_accuracy(2, 0.9).unwrap()],
            class_prior: vec![0.6, 0.4],
            iterations: 3,
            log_likelihood: -1.5,
        }
    }

    #[test]
    fn label_and_confidence() {
        let r = result();
        assert_eq!(r.label(ObjectId(0)), Some(ClassId(0)));
        assert_eq!(r.label(ObjectId(1)), None);
        // Tie breaks low.
        assert_eq!(r.label(ObjectId(2)), Some(ClassId(0)));
        assert_eq!(r.confidence(ObjectId(0)), Some(0.8));
        assert_eq!(r.confidence(ObjectId(1)), None);
    }

    #[test]
    fn qualities_and_inferred_objects() {
        let r = result();
        assert!((r.qualities()[0] - 0.9).abs() < 1e-12);
        let objs: Vec<_> = r.inferred_objects().collect();
        assert_eq!(objs, vec![ObjectId(0), ObjectId(2)]);
    }

    #[test]
    fn validate_checks_distributions() {
        let mut r = result();
        assert!(r.validate(2, 1e-9));
        r.posteriors[0] = Some(vec![0.8, 0.8]);
        assert!(!r.validate(2, 1e-9));
    }
}
