//! CrowdRL's joint truth-inference model (§V-A.2, Fig. 3b) — the paper's
//! core inference contribution.
//!
//! Instead of treating the trained classifier as one more annotator (which
//! composes its bias with the annotator noise it was trained on), the joint
//! model maximizes one likelihood over *all* unknowns at once
//! (Eq. 7 / Eq. 8):
//!
//! ```text
//! p(L | Θ, {Π^j}) = Π_i [ p(y_i | φ, Θ) · Π_j p(y_i^j | y_i, Π^j) ]
//! ```
//!
//! EM alternates:
//!
//! * **E-step** — posterior `q(y_i = c) ∝ p(c | φ(x_i); Θ_last) ·
//!   Π_j π̂^j[c, y_i^j]`, computed in log space;
//! * **M-step** — (a) confusion matrices from soft counts
//!   `π̂^j_{cl} = Σ_i q(y_i = c)·1[y_i^j = l] / Σ_i q(y_i = c)` with Laplace
//!   smoothing, (b) **expert bounding**: any expert row whose diagonal fell
//!   below `1 - ε` is clamped back (the paper's mechanism preventing an
//!   EM pass from eroding a trusted expert after a rare mistake), and
//!   (c) the classifier `Θ` is retrained on the answered objects with the
//!   posteriors as *soft* targets.
//!
//! Convergence is declared when the posteriors stop moving.

use crate::mv::{estimate_confusions, MajorityVote};
use crate::result::InferenceResult;
use crowdrl_linalg::{pool, Matrix};
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_obs as obs;
use crowdrl_types::prob;
use crowdrl_types::{AnnotatorProfile, AnswerSet, Dataset, Error, ObjectId, Result};
use rand::Rng;

/// Hyperparameters of the joint EM.
#[derive(Debug, Clone)]
pub struct JointConfig {
    /// Maximum EM iterations (each includes a classifier retrain).
    pub max_iters: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Expert bounding threshold ε: expert confusion diagonals are clamped
    /// to at least `1 - ε` (§V-A). Set to `1.0` to disable bounding.
    pub expert_epsilon: f64,
    /// Laplace smoothing for confusion-matrix counts.
    pub smoothing: f64,
    /// Exponent on the classifier term in the E-step. `1.0` is the paper's
    /// model; `0.0` ignores the classifier (degenerates to Dawid–Skene).
    pub classifier_weight: f64,
    /// Clamp classifier probabilities into `[phi_clamp, 1 - phi_clamp]`
    /// before they enter the E-step. Neural classifiers are overconfident;
    /// unclamped, a confidently-wrong `φ` outvotes every annotator and the
    /// retrain step locks the error in (an echo chamber). Clamping at 0.1
    /// caps the classifier's log-odds contribution at that of one strong
    /// (90%-accurate) annotator.
    pub phi_clamp: f64,
    /// Retrain the classifier every this-many EM iterations (1 = always).
    pub retrain_every: usize,
    /// Clamp every annotator's estimated diagonal to at least this value
    /// (`None` = unconstrained). See
    /// [`DawidSkene::min_diagonal`](crate::DawidSkene) for why.
    pub min_diagonal: Option<f64>,
    /// One-coin annotator model (single accuracy per annotator) instead of
    /// full confusion matrices; see
    /// [`DawidSkene::one_coin`](crate::DawidSkene).
    pub one_coin: bool,
    /// Retrain the classifier on hard argmax labels instead of the
    /// posterior soft targets (an ablation of the soft-label design —
    /// DESIGN.md §5).
    pub hard_labels: bool,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            max_iters: 8,
            tol: 1e-4,
            expert_epsilon: 0.05,
            smoothing: 1.0,
            classifier_weight: 1.0,
            phi_clamp: 0.1,
            retrain_every: 1,
            min_diagonal: Some(0.5),
            one_coin: true,
            hard_labels: false,
        }
    }
}

impl JointConfig {
    fn validate(&self) -> Result<()> {
        if self.max_iters == 0 {
            return Err(Error::InvalidParameter("max_iters must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.expert_epsilon) {
            return Err(Error::InvalidParameter(
                "expert_epsilon must be in [0,1]".into(),
            ));
        }
        if self.smoothing < 0.0 {
            return Err(Error::InvalidParameter(
                "smoothing must be non-negative".into(),
            ));
        }
        if self.classifier_weight < 0.0 || !self.classifier_weight.is_finite() {
            return Err(Error::InvalidParameter(
                "classifier_weight must be non-negative".into(),
            ));
        }
        if !(0.0..=0.5).contains(&self.phi_clamp) {
            return Err(Error::InvalidParameter(
                "phi_clamp must be in [0, 0.5]".into(),
            ));
        }
        if self.retrain_every == 0 {
            return Err(Error::InvalidParameter(
                "retrain_every must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The joint truth-inference model.
#[derive(Debug, Clone, Default)]
pub struct JointInference {
    /// EM hyperparameters.
    pub config: JointConfig,
}

impl JointInference {
    /// Run joint EM over all answered objects.
    ///
    /// The classifier is mutated: it ends trained on the final posteriors,
    /// ready for labelled-set enrichment. If it has never been trained, the
    /// first E-step uses majority vote in place of the classifier term.
    pub fn infer<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        answers: &AnswerSet,
        profiles: &[AnnotatorProfile],
        classifier: &mut SoftmaxClassifier,
        rng: &mut R,
    ) -> Result<InferenceResult> {
        let _span = obs::span("em.joint.infer");
        self.config.validate()?;
        let k = dataset.num_classes();
        if classifier.num_classes() != k {
            return Err(Error::DimensionMismatch {
                expected: k,
                actual: classifier.num_classes(),
                context: "joint inference classes".into(),
            });
        }
        if answers.num_objects() != dataset.len() {
            return Err(Error::DimensionMismatch {
                expected: dataset.len(),
                actual: answers.num_objects(),
                context: "joint inference answers".into(),
            });
        }
        let num_annotators = profiles.len();

        // Answered objects and their feature matrix (gathered once).
        let answered: Vec<usize> = (0..dataset.len())
            .filter(|&i| !answers.answers_for(ObjectId(i)).is_empty())
            .collect();
        if answered.is_empty() {
            // Nothing to infer; report empty result with uniform artifacts.
            return Ok(InferenceResult {
                posteriors: vec![None; dataset.len()],
                confusions: vec![crowdrl_types::ConfusionMatrix::uniform(k)?; num_annotators],
                class_prior: vec![1.0 / k as f64; k],
                iterations: 0,
                log_likelihood: f64::NAN,
            });
        }
        let mut x = Matrix::zeros(answered.len(), dataset.dim());
        for (r, &i) in answered.iter().enumerate() {
            for (dst, &src) in x.row_mut(r).iter_mut().zip(dataset.features(i)) {
                *dst = src;
            }
        }

        // Initialize posteriors by majority vote; estimate confusions.
        let mv = MajorityVote.infer(answers, k, num_annotators)?;
        let mut posteriors = mv.posteriors;
        let mut confusions = mv.confusions;
        self.bound_experts(&mut confusions, profiles)?;

        // Bootstrap the classifier if it is untrained.
        if !classifier.is_trained() {
            self.retrain(classifier, &x, &answered, &posteriors, rng)?;
        }

        let mut iterations = 0;
        let mut log_likelihood = f64::NEG_INFINITY;
        for iter in 0..self.config.max_iters {
            iterations += 1;

            // E-step: classifier prior x annotator likelihoods, in logs.
            // Chunked over answered objects with fixed boundaries; each
            // chunk returns its new posteriors plus log-likelihood and
            // max-delta partials, merged below in chunk-index order so the
            // result is bit-identical at every thread count (DESIGN.md §9).
            let phi = classifier.predict_proba(&x); // [answered x k]
            let log_conf = crate::par::log_confusion_tables(&confusions, k);
            let lo = self.config.phi_clamp.max(1e-12);
            let hi = 1.0 - self.config.phi_clamp;
            let cw = self.config.classifier_weight;
            let _kind = pool::task_kind("em_estep");
            let chunks = pool::map_chunks(answered.len(), crate::par::OBJECT_CHUNK, |range| {
                let mut posts: Vec<Vec<f64>> = Vec::with_capacity(range.len());
                let mut ll = 0.0f64;
                let mut max_delta = 0.0f64;
                let mut logp = vec![0.0f64; k];
                for r in range {
                    let i = answered[r];
                    for (c, lp) in logp.iter_mut().enumerate() {
                        *lp = cw * (phi.get(r, c) as f64).clamp(lo, hi).ln();
                    }
                    for &(a, label) in answers.answers_for(ObjectId(i)) {
                        let table = &log_conf[a.index() * k * k..(a.index() + 1) * k * k];
                        for (c, lp) in logp.iter_mut().enumerate() {
                            *lp += table[c * k + label.index()];
                        }
                    }
                    let mut q = Vec::with_capacity(k);
                    let lse = prob::softmax_from_logs(&logp, &mut q);
                    ll += lse;
                    if let Some(old) = &posteriors[i] {
                        for (o, n) in old.iter().zip(&q) {
                            max_delta = max_delta.max((o - n).abs());
                        }
                    }
                    posts.push(q);
                }
                (posts, ll, max_delta)
            });
            let mut max_delta = 0.0f64;
            let mut ll = 0.0f64;
            for (ci, (posts, ll_part, delta_part)) in chunks.into_iter().enumerate() {
                ll += ll_part;
                max_delta = max_delta.max(delta_part);
                let range = pool::chunk_range(answered.len(), crate::par::OBJECT_CHUNK, ci);
                for (offset, q) in posts.into_iter().enumerate() {
                    posteriors[answered[range.start + offset]] = Some(q);
                }
            }
            if !ll.is_finite() {
                return Err(Error::NumericalFailure("joint likelihood diverged".into()));
            }
            log_likelihood = ll;
            if obs::enabled() {
                obs::gauge_step("em.joint.ll", iter as f64, ll);
                obs::gauge_step("em.joint.delta", iter as f64, max_delta);
            }

            // M-step (a): confusion matrices from soft counts.
            confusions = if self.config.one_coin {
                crate::dawid_skene::estimate_one_coin(answers, &posteriors, k, num_annotators)?
            } else {
                self.soft_confusions(answers, &posteriors, k, num_annotators)?
            };
            // M-step (b): expert bounding.
            self.bound_experts(&mut confusions, profiles)?;
            // M-step (c): retrain classifier on soft targets.
            if (iter + 1) % self.config.retrain_every == 0 {
                self.retrain(classifier, &x, &answered, &posteriors, rng)?;
            }

            if max_delta < self.config.tol {
                break;
            }
        }
        obs::counter_add("em.joint.runs", 1);
        obs::histogram("em.joint.iters", iterations as f64);

        let mut class_prior = vec![1e-9f64; k];
        for p in posteriors.iter().flatten() {
            for (pr, &q) in class_prior.iter_mut().zip(p) {
                *pr += q;
            }
        }
        prob::normalize(&mut class_prior);
        Ok(InferenceResult {
            posteriors,
            confusions,
            class_prior,
            iterations,
            log_likelihood,
        })
    }

    /// Soft-count confusion estimation with configured smoothing. The soft
    /// counts are accumulated per object chunk and merged in chunk-index
    /// order, exactly like [`estimate_confusions`]. Shared with the
    /// incremental [`engine`](crate::engine), whose warm M-step is this
    /// exact computation over the carried posteriors.
    pub(crate) fn soft_confusions(
        &self,
        answers: &AnswerSet,
        posteriors: &[Option<Vec<f64>>],
        k: usize,
        num_annotators: usize,
    ) -> Result<Vec<crowdrl_types::ConfusionMatrix>> {
        if (self.config.smoothing - 1.0).abs() < f64::EPSILON {
            return estimate_confusions(answers, posteriors, k, num_annotators);
        }
        let counts = crate::mv::soft_count_grids(answers, posteriors, k, num_annotators)?;
        let mut out = Vec::with_capacity(num_annotators);
        for grid in counts.chunks_exact(k * k) {
            let mut m = crowdrl_types::ConfusionMatrix::uniform(k)?;
            m.set_from_counts(grid, self.config.smoothing.max(1e-9))?;
            out.push(m);
        }
        Ok(out)
    }

    /// Clamp expert confusion diagonals to at least `1 - ε`, and every
    /// annotator's diagonal to the non-adversarial floor. Shared with the
    /// incremental [`engine`](crate::engine).
    pub(crate) fn bound_experts(
        &self,
        confusions: &mut [crowdrl_types::ConfusionMatrix],
        profiles: &[AnnotatorProfile],
    ) -> Result<()> {
        for (m, p) in confusions.iter_mut().zip(profiles) {
            if p.is_expert() && self.config.expert_epsilon < 1.0 {
                m.bound_diagonal(self.config.expert_epsilon)?;
            }
            if let Some(floor) = self.config.min_diagonal {
                m.clamp_diagonal_min(floor)?;
            }
        }
        Ok(())
    }

    /// Retrain the classifier on answered objects with posterior soft
    /// targets, weighting each sample by its posterior confidence so
    /// near-uniform posteriors teach less.
    fn retrain<R: Rng + ?Sized>(
        &self,
        classifier: &mut SoftmaxClassifier,
        x: &Matrix,
        answered: &[usize],
        posteriors: &[Option<Vec<f64>>],
        rng: &mut R,
    ) -> Result<()> {
        let k = classifier.num_classes();
        let (targets, weights) = soft_targets(self.config.hard_labels, k, answered, posteriors)?;
        classifier.fit(x, &targets, Some(&weights), rng)?;
        Ok(())
    }
}

/// Build the classifier's training targets from the posteriors of the
/// `answered` objects: soft posterior rows (or hard argmax one-hots under
/// the `hard_labels` ablation) plus per-sample confidence weights. Shared
/// between [`JointInference::infer`]'s retrain step and the incremental
/// [`engine`](crate::engine)'s warm-start retrain.
pub(crate) fn soft_targets(
    hard_labels: bool,
    k: usize,
    answered: &[usize],
    posteriors: &[Option<Vec<f64>>],
) -> Result<(Matrix, Vec<f32>)> {
    let mut targets = Matrix::zeros(answered.len(), k);
    let mut weights = Vec::with_capacity(answered.len());
    for (r, &i) in answered.iter().enumerate() {
        let post = posteriors[i]
            .as_ref()
            .ok_or_else(|| Error::NumericalFailure("missing posterior".into()))?;
        if hard_labels {
            let best = crowdrl_types::prob::argmax(post).unwrap_or(0);
            targets.set(r, best, 1.0);
        } else {
            for (c, &q) in post.iter().enumerate() {
                targets.set(r, c, q as f32);
            }
        }
        let conf = post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        weights.push(conf as f32);
    }
    Ok((targets, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dawid_skene::DawidSkene;
    use crowdrl_nn::ClassifierConfig;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorId, AnnotatorKind, Answer};

    /// Build a labelled scenario: dataset + pool + answers for `coverage`
    /// fraction of objects from every annotator.
    fn scenario(
        n: usize,
        separation: f64,
        workers: usize,
        experts: usize,
        coverage: f64,
        seed: u64,
    ) -> (Dataset, crowdrl_sim::AnnotatorPool, AnswerSet) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", n, 4, 2)
            .with_separation(separation)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(workers, experts)
            .generate(2, &mut rng)
            .unwrap();
        let mut answers = AnswerSet::new(n);
        let answered = (n as f64 * coverage) as usize;
        for i in 0..answered {
            for a in 0..pool.len() {
                let label = pool.sample_answer(AnnotatorId(a), dataset.truth(i), &mut rng);
                answers
                    .record(Answer {
                        object: ObjectId(i),
                        annotator: AnnotatorId(a),
                        label,
                    })
                    .unwrap();
            }
        }
        (dataset, pool, answers)
    }

    fn fresh_classifier(dim: usize, seed: u64) -> SoftmaxClassifier {
        let mut rng = seeded(seed);
        let config = ClassifierConfig {
            epochs: 15,
            ..Default::default()
        };
        SoftmaxClassifier::new(config, dim, 2, &mut rng).unwrap()
    }

    fn accuracy(r: &InferenceResult, dataset: &Dataset) -> f64 {
        let inferred: Vec<_> = r.inferred_objects().collect();
        inferred
            .iter()
            .filter(|&&o| r.label(o) == Some(dataset.truth(o.index())))
            .count() as f64
            / inferred.len().max(1) as f64
    }

    #[test]
    fn joint_recovers_truth_on_answered_objects() {
        let (dataset, pool, answers) = scenario(300, 3.0, 3, 1, 1.0, 50);
        let mut clf = fresh_classifier(4, 51);
        let mut rng = seeded(52);
        let r = JointInference::default()
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .unwrap();
        let acc = accuracy(&r, &dataset);
        assert!(acc > 0.95, "joint accuracy {acc}");
        assert!(r.validate(2, 1e-6));
        assert!(clf.is_trained());
    }

    #[test]
    fn joint_beats_dawid_skene_with_weak_workers_and_features() {
        // Workers are barely better than chance, but features are separable:
        // the classifier term rescues inference where DS alone flounders.
        let mut rng = seeded(60);
        let dataset = DatasetSpec::gaussian("t", 400, 4, 2)
            .with_separation(3.0)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 0)
            .with_worker_accuracy(0.56, 0.62)
            .generate(2, &mut rng)
            .unwrap();
        let mut answers = AnswerSet::new(400);
        for i in 0..400 {
            for a in 0..3 {
                let label = pool.sample_answer(AnnotatorId(a), dataset.truth(i), &mut rng);
                answers
                    .record(Answer {
                        object: ObjectId(i),
                        annotator: AnnotatorId(a),
                        label,
                    })
                    .unwrap();
            }
        }
        let ds = DawidSkene::default().infer(&answers, 2, 3).unwrap();
        let mut clf = fresh_classifier(4, 61);
        let joint = JointInference::default()
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .unwrap();
        let ds_acc = accuracy(&ds, &dataset);
        let joint_acc = accuracy(&joint, &dataset);
        assert!(
            joint_acc > ds_acc + 0.03,
            "joint {joint_acc} should beat DS {ds_acc} when features are informative"
        );
    }

    #[test]
    fn expert_bounding_keeps_expert_quality_high() {
        let (dataset, pool, answers) = scenario(80, 1.0, 2, 1, 1.0, 70);
        let mut clf = fresh_classifier(4, 71);
        let mut rng = seeded(72);
        let joint = JointInference {
            config: JointConfig {
                expert_epsilon: 0.05,
                ..Default::default()
            },
        };
        let r = joint
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .unwrap();
        // Expert is the last annotator.
        let expert_idx = pool.len() - 1;
        assert_eq!(pool.profiles()[expert_idx].kind, AnnotatorKind::Expert);
        let q = r.confusions[expert_idx].quality();
        assert!(q >= 0.95 - 1e-9, "expert quality {q} must stay bounded");
    }

    #[test]
    fn disabling_expert_bounding_can_lower_expert_quality() {
        // With very little data the expert's estimated quality can dip; the
        // bounded run must never dip below 1-ε while the unbounded run is free.
        let (dataset, pool, answers) = scenario(6, 0.5, 2, 1, 1.0, 80);
        let mut rng = seeded(81);
        let expert_idx = pool.len() - 1;
        let bounded = JointInference {
            config: JointConfig {
                expert_epsilon: 0.02,
                ..Default::default()
            },
        }
        .infer(
            &dataset,
            &answers,
            pool.profiles(),
            &mut fresh_classifier(4, 82),
            &mut rng,
        )
        .unwrap();
        assert!(bounded.confusions[expert_idx].quality() >= 0.98 - 1e-9);
    }

    #[test]
    fn classifier_weight_zero_matches_annotators_only() {
        let (dataset, pool, answers) = scenario(150, 2.0, 4, 0, 1.0, 90);
        let mut rng = seeded(91);
        let joint = JointInference {
            config: JointConfig {
                classifier_weight: 0.0,
                expert_epsilon: 1.0,
                ..Default::default()
            },
        };
        let r = joint
            .infer(
                &dataset,
                &answers,
                pool.profiles(),
                &mut fresh_classifier(4, 92),
                &mut rng,
            )
            .unwrap();
        let ds = DawidSkene {
            max_iters: 8,
            tol: 1e-4,
            ..Default::default()
        }
        .infer(&answers, 2, 4)
        .unwrap();
        // Without the classifier term the posterior structure should be very
        // close to DS (not identical: DS also carries a class-prior term,
        // which matters on split votes from weak annotators).
        let mut agree = 0;
        let mut total = 0;
        for o in r.inferred_objects() {
            total += 1;
            if r.label(o) == ds.label(o) {
                agree += 1;
            }
        }
        assert!(agree as f64 / total as f64 > 0.88, "agree {agree}/{total}");
    }

    #[test]
    fn hard_label_retraining_still_infers_well() {
        let (dataset, pool, answers) = scenario(200, 3.0, 3, 1, 1.0, 130);
        let mut rng = seeded(131);
        let joint = JointInference {
            config: JointConfig {
                hard_labels: true,
                ..Default::default()
            },
        };
        let r = joint
            .infer(
                &dataset,
                &answers,
                pool.profiles(),
                &mut fresh_classifier(4, 132),
                &mut rng,
            )
            .unwrap();
        let acc = accuracy(&r, &dataset);
        assert!(acc > 0.9, "hard-label joint accuracy {acc}");
    }

    #[test]
    fn handles_no_answers_gracefully() {
        let mut rng = seeded(100);
        let dataset = DatasetSpec::gaussian("t", 20, 4, 2)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(2, 0).generate(2, &mut rng).unwrap();
        let answers = AnswerSet::new(20);
        let mut clf = fresh_classifier(4, 101);
        let r = JointInference::default()
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .unwrap();
        assert!(r.posteriors.iter().all(Option::is_none));
        assert_eq!(r.iterations, 0);
        assert!(!clf.is_trained());
    }

    #[test]
    fn validates_config_and_shapes() {
        let mut rng = seeded(110);
        let dataset = DatasetSpec::gaussian("t", 10, 4, 2)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(1, 0).generate(2, &mut rng).unwrap();
        let answers = AnswerSet::new(10);
        let mut clf = fresh_classifier(4, 111);

        let bad = JointInference {
            config: JointConfig {
                max_iters: 0,
                ..Default::default()
            },
        };
        assert!(bad
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .is_err());
        let bad = JointInference {
            config: JointConfig {
                expert_epsilon: 2.0,
                ..Default::default()
            },
        };
        assert!(bad
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .is_err());
        let bad = JointInference {
            config: JointConfig {
                retrain_every: 0,
                ..Default::default()
            },
        };
        assert!(bad
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .is_err());

        // Answer-set size mismatch.
        let wrong = AnswerSet::new(5);
        assert!(JointInference::default()
            .infer(&dataset, &wrong, pool.profiles(), &mut clf, &mut rng)
            .is_err());
    }

    #[test]
    fn partial_coverage_only_infers_answered_objects() {
        let (dataset, pool, answers) = scenario(100, 2.0, 3, 0, 0.4, 120);
        let mut rng = seeded(121);
        let mut clf = fresh_classifier(4, 122);
        let r = JointInference::default()
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .unwrap();
        let inferred = r.inferred_objects().count();
        assert_eq!(inferred, 40);
        assert!(r.posteriors[50].is_none());
        // But the classifier, trained inside, can now predict the rest.
        let p = clf.predict_proba_one(dataset.features(50));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-4);
    }
}
