//! # crowdrl-inference
//!
//! Truth inference: given noisy labels `ψ_i` from multiple annotators for
//! each object `o_i`, estimate the true labels `y_i` (and, as a byproduct,
//! each annotator's confusion matrix `Π̂^j`).
//!
//! The crate implements the full zoo the paper builds on and compares
//! against:
//!
//! * [`MajorityVote`] — the naive baseline (§V-A.1).
//! * [`DawidSkene`] — classical EM over confusion matrices \[48\]; the
//!   inference engine inside the DLTA and IDLE baselines.
//! * [`Pm`] — the PM / CRH conflict-minimisation algorithm \[48\], used by the
//!   Hybrid baseline and by CrowdRL's `M3` ablation.
//! * [`Glad`] — GLAD-style ability × difficulty inference (also from the
//!   survey's zoo): the classic model of *per-object* hardness.
//! * [`ClassifierAsAnnotator`] — the naive way to mix a trained model into
//!   inference: append its predictions as one more annotator column and run
//!   EM (§V-A.1, Fig. 3a). The paper argues (and our fig8-style ablation
//!   shows) this composes biases.
//! * [`JointInference`] — **the paper's contribution** (§V-A.2): one EM that
//!   couples the classifier parameters `Θ`, the annotator confusion
//!   matrices `Π^j`, and the label posteriors `q(y_i)`, with expert-quality
//!   bounding so an EM pass cannot erode a trusted expert.
//!
//! All algorithms share [`InferenceResult`]: per-object posterior
//! distributions plus per-annotator estimated confusion matrices.
//!
//! The [`engine`] module wraps the iterative models ([`JointInference`],
//! [`DawidSkene`]) in a persistent [`InferenceEngine`] that carries EM
//! state across the workflow's repeated inference calls: warm-started
//! posteriors/confusions, dirty-set E-steps, an append-only feature
//! matrix, and warm classifier retrains.

pub mod classifier_annotator;
pub mod dawid_skene;
pub mod engine;
pub mod glad;
pub mod joint;
pub mod mv;
pub(crate) mod par;
pub mod pm;
pub mod result;

pub use classifier_annotator::ClassifierAsAnnotator;
pub use dawid_skene::DawidSkene;
pub use engine::{EngineConfig, EngineSnapshot, InferenceEngine};
pub use glad::Glad;
pub use joint::{JointConfig, JointInference};
pub use mv::MajorityVote;
pub use pm::Pm;
pub use result::InferenceResult;
