//! Shared pieces of the deterministic parallel EM hot paths (DESIGN.md §9).
//!
//! Both EM implementations chunk their per-object loops over fixed,
//! data-size-only object ranges (`OBJECT_CHUNK`) via
//! [`crowdrl_linalg::pool`], and merge per-chunk partials — posterior
//! updates, log-likelihood terms, sufficient statistics — strictly in
//! chunk-index order. The chunked reduction *is* the algorithm at every
//! thread count (including one), so results cannot depend on the schedule.
//!
//! This module also hosts the per-iteration log-confusion tables: the
//! serial E-steps used to call `ln()` once per (answer, class) pair, i.e.
//! `O(total_answers · k)` transcendentals per EM iteration. The tables
//! compute each `ln(π̂^j[c, l].max(1e-12))` exactly once per
//! (annotator, truth, label) triple — `O(annotators · k²)` — and the
//! E-step reuses the stored value, which is bit-identical to recomputing
//! it (same input, same operation).

use crowdrl_types::ConfusionMatrix;

/// Objects per E-step/M-step chunk. Fixed by data size only; never derived
/// from the thread count.
pub(crate) const OBJECT_CHUNK: usize = 256;

/// Flat `[annotator][truth * k + label]` table of
/// `ln(confusions[annotator][truth, label].max(1e-12))`.
pub(crate) fn log_confusion_tables(confusions: &[ConfusionMatrix], k: usize) -> Vec<f64> {
    let mut table = Vec::with_capacity(confusions.len() * k * k);
    for m in confusions {
        for truth in 0..k {
            for label in 0..k {
                table.push(
                    m.get(crowdrl_types::ClassId(truth), crowdrl_types::ClassId(label))
                        .max(1e-12)
                        .ln(),
                );
            }
        }
    }
    table
}

/// Add `partial` into `total` element-wise. Callers invoke this in
/// chunk-index order, which fixes the floating-point summation order.
pub(crate) fn accumulate(total: &mut [f64], partial: &[f64]) {
    debug_assert_eq!(total.len(), partial.len());
    for (t, &p) in total.iter_mut().zip(partial) {
        *t += p;
    }
}
