//! Incremental truth inference: persistent EM state across workflow
//! iterations.
//!
//! The workflow (Algorithm 1) re-runs truth inference every iteration over
//! *all* answers purchased so far, and every call used to start cold:
//! majority-vote posterior init, a fresh gather of the answered-object
//! feature matrix, re-estimated confusions, and a full classifier retrain
//! per EM sweep. Per-call cost is `O(total answers)`, so a run is
//! `O(iterations x answers)` — superlinear in the labels bought.
//!
//! [`InferenceEngine`] replaces the cold restart with a carried state:
//!
//! * **Warm-start EM** — the previous call's posteriors, confusion
//!   matrices, and class prior seed the next call, so EM needs only
//!   `warm_max_iters` (1–2) sweeps on mostly-unchanged data instead of
//!   re-converging from majority vote.
//! * **Dirty-set E-steps** — the engine records per-object answer counts;
//!   a warm sweep recomputes only the objects that gained answers since
//!   the last call ("dirty") plus any object whose posterior still moved
//!   noticeably in the last sweep ("moved"). Every `full_sweep_every`-th warm call
//!   sweeps all answered objects so confusion-matrix drift still
//!   propagates globally. The M-step always uses *all* posteriors, so the
//!   confusions stay consistent with the full answer set.
//! * **Append-only feature matrix** — the gathered `x` grows in place
//!   ([`Matrix::push_row`]) as objects receive their first answer, instead
//!   of being re-gathered from the dataset each call.
//! * **Classifier warm-start** — the warm retrain continues from the
//!   current weights (and persistent Adam state) with `warm_epochs`
//!   epochs; the cold path keeps the configured epoch count.
//!
//! Determinism contract (DESIGN.md §9 and §11): warm sweeps chunk the
//! *active* object list over fixed 256-object ranges and merge partials in
//! chunk-index order, exactly like the cold E-steps, so a warm-started run
//! is bit-identical run-to-run for a fixed seed and at every worker-pool
//! width. The engine falls back to a cold start whenever its carried state
//! cannot be trusted: first call, a differently-shaped answer set, or an
//! answer count that *decreased* (a different run's answers).
//!
//! The `em.joint.dirty_fraction` / `em.joint.warm_iters` gauges (and their
//! `em.ds.*` twins) expose the dirty-set win to `crowdrl-trace`.

use crate::dawid_skene::{estimate_one_coin, DawidSkene};
use crate::joint::{soft_targets, JointInference};
use crate::result::InferenceResult;
use crowdrl_linalg::{pool, Matrix};
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_obs as obs;
use crowdrl_types::prob;
use crowdrl_types::{AnnotatorProfile, AnswerSet, Dataset, Error, ObjectId, Result};
use rand::Rng;

/// Row sentinel for objects that have no feature row yet.
const NO_ROW: usize = usize::MAX;

/// An object stays in the active set while its posterior moves more than
/// this multiple of the model's convergence `tol` per sweep. Convergence
/// still uses `tol` itself; the looser retention bound only bounds how
/// long a nearly-settled object keeps getting re-swept (anything it
/// under-tracks is corrected by the periodic full sweeps).
const MOVED_TOL_FACTOR: f64 = 10.0;

/// Knobs of the incremental engine. The cold path (every call a full
/// inference from scratch) stays available behind `warm_start = false`,
/// so ablations and baselines are unaffected.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Carry EM state across calls. `false` restores the pre-engine
    /// behaviour exactly: every call is a cold, stateless inference.
    pub warm_start: bool,
    /// Every this-many warm calls, the E-step sweeps *all* answered
    /// objects (still warm-started) instead of just the dirty/moved set,
    /// so global confusion-matrix drift reaches every posterior.
    pub full_sweep_every: usize,
    /// Maximum EM sweeps per warm call (cold calls use the model's own
    /// `max_iters`).
    pub warm_max_iters: usize,
    /// Classifier epochs per warm retrain (cold fits use the classifier's
    /// configured epoch count).
    pub warm_epochs: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            warm_start: true,
            full_sweep_every: 8,
            warm_max_iters: 3,
            warm_epochs: 4,
        }
    }
}

impl EngineConfig {
    /// Validate parameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.full_sweep_every == 0 {
            return Err(Error::InvalidParameter(
                "full_sweep_every must be positive".into(),
            ));
        }
        if self.warm_max_iters == 0 {
            return Err(Error::InvalidParameter(
                "warm_max_iters must be positive".into(),
            ));
        }
        if self.warm_epochs == 0 {
            return Err(Error::InvalidParameter(
                "warm_epochs must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The EM model the engine runs incrementally. Majority vote and PM are
/// single-pass algorithms with nothing to warm-start, so the engine only
/// wraps the iterative models.
#[derive(Debug, Clone)]
enum EngineModel {
    Joint(JointInference),
    DawidSkene(DawidSkene),
}

/// Carried state between calls.
#[derive(Debug, Clone)]
struct EngineState {
    /// The previous call's full result (posteriors, confusions, prior) —
    /// both the warm seed for the next call and the cached reply when no
    /// answers arrived in between (the finalize path).
    last: InferenceResult,
    /// Per-object answer counts at the last call; a count increase marks
    /// the object dirty.
    answer_counts: Vec<usize>,
    /// Total answers at the last call.
    total_answers: usize,
    /// Objects whose posterior moved ≥ [`MOVED_TOL_FACTOR`] · `tol` in the
    /// last sweep — they stay in the active set until they settle.
    moved: Vec<bool>,
    /// Append-only feature matrix over `answered` (joint model only; empty
    /// for Dawid–Skene, which never reads features).
    x: Matrix,
    /// Object index per `x` row, in row order.
    answered: Vec<usize>,
    /// `x` row per object ([`NO_ROW`] when unanswered).
    row_of: Vec<usize>,
    /// Warm calls since the last full-coverage sweep (a cold start counts
    /// as full coverage).
    warm_calls_since_full: usize,
}

/// Portable image of the engine's carried state, for crash-consistent
/// checkpointing. Holds exactly the fields that cannot be re-derived:
/// the derived structures (`row_of`, the gathered feature matrix `x`) are
/// rebuilt from `answered` and the dataset on restore, so the snapshot
/// stays small and dataset-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// The previous call's full result (warm seed).
    pub last: InferenceResult,
    /// Per-object answer counts at the last call.
    pub answer_counts: Vec<usize>,
    /// Total answers at the last call.
    pub total_answers: usize,
    /// Per-object "posterior still moving" flags.
    pub moved: Vec<bool>,
    /// Objects with at least one answer, in feature-row order.
    pub answered: Vec<usize>,
    /// Warm calls since the last full-coverage sweep.
    pub warm_calls_since_full: usize,
    /// Monotonic call counter.
    pub calls: u64,
}

/// A persistent truth-inference engine (see module docs). Owned by the
/// batch workflow and by `crowdrl-serve`'s agent core; one engine per run,
/// paired with the run's classifier.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    model: EngineModel,
    config: EngineConfig,
    state: Option<EngineState>,
    /// Monotonic call index — the x-axis of the engine gauges.
    calls: u64,
}

impl InferenceEngine {
    /// An engine running the joint model incrementally.
    pub fn joint(model: JointInference, config: EngineConfig) -> Self {
        Self {
            model: EngineModel::Joint(model),
            config,
            state: None,
            calls: 0,
        }
    }

    /// An engine running Dawid–Skene incrementally.
    pub fn dawid_skene(model: DawidSkene, config: EngineConfig) -> Self {
        Self {
            model: EngineModel::DawidSkene(model),
            config,
            state: None,
            calls: 0,
        }
    }

    /// The engine's configuration (read-only).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Override the configuration (tests and ablations; the carried state
    /// is kept).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Drop the carried state: the next call is a cold start.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Capture the carried state for checkpointing. `None` when the engine
    /// has no state yet (no call made, or `warm_start` off) — restoring
    /// `None` is simply a fresh engine, which is already equivalent.
    pub fn export_state(&self) -> Option<EngineSnapshot> {
        self.state.as_ref().map(|s| EngineSnapshot {
            last: s.last.clone(),
            answer_counts: s.answer_counts.clone(),
            total_answers: s.total_answers,
            moved: s.moved.clone(),
            answered: s.answered.clone(),
            warm_calls_since_full: s.warm_calls_since_full,
            calls: self.calls,
        })
    }

    /// Reinstate state captured by [`InferenceEngine::export_state`],
    /// rebuilding the derived row map and feature matrix from `dataset`.
    /// After this, the next `infer` continues exactly where the
    /// checkpointed engine would have.
    pub fn restore_state(&mut self, snap: EngineSnapshot, dataset: &Dataset) -> Result<()> {
        let n = dataset.len();
        if snap.answer_counts.len() != n || snap.moved.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: snap.answer_counts.len(),
                context: "engine snapshot object count".into(),
            });
        }
        if snap.last.posteriors.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: snap.last.posteriors.len(),
                context: "engine snapshot posteriors".into(),
            });
        }
        let mut row_of = vec![NO_ROW; n];
        for (r, &i) in snap.answered.iter().enumerate() {
            if i >= n {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: n,
                    context: "engine snapshot answered object".into(),
                });
            }
            row_of[i] = r;
        }
        let mut x = Matrix::zeros(0, dataset.dim());
        if matches!(self.model, EngineModel::Joint(_)) {
            x = Matrix::zeros(snap.answered.len(), dataset.dim());
            for (r, &i) in snap.answered.iter().enumerate() {
                x.row_mut(r).copy_from_slice(dataset.features(i));
            }
        }
        self.calls = snap.calls;
        self.state = Some(EngineState {
            last: snap.last,
            answer_counts: snap.answer_counts,
            total_answers: snap.total_answers,
            moved: snap.moved,
            x,
            answered: snap.answered,
            row_of,
            warm_calls_since_full: snap.warm_calls_since_full,
        });
        Ok(())
    }

    /// Run one inference over `answers`, reusing the carried state when
    /// possible. Semantics match the wrapped model's `infer` up to EM
    /// scheduling: same E/M formulas, warm-seeded instead of
    /// majority-vote-seeded, and the E-step restricted to the active set
    /// on incremental calls. When no answers arrived since the previous
    /// call, the cached result is returned without touching the RNG.
    pub fn infer<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        answers: &AnswerSet,
        profiles: &[AnnotatorProfile],
        classifier: &mut SoftmaxClassifier,
        rng: &mut R,
    ) -> Result<InferenceResult> {
        self.config.validate()?;
        let n = dataset.len();
        let reusable = self.config.warm_start
            && match &self.state {
                Some(state) => {
                    state.answer_counts.len() == n
                        && state.total_answers <= answers.total_answers()
                        && (0..n).all(|i| {
                            answers.answers_for(ObjectId(i)).len() >= state.answer_counts[i]
                        })
                }
                None => false,
            };
        if !reusable {
            self.state = None;
            return self.cold_call(dataset, answers, profiles, classifier, rng);
        }
        // Unchanged answer set: the previous result is still the answer.
        // The finalize paths hit this when the last loop iteration already
        // inferred over every purchased answer.
        if self.state.as_ref().map(|s| s.total_answers) == Some(answers.total_answers()) {
            return Ok(self
                .state
                .as_ref()
                .expect("state checked above")
                .last
                .clone());
        }
        self.warm_call(dataset, answers, profiles, classifier, rng)
    }

    /// Cold path: delegate to the wrapped model's full inference, then
    /// capture the state the next call warms from.
    fn cold_call<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        answers: &AnswerSet,
        profiles: &[AnnotatorProfile],
        classifier: &mut SoftmaxClassifier,
        rng: &mut R,
    ) -> Result<InferenceResult> {
        self.calls += 1;
        let result = match &self.model {
            EngineModel::Joint(m) => m.infer(dataset, answers, profiles, classifier, rng)?,
            EngineModel::DawidSkene(m) => {
                m.infer(answers, dataset.num_classes(), profiles.len())?
            }
        };
        let n = dataset.len();
        let answered: Vec<usize> = (0..n)
            .filter(|&i| !answers.answers_for(ObjectId(i)).is_empty())
            .collect();
        if !self.config.warm_start || answered.is_empty() {
            // Nothing worth carrying (and with warm_start off, carrying
            // state would change behaviour on shrunk answer sets).
            return Ok(result);
        }
        let mut row_of = vec![NO_ROW; n];
        let mut x = Matrix::zeros(0, dataset.dim());
        if matches!(self.model, EngineModel::Joint(_)) {
            x = Matrix::zeros(answered.len(), dataset.dim());
            for (r, &i) in answered.iter().enumerate() {
                x.row_mut(r).copy_from_slice(dataset.features(i));
                row_of[i] = r;
            }
        } else {
            for (r, &i) in answered.iter().enumerate() {
                row_of[i] = r;
            }
        }
        // A cold EM may have stopped at max_iters with posteriors still in
        // motion, so every answered object starts "moved": the first warm
        // sweep revisits all of them and the flags settle per object.
        let mut moved = vec![false; n];
        for &i in &answered {
            moved[i] = true;
        }
        self.state = Some(EngineState {
            last: result.clone(),
            answer_counts: (0..n)
                .map(|i| answers.answers_for(ObjectId(i)).len())
                .collect(),
            total_answers: answers.total_answers(),
            moved,
            x,
            answered,
            row_of,
            warm_calls_since_full: 0,
        });
        Ok(result)
    }

    /// Warm path: seed from the carried state and sweep only the active
    /// (dirty ∪ moved) objects, or everything on a full-sweep call.
    fn warm_call<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        answers: &AnswerSet,
        profiles: &[AnnotatorProfile],
        classifier: &mut SoftmaxClassifier,
        rng: &mut R,
    ) -> Result<InferenceResult> {
        let _span = obs::span("em.engine.warm");
        self.calls += 1;
        let call = self.calls as f64;
        let n = dataset.len();
        let k = dataset.num_classes();
        let num_annotators = profiles.len();
        let state = self.state.as_mut().expect("warm_call requires state");

        // Dirty objects: answer count increased since the last call. New
        // objects additionally get a feature row appended to `x`.
        let mut dirty: Vec<usize> = Vec::new();
        for i in 0..n {
            let count = answers.answers_for(ObjectId(i)).len();
            if count > state.answer_counts[i] {
                dirty.push(i);
                if state.row_of[i] == NO_ROW {
                    state.row_of[i] = state.answered.len();
                    state.answered.push(i);
                    if matches!(self.model, EngineModel::Joint(_)) {
                        state.x.push_row(dataset.features(i));
                    }
                }
            }
            state.answer_counts[i] = count;
        }
        state.total_answers = answers.total_answers();

        // Active set for the first sweep: everything on a full-sweep call,
        // else dirty ∪ moved (ascending object order — deterministic).
        let full_sweep = state.warm_calls_since_full + 1 >= self.config.full_sweep_every;
        let active: Vec<usize> = if full_sweep {
            state.warm_calls_since_full = 0;
            state.answered.clone()
        } else {
            state.warm_calls_since_full += 1;
            let mut is_active = vec![false; n];
            for &i in &dirty {
                is_active[i] = true;
            }
            for (i, flag) in is_active.iter_mut().enumerate() {
                *flag = *flag || state.moved[i];
            }
            (0..n).filter(|&i| is_active[i]).collect()
        };

        let mut posteriors = std::mem::take(&mut state.last.posteriors);
        if posteriors.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: posteriors.len(),
                context: "engine carried posteriors".into(),
            });
        }
        let mut confusions = std::mem::take(&mut state.last.confusions);
        let mut iterations = 0;
        let mut log_likelihood = state.last.log_likelihood;

        match &self.model {
            EngineModel::Joint(model) => {
                let cfg = &model.config;
                if classifier.num_classes() != k || !classifier.is_trained() {
                    return Err(Error::InvalidParameter(
                        "engine warm call requires a trained classifier of matching width".into(),
                    ));
                }
                // Gather the active rows of the carried feature matrix
                // once; φ is re-evaluated on them each sweep (the
                // classifier retrains in the M-step).
                let mut ax = Matrix::zeros(active.len(), dataset.dim());
                for (r, &i) in active.iter().enumerate() {
                    ax.row_mut(r).copy_from_slice(state.x.row(state.row_of[i]));
                }
                let lo = cfg.phi_clamp.max(1e-12);
                let hi = 1.0 - cfg.phi_clamp;
                let cw = cfg.classifier_weight;
                // φ is evaluated once per call: the warm retrain runs once,
                // *after* the sweeps, so within a call the classifier term
                // is fixed. Keeping φ stable across the sweeps also keeps
                // the `moved` flags meaningful — they measure EM settling,
                // not classifier drift, so the active set actually shrinks
                // between calls (the retrained φ reaches every posterior on
                // the periodic full sweeps).
                let phi = classifier.predict_proba(&ax);
                for _ in 0..self.config.warm_max_iters {
                    iterations += 1;
                    // E-step over the active set only — same formula as the
                    // cold joint E-step, chunked with partials merged in
                    // chunk-index order (bit-identical at any pool width).
                    let log_conf = crate::par::log_confusion_tables(&confusions, k);
                    let active_ref = &active;
                    let posts_ref = &posteriors;
                    let _kind = pool::task_kind("em_estep");
                    let chunks =
                        pool::map_chunks(active_ref.len(), crate::par::OBJECT_CHUNK, |range| {
                            let mut out: Vec<(Vec<f64>, f64)> = Vec::with_capacity(range.len());
                            let mut ll = 0.0f64;
                            let mut logp = vec![0.0f64; k];
                            for r in range {
                                let i = active_ref[r];
                                for (c, lp) in logp.iter_mut().enumerate() {
                                    *lp = cw * (phi.get(r, c) as f64).clamp(lo, hi).ln();
                                }
                                for &(a, label) in answers.answers_for(ObjectId(i)) {
                                    let table =
                                        &log_conf[a.index() * k * k..(a.index() + 1) * k * k];
                                    for (c, lp) in logp.iter_mut().enumerate() {
                                        *lp += table[c * k + label.index()];
                                    }
                                }
                                let mut q = Vec::with_capacity(k);
                                let lse = prob::softmax_from_logs(&logp, &mut q);
                                ll += lse;
                                let delta = match &posts_ref[i] {
                                    Some(old) => old
                                        .iter()
                                        .zip(&q)
                                        .map(|(o, n)| (o - n).abs())
                                        .fold(0.0f64, f64::max),
                                    // First posterior for a new object.
                                    None => 1.0,
                                };
                                out.push((q, delta));
                            }
                            (out, ll)
                        });
                    let mut max_delta = 0.0f64;
                    let mut ll = 0.0f64;
                    for (ci, (out, ll_part)) in chunks.into_iter().enumerate() {
                        ll += ll_part;
                        let range = pool::chunk_range(active.len(), crate::par::OBJECT_CHUNK, ci);
                        for (offset, (q, delta)) in out.into_iter().enumerate() {
                            let i = active[range.start + offset];
                            max_delta = max_delta.max(delta);
                            state.moved[i] = delta >= MOVED_TOL_FACTOR * cfg.tol;
                            posteriors[i] = Some(q);
                        }
                    }
                    if !ll.is_finite() {
                        return Err(Error::NumericalFailure(
                            "joint warm likelihood diverged".into(),
                        ));
                    }
                    // The warm log-likelihood covers the swept set only —
                    // a per-call progress signal, not comparable across
                    // calls with different active sets.
                    log_likelihood = ll;

                    // M-step over *all* posteriors, exactly as the cold
                    // path: confusions, expert bounding, classifier
                    // retrain (short warm epoch budget, continuing from
                    // the current weights and Adam state).
                    confusions = if cfg.one_coin {
                        estimate_one_coin(answers, &posteriors, k, num_annotators)?
                    } else {
                        model.soft_confusions(answers, &posteriors, k, num_annotators)?
                    };
                    model.bound_experts(&mut confusions, profiles)?;
                    if max_delta < cfg.tol {
                        break;
                    }
                }
                // One warm retrain per call, continuing from the current
                // weights and Adam state with the short epoch budget; the
                // next call's E-step picks up the refreshed φ.
                let (targets, weights) =
                    soft_targets(cfg.hard_labels, k, &state.answered, &posteriors)?;
                classifier.fit_with_epochs(
                    &state.x,
                    &targets,
                    Some(&weights),
                    self.config.warm_epochs,
                    rng,
                )?;
                if obs::enabled() {
                    let denom = state.answered.len().max(1) as f64;
                    obs::gauge_step("em.joint.dirty_fraction", call, active.len() as f64 / denom);
                    obs::gauge_step("em.joint.warm_iters", call, iterations as f64);
                }
            }
            EngineModel::DawidSkene(model) => {
                if model.max_iters == 0 {
                    return Err(Error::InvalidParameter("max_iters must be positive".into()));
                }
                let mut class_prior = std::mem::take(&mut state.last.class_prior);
                for _ in 0..self.config.warm_max_iters {
                    iterations += 1;
                    // M-step first, over all posteriors — DS order.
                    confusions = model.m_step(answers, &posteriors, k, num_annotators)?;
                    if model.estimate_prior {
                        let mut prior = vec![1e-9f64; k];
                        for post in posteriors.iter().flatten() {
                            for (pr, &q) in prior.iter_mut().zip(post) {
                                *pr += q;
                            }
                        }
                        prob::normalize(&mut prior);
                        class_prior = prior;
                    } else {
                        class_prior = vec![1.0 / k as f64; k];
                    }
                    let log_prior: Vec<f64> =
                        class_prior.iter().map(|&p| p.max(1e-12).ln()).collect();
                    let log_conf = crate::par::log_confusion_tables(&confusions, k);
                    let active_ref = &active;
                    let posts_ref = &posteriors;
                    let _kind = pool::task_kind("em_estep");
                    let chunks =
                        pool::map_chunks(active_ref.len(), crate::par::OBJECT_CHUNK, |range| {
                            let mut out: Vec<(Vec<f64>, f64)> = Vec::with_capacity(range.len());
                            let mut ll = 0.0f64;
                            let mut logp = vec![0.0f64; k];
                            for r in range {
                                let i = active_ref[r];
                                logp.copy_from_slice(&log_prior);
                                for &(a, label) in answers.answers_for(ObjectId(i)) {
                                    let table =
                                        &log_conf[a.index() * k * k..(a.index() + 1) * k * k];
                                    for (c, lp) in logp.iter_mut().enumerate() {
                                        *lp += table[c * k + label.index()];
                                    }
                                }
                                let mut q = Vec::with_capacity(k);
                                let lse = prob::softmax_from_logs(&logp, &mut q);
                                ll += lse;
                                let delta = match &posts_ref[i] {
                                    Some(old) => old
                                        .iter()
                                        .zip(&q)
                                        .map(|(o, n)| (o - n).abs())
                                        .fold(0.0f64, f64::max),
                                    None => 1.0,
                                };
                                out.push((q, delta));
                            }
                            (out, ll)
                        });
                    let mut max_delta = 0.0f64;
                    let mut ll = 0.0f64;
                    for (ci, (out, ll_part)) in chunks.into_iter().enumerate() {
                        ll += ll_part;
                        let range = pool::chunk_range(active.len(), crate::par::OBJECT_CHUNK, ci);
                        for (offset, (q, delta)) in out.into_iter().enumerate() {
                            let i = active[range.start + offset];
                            max_delta = max_delta.max(delta);
                            state.moved[i] = delta >= MOVED_TOL_FACTOR * model.tol;
                            posteriors[i] = Some(q);
                        }
                    }
                    if !ll.is_finite() {
                        return Err(Error::NumericalFailure(
                            "DS warm likelihood diverged".into(),
                        ));
                    }
                    log_likelihood = ll;
                    if max_delta < model.tol {
                        break;
                    }
                }
                // Final M-step so reported confusions match the final
                // posteriors (mirrors the cold DS path).
                confusions = model.m_step(answers, &posteriors, k, num_annotators)?;
                state.last.class_prior = class_prior;
                if obs::enabled() {
                    let denom = state.answered.len().max(1) as f64;
                    obs::gauge_step("em.ds.dirty_fraction", call, active.len() as f64 / denom);
                    obs::gauge_step("em.ds.warm_iters", call, iterations as f64);
                }
            }
        }

        let class_prior = match &self.model {
            // Joint reports the posterior-mass prior, like its cold path.
            EngineModel::Joint(_) => {
                let mut prior = vec![1e-9f64; k];
                for p in posteriors.iter().flatten() {
                    for (pr, &q) in prior.iter_mut().zip(p) {
                        *pr += q;
                    }
                }
                prob::normalize(&mut prior);
                prior
            }
            EngineModel::DawidSkene(_) => state.last.class_prior.clone(),
        };

        let result = InferenceResult {
            posteriors,
            confusions,
            class_prior,
            iterations,
            log_likelihood,
        };
        state.last = result.clone();
        Ok(result)
    }
}
