//! Majority voting — the naive truth-inference baseline (§V-A.1).
//!
//! Each object's posterior is the empirical vote distribution; confusion
//! matrices are then estimated against the MV labels, which is also how the
//! iterative algorithms initialize.

use crate::result::InferenceResult;
use crowdrl_linalg::pool;
use crowdrl_types::prob;
use crowdrl_types::{AnswerSet, ConfusionMatrix, Error, Result};

/// Majority-vote truth inference.
#[derive(Debug, Clone, Default)]
pub struct MajorityVote;

impl MajorityVote {
    /// Infer posteriors (vote fractions) and estimate annotator confusion
    /// matrices against the vote distribution.
    #[allow(clippy::needless_range_loop)] // index spans several parallel structures
    pub fn infer(
        &self,
        answers: &AnswerSet,
        num_classes: usize,
        num_annotators: usize,
    ) -> Result<InferenceResult> {
        if num_classes < 2 {
            return Err(Error::InvalidParameter("need at least two classes".into()));
        }
        let n = answers.num_objects();
        let mut posteriors: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut class_prior = vec![0.0f64; num_classes];
        for i in 0..n {
            let obj = crowdrl_types::ObjectId(i);
            let votes = answers.answers_for(obj);
            if votes.is_empty() {
                continue;
            }
            let mut p = vec![0.0f64; num_classes];
            for &(_, c) in votes {
                if c.index() >= num_classes {
                    return Err(Error::IndexOutOfBounds {
                        index: c.index(),
                        len: num_classes,
                        context: "majority vote".into(),
                    });
                }
                p[c.index()] += 1.0;
            }
            prob::normalize(&mut p);
            for (prior, &pi) in class_prior.iter_mut().zip(&p) {
                *prior += pi;
            }
            posteriors[i] = Some(p);
        }
        prob::normalize(&mut class_prior);
        let confusions = estimate_confusions(answers, &posteriors, num_classes, num_annotators)?;
        Ok(InferenceResult {
            posteriors,
            confusions,
            class_prior,
            iterations: 1,
            log_likelihood: f64::NAN,
        })
    }
}

/// Soft confusion counts `[annotator][truth * k + label]` (flat, length
/// `num_annotators * k²`): the M-step sufficient statistics shared by MV
/// initialization and the EM algorithms.
///
/// The per-object loop is chunked over fixed object ranges on the worker
/// pool; each chunk accumulates its own partial grid and the partials are
/// summed in chunk-index order, so the counts are bit-identical for any
/// thread count (DESIGN.md §9).
pub(crate) fn soft_count_grids(
    answers: &AnswerSet,
    posteriors: &[Option<Vec<f64>>],
    num_classes: usize,
    num_annotators: usize,
) -> Result<Vec<f64>> {
    let k = num_classes;
    let len = num_annotators * k * k;
    let _kind = pool::task_kind("em_mstep");
    let partials = pool::map_chunks(
        answers.num_objects(),
        crate::par::OBJECT_CHUNK,
        |range| -> Result<Vec<f64>> {
            let mut counts = vec![0.0f64; len];
            for i in range {
                let Some(post) = posteriors[i].as_ref() else {
                    continue;
                };
                for &(a, label) in answers.answers_for(crowdrl_types::ObjectId(i)) {
                    if a.index() >= num_annotators {
                        return Err(Error::IndexOutOfBounds {
                            index: a.index(),
                            len: num_annotators,
                            context: "confusion estimation".into(),
                        });
                    }
                    let grid = &mut counts[a.index() * k * k..(a.index() + 1) * k * k];
                    for (truth, &q) in post.iter().enumerate() {
                        grid[truth * k + label.index()] += q;
                    }
                }
            }
            Ok(counts)
        },
    );
    let mut counts = vec![0.0f64; len];
    for partial in partials {
        crate::par::accumulate(&mut counts, &partial?);
    }
    Ok(counts)
}

/// Estimate confusion matrices from soft labels: the M-step shared by MV
/// initialization and the EM algorithms. `smoothing = 1` (Laplace).
pub(crate) fn estimate_confusions(
    answers: &AnswerSet,
    posteriors: &[Option<Vec<f64>>],
    num_classes: usize,
    num_annotators: usize,
) -> Result<Vec<ConfusionMatrix>> {
    let counts = soft_count_grids(answers, posteriors, num_classes, num_annotators)?;
    let mut confusions = Vec::with_capacity(num_annotators);
    for grid in counts.chunks_exact(num_classes * num_classes) {
        let mut m = ConfusionMatrix::uniform(num_classes)?;
        m.set_from_counts(grid, 1.0)?;
        confusions.push(m);
    }
    Ok(confusions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::{AnnotatorId, Answer, ClassId, ObjectId};

    fn ans(o: usize, a: usize, c: usize) -> Answer {
        Answer {
            object: ObjectId(o),
            annotator: AnnotatorId(a),
            label: ClassId(c),
        }
    }

    #[test]
    fn unanimous_answers_give_certain_posterior() {
        let mut set = AnswerSet::new(2);
        set.record(ans(0, 0, 1)).unwrap();
        set.record(ans(0, 1, 1)).unwrap();
        let r = MajorityVote.infer(&set, 2, 2).unwrap();
        assert_eq!(r.label(ObjectId(0)), Some(ClassId(1)));
        assert_eq!(r.confidence(ObjectId(0)), Some(1.0));
        assert!(r.posteriors[1].is_none());
        assert!(r.validate(2, 1e-9));
    }

    #[test]
    fn split_vote_gives_split_posterior() {
        let mut set = AnswerSet::new(1);
        set.record(ans(0, 0, 0)).unwrap();
        set.record(ans(0, 1, 1)).unwrap();
        set.record(ans(0, 2, 1)).unwrap();
        let r = MajorityVote.infer(&set, 2, 3).unwrap();
        let p = r.posteriors[0].as_ref().unwrap();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.label(ObjectId(0)), Some(ClassId(1)));
    }

    #[test]
    fn paper_example_o1_majority_is_positive() {
        // Example 1: answers for o1 were {positive, negative, positive}.
        let mut set = AnswerSet::new(1);
        set.record(ans(0, 0, 0)).unwrap(); // positive
        set.record(ans(0, 2, 1)).unwrap(); // negative
        set.record(ans(0, 3, 0)).unwrap(); // positive
        let r = MajorityVote.infer(&set, 2, 4).unwrap();
        assert_eq!(r.label(ObjectId(0)), Some(ClassId(0)));
    }

    #[test]
    fn confusions_reflect_agreement_with_majority() {
        let mut set = AnswerSet::new(4);
        // Annotator 0 always agrees with the (unanimous-vs-it) majority,
        // annotator 2 always disagrees.
        for o in 0..4 {
            set.record(ans(o, 0, 0)).unwrap();
            set.record(ans(o, 1, 0)).unwrap();
            set.record(ans(o, 2, 1)).unwrap();
        }
        let r = MajorityVote.infer(&set, 2, 3).unwrap();
        let q = r.qualities();
        assert!(q[0] > q[2], "agreeing annotator should look better: {q:?}");
        for m in &r.confusions {
            m.validate(1e-9).unwrap();
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let set = AnswerSet::new(1);
        assert!(MajorityVote.infer(&set, 1, 1).is_err());
        let mut set = AnswerSet::new(1);
        set.record(ans(0, 0, 5)).unwrap();
        assert!(MajorityVote.infer(&set, 2, 1).is_err());
    }

    #[test]
    fn class_prior_aggregates_posteriors() {
        let mut set = AnswerSet::new(2);
        set.record(ans(0, 0, 0)).unwrap();
        set.record(ans(1, 0, 1)).unwrap();
        let r = MajorityVote.infer(&set, 2, 1).unwrap();
        assert!((r.class_prior[0] - 0.5).abs() < 1e-12);
    }
}
