//! The naive way to use a trained model in truth inference (§V-A.1,
//! Fig. 3a): treat the classifier as one more "annotator", append its hard
//! predictions as an extra answer column, and run Dawid–Skene over the
//! augmented matrix.
//!
//! The paper argues this composes biases — the classifier was trained on
//! labels already polluted by annotator noise, so modelling it as an
//! independent annotator double-counts that noise. It exists here as the
//! comparison point for [`JointInference`](crate::JointInference); the
//! fig8-style ablation benchmark measures the gap.

use crate::dawid_skene::DawidSkene;
use crate::result::InferenceResult;
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_types::{AnnotatorId, Answer, AnswerSet, Dataset, Error, ObjectId, Result};

/// Dawid–Skene with the classifier appended as a pseudo-annotator.
#[derive(Debug, Clone, Default)]
pub struct ClassifierAsAnnotator {
    /// The underlying EM configuration.
    pub ds: DawidSkene,
}

impl ClassifierAsAnnotator {
    /// Run inference. The classifier's argmax prediction for every answered
    /// object is recorded under the pseudo-annotator id `num_annotators`;
    /// the returned result's `confusions` has `num_annotators + 1` entries,
    /// the last being the classifier's estimated confusion.
    pub fn infer(
        &self,
        dataset: &Dataset,
        answers: &AnswerSet,
        num_annotators: usize,
        classifier: &SoftmaxClassifier,
    ) -> Result<InferenceResult> {
        if !classifier.is_trained() {
            return Err(Error::InvalidParameter(
                "classifier must be trained before use as pseudo-annotator".into(),
            ));
        }
        if classifier.num_classes() != dataset.num_classes() {
            return Err(Error::DimensionMismatch {
                expected: dataset.num_classes(),
                actual: classifier.num_classes(),
                context: "classifier-as-annotator classes".into(),
            });
        }
        if answers.num_objects() != dataset.len() {
            return Err(Error::DimensionMismatch {
                expected: dataset.len(),
                actual: answers.num_objects(),
                context: "classifier-as-annotator answers".into(),
            });
        }
        let pseudo = AnnotatorId(num_annotators);
        let mut augmented = answers.clone();
        for i in 0..dataset.len() {
            let obj = ObjectId(i);
            if augmented.answers_for(obj).is_empty() {
                continue;
            }
            let label = classifier.predict_one(dataset.features(i));
            augmented.record(Answer {
                object: obj,
                annotator: pseudo,
                label,
            })?;
        }
        self.ds
            .infer(&augmented, dataset.num_classes(), num_annotators + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_linalg::Matrix;
    use crowdrl_nn::ClassifierConfig;
    use crowdrl_sim::DatasetSpec;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{ClassId, ConfusionMatrix};

    fn trained_setup(seed: u64) -> (Dataset, SoftmaxClassifier) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", 200, 4, 2)
            .with_separation(3.0)
            .generate(&mut rng)
            .unwrap();
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 4, 2, &mut rng).unwrap();
        let x = Matrix::from_vec(dataset.len(), 4, dataset.feature_buffer().to_vec());
        let y: Vec<ClassId> = dataset.truth_slice().to_vec();
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        (dataset, clf)
    }

    #[test]
    fn classifier_vote_tips_split_panels() {
        let (dataset, clf) = trained_setup(31);
        let mut rng = seeded(32);
        // Two annotators that always disagree -> MV/DS alone is a coin flip;
        // the classifier's vote breaks the tie toward the truth.
        let mut answers = AnswerSet::new(dataset.len());
        let good = ConfusionMatrix::with_accuracy(2, 0.93).unwrap();
        for i in 0..dataset.len() {
            let truth = dataset.truth(i);
            let a0 = good.sample_answer(truth, &mut rng);
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: AnnotatorId(0),
                    label: a0,
                })
                .unwrap();
            let flipped = ClassId(1 - a0.index());
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: AnnotatorId(1),
                    label: flipped,
                })
                .unwrap();
        }
        let r = ClassifierAsAnnotator::default()
            .infer(&dataset, &answers, 2, &clf)
            .unwrap();
        let acc = (0..dataset.len())
            .filter(|&i| r.label(ObjectId(i)) == Some(dataset.truth(i)))
            .count() as f64
            / dataset.len() as f64;
        assert!(acc > 0.85, "accuracy with classifier tiebreak {acc}");
        // Pseudo-annotator confusion is reported last.
        assert_eq!(r.confusions.len(), 3);
    }

    #[test]
    fn requires_trained_classifier() {
        let mut rng = seeded(33);
        let dataset = DatasetSpec::gaussian("t", 10, 4, 2)
            .generate(&mut rng)
            .unwrap();
        let clf = SoftmaxClassifier::new(ClassifierConfig::default(), 4, 2, &mut rng).unwrap();
        let answers = AnswerSet::new(10);
        assert!(ClassifierAsAnnotator::default()
            .infer(&dataset, &answers, 0, &clf)
            .is_err());
    }

    #[test]
    fn validates_shapes() {
        let (dataset, clf) = trained_setup(34);
        let answers = AnswerSet::new(5); // wrong size
        assert!(ClassifierAsAnnotator::default()
            .infer(&dataset, &answers, 2, &clf)
            .is_err());
    }

    #[test]
    fn unanswered_objects_get_no_pseudo_vote() {
        let (dataset, clf) = trained_setup(35);
        let mut answers = AnswerSet::new(dataset.len());
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(0),
                label: ClassId(0),
            })
            .unwrap();
        let r = ClassifierAsAnnotator::default()
            .infer(&dataset, &answers, 1, &clf)
            .unwrap();
        assert!(r.posteriors[0].is_some());
        assert!(r.posteriors[1].is_none());
    }
}
