//! PM truth inference — conflict-minimisation with annotator weights
//! (the "PM" algorithm of Zheng et al.'s survey \[48\], in the CRH family).
//!
//! PM models each annotator with a single scalar weight instead of a full
//! confusion matrix and alternates:
//!
//! * **truth step** — each object's label is the weighted majority of its
//!   answers;
//! * **weight step** — `w_j = -ln(err_j / Σ_k err_k)` where `err_j` is
//!   annotator `j`'s (smoothed) disagreement rate with the current truths.
//!
//! The paper's Hybrid baseline uses PM for inference, and CrowdRL's `M3`
//! ablation replaces the joint model with PM ("using PM algorithm \[48\] as
//! inference model", §VI-B.3).

use crate::mv::estimate_confusions;
use crate::result::InferenceResult;
use crowdrl_types::prob;
use crowdrl_types::{AnswerSet, Error, ObjectId, Result};

/// Configuration and entry point for PM.
#[derive(Debug, Clone)]
pub struct Pm {
    /// Maximum alternation rounds.
    pub max_iters: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
}

impl Default for Pm {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-6,
        }
    }
}

impl Pm {
    /// Run PM over all answered objects.
    #[allow(clippy::needless_range_loop)] // index spans several parallel structures
    pub fn infer(
        &self,
        answers: &AnswerSet,
        num_classes: usize,
        num_annotators: usize,
    ) -> Result<InferenceResult> {
        if self.max_iters == 0 {
            return Err(Error::InvalidParameter("max_iters must be positive".into()));
        }
        if num_classes < 2 {
            return Err(Error::InvalidParameter("need at least two classes".into()));
        }
        let n = answers.num_objects();
        let mut weights = vec![1.0f64; num_annotators];
        let mut posteriors: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut iterations = 0;
        for _ in 0..self.max_iters {
            iterations += 1;
            // Truth step: weighted vote per object.
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let votes = answers.answers_for(ObjectId(i));
                if votes.is_empty() {
                    continue;
                }
                let mut p = vec![0.0f64; num_classes];
                for &(a, c) in votes {
                    if c.index() >= num_classes || a.index() >= num_annotators {
                        return Err(Error::IndexOutOfBounds {
                            index: c.index().max(a.index()),
                            len: num_classes.max(num_annotators),
                            context: "pm".into(),
                        });
                    }
                    p[c.index()] += weights[a.index()].max(1e-9);
                }
                prob::normalize(&mut p);
                if let Some(old) = &posteriors[i] {
                    for (o, np) in old.iter().zip(&p) {
                        max_delta = max_delta.max((o - np).abs());
                    }
                } else {
                    max_delta = 1.0;
                }
                posteriors[i] = Some(p);
            }

            // Weight step: smoothed disagreement rates -> weights.
            let mut err = vec![1e-3f64; num_annotators]; // smoothing floor
            let mut cnt = vec![2e-3f64; num_annotators];
            for ans in answers.iter() {
                let Some(post) = posteriors[ans.object.index()].as_ref() else {
                    continue;
                };
                let Some(truth) = prob::argmax(post) else {
                    continue;
                };
                cnt[ans.annotator.index()] += 1.0;
                if ans.label.index() != truth {
                    err[ans.annotator.index()] += 1.0;
                }
            }
            let rates: Vec<f64> = err
                .iter()
                .zip(&cnt)
                .map(|(&e, &c)| (e / c).clamp(1e-6, 1.0))
                .collect();
            let total: f64 = rates.iter().sum();
            for (w, &r) in weights.iter_mut().zip(&rates) {
                // CRH weight: -ln(err_j / Σ err). Annotators with relatively
                // low error get large positive weights.
                *w = -(r / total.max(1e-12)).ln();
                if !w.is_finite() || *w < 0.0 {
                    *w = 0.0;
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        let confusions = estimate_confusions(answers, &posteriors, num_classes, num_annotators)?;
        let mut class_prior = vec![0.0f64; num_classes];
        for p in posteriors.iter().flatten() {
            for (pr, &q) in class_prior.iter_mut().zip(p) {
                *pr += q;
            }
        }
        prob::normalize(&mut class_prior);
        Ok(InferenceResult {
            posteriors,
            confusions,
            class_prior,
            iterations,
            log_likelihood: f64::NAN,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVote;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorId, Answer, ClassId, ConfusionMatrix};

    fn ans(o: usize, a: usize, c: usize) -> Answer {
        Answer {
            object: ObjectId(o),
            annotator: AnnotatorId(a),
            label: ClassId(c),
        }
    }

    fn simulate(n: usize, accs: &[f64], seed: u64) -> (AnswerSet, Vec<ClassId>) {
        let mut rng = seeded(seed);
        let mats: Vec<ConfusionMatrix> = accs
            .iter()
            .map(|&a| ConfusionMatrix::with_accuracy(2, a).unwrap())
            .collect();
        let mut answers = AnswerSet::new(n);
        let mut truths = Vec::with_capacity(n);
        for i in 0..n {
            let truth = ClassId(i % 2);
            truths.push(truth);
            for (j, m) in mats.iter().enumerate() {
                answers
                    .record(ans(i, j, m.sample_answer(truth, &mut rng).index()))
                    .unwrap();
            }
        }
        (answers, truths)
    }

    #[test]
    fn recovers_truth_and_downweights_bad_annotators() {
        let (answers, truths) = simulate(400, &[0.95, 0.9, 0.55, 0.5], 5);
        let r = Pm::default().infer(&answers, 2, 4).unwrap();
        let acc = truths
            .iter()
            .enumerate()
            .filter(|(i, t)| r.label(ObjectId(*i)) == Some(**t))
            .count() as f64
            / truths.len() as f64;
        assert!(acc > 0.9, "PM accuracy {acc}");
        assert!(r.validate(2, 1e-6));
    }

    #[test]
    fn beats_mv_with_skewed_panel() {
        let (answers, truths) = simulate(400, &[0.55, 0.55, 0.55, 0.97, 0.97], 11);
        let mv = MajorityVote.infer(&answers, 2, 5).unwrap();
        let pm = Pm::default().infer(&answers, 2, 5).unwrap();
        let acc = |r: &InferenceResult| {
            truths
                .iter()
                .enumerate()
                .filter(|(i, t)| r.label(ObjectId(*i)) == Some(**t))
                .count() as f64
                / truths.len() as f64
        };
        assert!(acc(&pm) > acc(&mv), "PM {} vs MV {}", acc(&pm), acc(&mv));
    }

    #[test]
    fn single_annotator_everything_follows_them() {
        let mut answers = AnswerSet::new(3);
        answers.record(ans(0, 0, 1)).unwrap();
        answers.record(ans(1, 0, 0)).unwrap();
        answers.record(ans(2, 0, 1)).unwrap();
        let r = Pm::default().infer(&answers, 2, 1).unwrap();
        assert_eq!(r.label(ObjectId(0)), Some(ClassId(1)));
        assert_eq!(r.label(ObjectId(1)), Some(ClassId(0)));
        assert_eq!(r.label(ObjectId(2)), Some(ClassId(1)));
    }

    #[test]
    fn handles_unanswered_objects_and_bad_config() {
        let answers = AnswerSet::new(2);
        let r = Pm::default().infer(&answers, 2, 1).unwrap();
        assert!(r.posteriors.iter().all(Option::is_none));
        let pm = Pm {
            max_iters: 0,
            tol: 1e-6,
        };
        assert!(pm.infer(&answers, 2, 1).is_err());
        assert!(Pm::default().infer(&answers, 1, 1).is_err());
    }

    #[test]
    fn converges_quickly_on_consistent_answers() {
        let mut answers = AnswerSet::new(5);
        for o in 0..5 {
            for a in 0..3 {
                answers.record(ans(o, a, o % 2)).unwrap();
            }
        }
        let r = Pm::default().infer(&answers, 2, 3).unwrap();
        assert!(r.iterations <= 5, "iterations {}", r.iterations);
    }
}
