//! GLAD-style truth inference (Whitehill et al., after the survey \[48\]
//! the paper builds on): jointly estimate annotator *ability* and object
//! *difficulty*.
//!
//! Each annotator `j` has an ability `α_j ∈ (0, ∞)` and each object `i` a
//! difficulty parameter `1/β_i` with `β_i > 0`; the probability that `j`
//! answers `i` correctly is
//!
//! ```text
//! p(correct) = σ(α_j · β_i) = 1 / (1 + e^{-α_j β_i})
//! ```
//!
//! so strong annotators on easy objects are near-certain, while any
//! annotator on a very hard object (`β → 0`) degenerates to coin-flipping.
//! EM alternates posterior updates with coordinate-ascent updates of
//! `α, β`. The model complements the confusion-matrix family: it is the
//! classic way to capture *per-object* hardness, which Dawid–Skene
//! ignores — useful for the escalate-the-hard-objects analyses our
//! workflow enables.

use crate::mv::{estimate_confusions, MajorityVote};
use crate::result::InferenceResult;
use crowdrl_types::prob;
use crowdrl_types::{AnswerSet, Error, ObjectId, Result};

/// Configuration and entry point for GLAD.
#[derive(Debug, Clone)]
pub struct Glad {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Gradient-ascent step size for the `α`/`β` updates.
    pub learning_rate: f64,
    /// Gradient steps per M-step.
    pub m_steps: usize,
}

impl Default for Glad {
    fn default() -> Self {
        Self {
            max_iters: 30,
            tol: 1e-5,
            learning_rate: 0.1,
            m_steps: 10,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Glad {
    /// Run GLAD EM over all answered objects.
    ///
    /// Returns the usual [`InferenceResult`]; annotator confusion matrices
    /// are re-estimated from the final posteriors so qualities stay
    /// comparable with the other algorithms. Use [`Glad::infer_full`] when
    /// the ability/difficulty estimates themselves are needed.
    pub fn infer(
        &self,
        answers: &AnswerSet,
        num_classes: usize,
        num_annotators: usize,
    ) -> Result<InferenceResult> {
        let (result, _, _) = self.infer_full(answers, num_classes, num_annotators)?;
        Ok(result)
    }

    /// Like [`Glad::infer`], additionally returning the estimated
    /// annotator abilities `α_j` and object easiness `β_i` (higher = easier;
    /// unanswered objects report `NaN`).
    pub fn infer_full(
        &self,
        answers: &AnswerSet,
        num_classes: usize,
        num_annotators: usize,
    ) -> Result<(InferenceResult, Vec<f64>, Vec<f64>)> {
        if self.max_iters == 0 || self.m_steps == 0 {
            return Err(Error::InvalidParameter(
                "iteration counts must be positive".into(),
            ));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(Error::InvalidParameter(
                "learning_rate must be positive".into(),
            ));
        }
        if num_classes < 2 {
            return Err(Error::InvalidParameter("need at least two classes".into()));
        }
        let n = answers.num_objects();
        // Initialize with majority vote.
        let mv = MajorityVote.infer(answers, num_classes, num_annotators)?;
        let mut posteriors = mv.posteriors;
        let mut alpha = vec![1.0f64; num_annotators];
        let mut beta = vec![1.0f64; n];

        let mut iterations = 0;
        for _ in 0..self.max_iters {
            iterations += 1;

            // M-step: coordinate ascent on alpha and beta.
            // Expected correctness of each answer under current posteriors:
            // e_ij = q_i(label_ij).
            for _ in 0..self.m_steps {
                let mut grad_a = vec![0.0f64; num_annotators];
                let mut grad_b = vec![0.0f64; n];
                for ans in answers.iter() {
                    let i = ans.object.index();
                    let j = ans.annotator.index();
                    let Some(post) = posteriors[i].as_ref() else {
                        continue;
                    };
                    let e = post.get(ans.label.index()).copied().unwrap_or(0.0);
                    let s = sigmoid(alpha[j] * beta[i]);
                    // d/dx log-likelihood of Bernoulli(e; sigma(ab)):
                    // (e - s) * partial.
                    let common = e - s;
                    grad_a[j] += common * beta[i];
                    grad_b[i] += common * alpha[j];
                }
                for (a, g) in alpha.iter_mut().zip(&grad_a) {
                    *a = (*a + self.learning_rate * g).clamp(0.05, 10.0);
                }
                for (b, g) in beta.iter_mut().zip(&grad_b) {
                    *b = (*b + self.learning_rate * g).clamp(0.05, 10.0);
                }
            }

            // E-step: posterior over classes. Correct with prob
            // s_ij = sigma(alpha_j beta_i); wrong answers spread uniformly.
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let votes = answers.answers_for(ObjectId(i));
                if votes.is_empty() {
                    continue;
                }
                let mut logp = vec![0.0f64; num_classes];
                for &(a, label) in votes {
                    let s = sigmoid(alpha[a.index()] * beta[i]).clamp(1e-6, 1.0 - 1e-6);
                    let wrong = (1.0 - s) / (num_classes - 1) as f64;
                    for (c, lp) in logp.iter_mut().enumerate() {
                        *lp += if c == label.index() {
                            s.ln()
                        } else {
                            wrong.ln()
                        };
                    }
                }
                let mut q = Vec::with_capacity(num_classes);
                prob::softmax_from_logs(&logp, &mut q);
                if let Some(old) = &posteriors[i] {
                    for (o, nq) in old.iter().zip(&q) {
                        max_delta = max_delta.max((o - nq).abs());
                    }
                }
                posteriors[i] = Some(q);
            }
            if max_delta < self.tol {
                break;
            }
        }

        let confusions = estimate_confusions(answers, &posteriors, num_classes, num_annotators)?;
        let mut class_prior = vec![0.0f64; num_classes];
        for p in posteriors.iter().flatten() {
            for (pr, &q) in class_prior.iter_mut().zip(p) {
                *pr += q;
            }
        }
        prob::normalize(&mut class_prior);
        // Unanswered objects get NaN easiness.
        for i in 0..n {
            if posteriors[i].is_none() {
                beta[i] = f64::NAN;
            }
        }
        Ok((
            InferenceResult {
                posteriors,
                confusions,
                class_prior,
                iterations,
                log_likelihood: f64::NAN,
            },
            alpha,
            beta,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorId, Answer, ClassId, ConfusionMatrix};

    fn ans(o: usize, a: usize, c: usize) -> Answer {
        Answer {
            object: ObjectId(o),
            annotator: AnnotatorId(a),
            label: ClassId(c),
        }
    }

    fn simulate(n: usize, accs: &[f64], seed: u64) -> (AnswerSet, Vec<ClassId>) {
        let mut rng = seeded(seed);
        let mats: Vec<ConfusionMatrix> = accs
            .iter()
            .map(|&a| ConfusionMatrix::with_accuracy(2, a).unwrap())
            .collect();
        let mut answers = AnswerSet::new(n);
        let mut truths = Vec::with_capacity(n);
        for i in 0..n {
            let truth = ClassId(i % 2);
            truths.push(truth);
            for (j, m) in mats.iter().enumerate() {
                answers
                    .record(ans(i, j, m.sample_answer(truth, &mut rng).index()))
                    .unwrap();
            }
        }
        (answers, truths)
    }

    #[test]
    fn recovers_truth_on_mixed_panels() {
        let (answers, truths) = simulate(300, &[0.9, 0.8, 0.6, 0.95], 1);
        let r = Glad::default().infer(&answers, 2, 4).unwrap();
        let acc = truths
            .iter()
            .enumerate()
            .filter(|(i, t)| r.label(ObjectId(*i)) == Some(**t))
            .count() as f64
            / truths.len() as f64;
        assert!(acc > 0.9, "GLAD accuracy {acc}");
        assert!(r.validate(2, 1e-6));
    }

    #[test]
    fn ability_ordering_matches_latent_quality() {
        // Three annotators so the posterior can break the symmetry between
        // agreement patterns (with two, expected correctness is identical).
        let (answers, _) = simulate(600, &[0.95, 0.55, 0.9], 2);
        let (_, alpha, _) = Glad::default().infer_full(&answers, 2, 3).unwrap();
        assert!(
            alpha[0] > alpha[1] && alpha[2] > alpha[1],
            "strong annotators must get higher ability: {alpha:?}"
        );
    }

    #[test]
    fn hard_objects_get_lower_easiness() {
        // Object 0: everyone agrees (easy). Object 1: answers split (hard).
        let mut answers = AnswerSet::new(2);
        for a in 0..4 {
            answers.record(ans(0, a, 0)).unwrap();
            answers.record(ans(1, a, a % 2)).unwrap();
        }
        let (_, _, beta) = Glad::default().infer_full(&answers, 2, 4).unwrap();
        assert!(
            beta[0] > beta[1],
            "unanimous object should look easier: {beta:?}"
        );
    }

    #[test]
    fn unanswered_objects_report_nan_easiness() {
        let mut answers = AnswerSet::new(3);
        answers.record(ans(0, 0, 1)).unwrap();
        let (r, _, beta) = Glad::default().infer_full(&answers, 2, 1).unwrap();
        assert!(r.posteriors[1].is_none());
        assert!(beta[1].is_nan());
        assert!(!beta[0].is_nan());
    }

    #[test]
    fn rejects_bad_configs() {
        let answers = AnswerSet::new(1);
        assert!(Glad {
            max_iters: 0,
            ..Default::default()
        }
        .infer(&answers, 2, 1)
        .is_err());
        assert!(Glad {
            m_steps: 0,
            ..Default::default()
        }
        .infer(&answers, 2, 1)
        .is_err());
        assert!(Glad {
            learning_rate: 0.0,
            ..Default::default()
        }
        .infer(&answers, 2, 1)
        .is_err());
        assert!(Glad::default().infer(&answers, 1, 1).is_err());
    }

    #[test]
    fn parameters_stay_in_clamped_range() {
        let (answers, _) = simulate(100, &[0.99, 0.99, 0.5], 3);
        let (_, alpha, beta) = Glad::default().infer_full(&answers, 2, 3).unwrap();
        assert!(alpha.iter().all(|&a| (0.05..=10.0).contains(&a)));
        assert!(beta
            .iter()
            .all(|&b| b.is_nan() || (0.05..=10.0).contains(&b)));
    }
}
