//! OBA — "Quality-aware dynamic task assignment in human+AI crowd"
//! (Kobayashi et al., WWW 2020), as described in §VI-A.2.
//!
//! A human-in-the-loop process with an "AI worker":
//!
//! 1. humans label some objects; **their answers are trusted blindly**
//!    (one answer per object, taken as the truth — the paper singles out
//!    this assumption as why OBA performs worst);
//! 2. a traditional classifier (k-NN) trains on the labelled set and
//!    predicts every unlabelled object; predictions above a confidence
//!    threshold are accepted;
//! 3. the rest are assigned to human workers in the next iteration.

use crate::common::{outcome_from, BaselineParams, LabellingStrategy};
use crate::knn::KnnClassifier;
use crowdrl_core::LabellingOutcome;
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{Budget, Dataset, LabelState, LabelledSet, ObjectId, Result};
use rand::RngCore;

/// The OBA baseline.
#[derive(Debug, Clone)]
pub struct Oba {
    /// AI-worker confidence threshold above which its label is accepted.
    pub confidence_threshold: f64,
    /// Neighbours used by the k-NN AI worker.
    pub knn_k: usize,
}

impl Default for Oba {
    fn default() -> Self {
        Self {
            confidence_threshold: 0.8,
            knn_k: 5,
        }
    }
}

impl LabellingStrategy for Oba {
    fn name(&self) -> &'static str {
        "OBA"
    }

    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome> {
        let n = dataset.len();
        let mut platform = Platform::new(dataset, pool, Budget::new(params.budget)?);
        let mut labelled = LabelledSet::new(n);
        let mut knn = KnnClassifier::new(self.knn_k, dataset.dim(), dataset.num_classes())?;

        // Workers only — OBA's AI/human loop is a crowdsourcing design; the
        // cheap crowd is its human tier. Fall back to the whole pool if
        // there are no workers.
        let humans: Vec<_> = {
            let workers: Vec<_> = pool.workers().collect();
            if workers.is_empty() {
                pool.profiles().iter().map(|p| p.id).collect()
            } else {
                workers
            }
        };

        // Initial human pass: α·|O| objects, ONE trusted answer each.
        let m = ((params.initial_ratio * n as f64).round() as usize).min(n);
        for obj in sample_indices(rng, n, m) {
            let who = humans[(rng.next_u64() % humans.len() as u64) as usize];
            if let Ok(ans) = platform.ask(ObjectId(obj), who, rng) {
                labelled.set(ans.object, LabelState::Inferred(ans.label))?;
                knn.push(dataset.features(obj), ans.label)?;
            }
        }

        let mut iterations = 0;
        for _ in 0..params.max_iters {
            if labelled.all_labelled() {
                break;
            }
            // AI-worker pass.
            let mut ai_labelled = 0;
            if !knn.is_empty() {
                let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
                for obj in unlabelled {
                    let (label, conf) = knn.predict(dataset.features(obj.index()))?;
                    if conf >= self.confidence_threshold {
                        labelled.set(obj, LabelState::Enriched(label))?;
                        ai_labelled += 1;
                    }
                }
            }
            if labelled.all_labelled() {
                break;
            }
            if platform.exhausted() {
                break;
            }
            iterations += 1;

            // Human pass over a batch of the remaining objects.
            let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
            let batch = sample_indices(rng, unlabelled.len(), params.batch_per_iter);
            let mut bought = 0;
            for bi in batch {
                let obj = unlabelled[bi];
                let who = humans[(rng.next_u64() % humans.len() as u64) as usize];
                if let Ok(ans) = platform.ask(obj, who, rng) {
                    labelled.set(ans.object, LabelState::Inferred(ans.label))?;
                    knn.push(dataset.features(obj.index()), ans.label)?;
                    bought += 1;
                }
            }
            if bought == 0 && ai_labelled == 0 {
                break;
            }
        }

        Ok(outcome_from(&labelled, &platform, iterations, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;

    fn setup(n: usize, worker_acc: (f64, f64), seed: u64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", n, 3, 2)
            .with_separation(3.0)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(4, 1)
            .with_worker_accuracy(worker_acc.0, worker_acc.1)
            .generate(2, &mut rng)
            .unwrap();
        (dataset, pool)
    }

    fn accuracy(outcome: &LabellingOutcome, dataset: &Dataset) -> f64 {
        outcome
            .labels
            .iter()
            .enumerate()
            .filter(|(i, l)| **l == Some(dataset.truth(*i)))
            .count() as f64
            / dataset.len() as f64
    }

    #[test]
    fn works_well_with_perfect_humans() {
        // OBA's assumption holds: near-perfect workers.
        let (dataset, pool) = setup(60, (0.98, 1.0), 1);
        let mut rng = seeded(2);
        let params = BaselineParams::with_budget(300.0);
        let outcome = Oba::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.coverage() > 0.9);
        assert!(accuracy(&outcome, &dataset) > 0.85);
    }

    #[test]
    fn degrades_with_noisy_humans() {
        // The paper's point: blind trust in noisy workers hurts.
        let (dataset, pool) = setup(60, (0.55, 0.65), 3);
        let mut rng = seeded(4);
        let params = BaselineParams::with_budget(300.0);
        let noisy = Oba::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        let (dataset2, pool2) = setup(60, (0.98, 1.0), 3);
        let mut rng = seeded(4);
        let clean = Oba::default()
            .run(&dataset2, &pool2, &params, &mut rng)
            .unwrap();
        assert!(
            accuracy(&clean, &dataset2) > accuracy(&noisy, &dataset) + 0.1,
            "clean {} vs noisy {}",
            accuracy(&clean, &dataset2),
            accuracy(&noisy, &dataset)
        );
    }

    #[test]
    fn ai_worker_labels_cheaply() {
        let (dataset, pool) = setup(100, (0.9, 1.0), 5);
        let mut rng = seeded(6);
        let params = BaselineParams::with_budget(500.0);
        let outcome = Oba::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        // The AI worker should have labelled a good share for free.
        assert!(outcome.enriched_count > 0);
        assert!(
            outcome.budget_spent < 150.0,
            "spent {}",
            outcome.budget_spent
        );
    }

    #[test]
    fn respects_budget() {
        let (dataset, pool) = setup(80, (0.7, 0.9), 7);
        let mut rng = seeded(8);
        let params = BaselineParams::with_budget(15.0);
        let outcome = Oba::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.budget_spent <= 15.0 + 1e-9);
    }
}
