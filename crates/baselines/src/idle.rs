//! IDLE — "Effective quality assurance for data labels through
//! crowdsourcing and domain expert collaboration" (Lee et al., EDBT 2018),
//! as described in §VI-A.2.
//!
//! A two-level classification framework:
//!
//! * **Level 1** — crowd workers give cost-effective but high-variance
//!   answers, aggregated by EM;
//! * **Level 2** — objects the crowd leaves ambiguous escalate to domain
//!   experts;
//! * objects that stay ambiguous even after experts are marked
//!   **unsolvable** (they remain unlabelled here).
//!
//! Task selection is random and level-1 assignment is random *among the
//! crowd tier* (the two-level design sends work to the cheap crowd first,
//! but picks workers blindly — the paper highlights the random assignment
//! as IDLE's weakness). No feature model is ever trained.

use crate::common::{apply_labels, outcome_from, BaselineParams, LabellingStrategy};
use crowdrl_core::LabellingOutcome;
use crowdrl_inference::DawidSkene;
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::rng::{permutation, sample_indices};
use crowdrl_types::{AnnotatorId, Budget, Dataset, LabelledSet, ObjectId, Result};
use rand::RngCore;

/// The IDLE baseline.
#[derive(Debug, Clone)]
pub struct Idle {
    /// Posterior confidence above which level-1 (crowd) output is accepted.
    pub crowd_confidence: f64,
    /// Posterior confidence above which level-2 (expert) output is
    /// accepted; below it the object is "unsolvable".
    pub expert_confidence: f64,
    /// EM configuration.
    pub inference: DawidSkene,
}

impl Default for Idle {
    fn default() -> Self {
        Self {
            crowd_confidence: 0.75,
            expert_confidence: 0.6,
            inference: DawidSkene::default(),
        }
    }
}

impl LabellingStrategy for Idle {
    fn name(&self) -> &'static str {
        "IDLE"
    }

    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome> {
        let n = dataset.len();
        let k_classes = dataset.num_classes();
        let mut platform = Platform::new(dataset, pool, Budget::new(params.budget)?);
        let mut labelled = LabelledSet::new(n);
        let workers: Vec<AnnotatorId> = pool.workers().collect();
        let experts: Vec<AnnotatorId> = pool.experts().collect();

        // Level 1: crowd answers in random object order (random TS).
        let order = permutation(rng, n);
        let mut iterations = 0;
        for chunk in order.chunks(params.batch_per_iter) {
            if platform.exhausted() {
                break;
            }
            iterations += 1;
            for &obj_idx in chunk {
                let obj = ObjectId(obj_idx);
                // Level 1 goes to the crowd tier; the pick within the tier
                // is uniform-random (IDLE's weakness per the paper).
                let tier = if workers.is_empty() {
                    &experts
                } else {
                    &workers
                };
                let chosen = sample_indices(rng, tier.len(), params.assignment_k);
                let annotators: Vec<_> = chosen.into_iter().map(|i| tier[i]).collect();
                platform.ask_many(obj, &annotators, rng);
            }
        }
        let mut result = self
            .inference
            .infer(platform.answers(), k_classes, pool.len())?;
        apply_labels(&result, &mut labelled)?;

        // Level 2: escalate ambiguous objects to experts.
        if !experts.is_empty() {
            let ambiguous: Vec<ObjectId> = result
                .inferred_objects()
                .filter(|&o| result.confidence(o).unwrap_or(0.0) < self.crowd_confidence)
                .collect();
            for obj in ambiguous {
                if platform.exhausted() {
                    break;
                }
                let chosen = sample_indices(rng, experts.len(), 1);
                let annotators: Vec<_> = chosen.into_iter().map(|i| experts[i]).collect();
                platform.ask_many(obj, &annotators, rng);
            }
            result = self
                .inference
                .infer(platform.answers(), k_classes, pool.len())?;
            apply_labels(&result, &mut labelled)?;
        }

        // Unsolvable pass: drop labels that remain too uncertain.
        for obj in result.inferred_objects() {
            if result.confidence(obj).unwrap_or(0.0) < self.expert_confidence {
                labelled.set(obj, crowdrl_types::LabelState::Unlabelled)?;
            }
        }

        Ok(outcome_from(&labelled, &platform, iterations, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;

    fn setup(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", n, 3, 2)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(4, 1)
            .with_worker_accuracy(0.65, 0.85)
            .generate(2, &mut rng)
            .unwrap();
        (dataset, pool)
    }

    #[test]
    fn labels_most_objects_with_ample_budget() {
        let (dataset, pool) = setup(100, 1);
        let mut rng = seeded(2);
        let params = BaselineParams::with_budget(1500.0);
        let outcome = Idle::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.coverage() > 0.8, "coverage {}", outcome.coverage());
        let acc = outcome
            .labels
            .iter()
            .enumerate()
            .filter(|(i, l)| **l == Some(dataset.truth(*i)))
            .count() as f64
            / outcome.labels.iter().filter(|l| l.is_some()).count().max(1) as f64;
        assert!(acc > 0.8, "accuracy on labelled {acc}");
    }

    #[test]
    fn respects_budget_and_marks_unsolvable() {
        let (dataset, pool) = setup(100, 3);
        let mut rng = seeded(4);
        let params = BaselineParams::with_budget(60.0);
        let strict = Idle {
            crowd_confidence: 0.99,
            expert_confidence: 0.999,
            ..Default::default()
        };
        let outcome = strict.run(&dataset, &pool, &params, &mut rng).unwrap();
        assert!(outcome.budget_spent <= 60.0 + 1e-9);
        // With near-impossible confidence bars, many objects are unsolvable.
        assert!(outcome.coverage() < 0.9);
    }

    #[test]
    fn expert_escalation_spends_expert_budget() {
        let (dataset, pool) = setup(40, 5);
        let mut rng = seeded(6);
        let params = BaselineParams::with_budget(400.0);
        // Force escalation by requiring high crowd confidence.
        let idle = Idle {
            crowd_confidence: 0.95,
            ..Default::default()
        };
        let outcome = idle.run(&dataset, &pool, &params, &mut rng).unwrap();
        // Expert answers cost 10: if any escalation happened, spend exceeds
        // what workers alone (cost 1 each) could account for.
        let worker_max = outcome.total_answers as f64; // if all were workers
        assert!(outcome.budget_spent > worker_max - 1e-9);
    }

    #[test]
    fn never_uses_features() {
        let (dataset, pool) = setup(30, 7);
        let mut rng = seeded(8);
        let params = BaselineParams::with_budget(300.0);
        let outcome = Idle::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert_eq!(outcome.enriched_count, 0);
    }
}
