//! A k-nearest-neighbours classifier — the "traditional classification
//! method" the OBA baseline uses as its AI worker (§VI-A.2: "it used
//! traditional classification or clustering methods, e.g., KNN").

use crowdrl_types::{ClassId, Error, Result};

/// Brute-force k-NN over dense `f32` features with majority voting.
///
/// Confidence is the vote fraction of the winning class — exactly the
/// quantity OBA thresholds to decide whether the AI worker labels an
/// object or a human does.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    dim: usize,
    num_classes: usize,
    points: Vec<f32>,
    labels: Vec<ClassId>,
}

impl KnnClassifier {
    /// An empty model for `dim`-dimensional features and `num_classes`
    /// classes using `k` neighbours.
    pub fn new(k: usize, dim: usize, num_classes: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        if dim == 0 || num_classes < 2 {
            return Err(Error::InvalidParameter(
                "dim must be positive, classes >= 2".into(),
            ));
        }
        Ok(Self {
            k,
            dim,
            num_classes,
            points: Vec::new(),
            labels: Vec::new(),
        })
    }

    /// Number of stored training points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the model has no training points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Replace the training set.
    pub fn fit(&mut self, features: &[f32], labels: &[ClassId]) -> Result<()> {
        if labels.is_empty() {
            return Err(Error::InvalidParameter(
                "k-NN needs at least one training point".into(),
            ));
        }
        if features.len() != labels.len() * self.dim {
            return Err(Error::DimensionMismatch {
                expected: labels.len() * self.dim,
                actual: features.len(),
                context: "k-NN training features".into(),
            });
        }
        if let Some(bad) = labels.iter().find(|c| c.index() >= self.num_classes) {
            return Err(Error::InvalidParameter(format!("label {bad} out of range")));
        }
        self.points = features.to_vec();
        self.labels = labels.to_vec();
        Ok(())
    }

    /// Add a single training point (incremental fit).
    pub fn push(&mut self, features: &[f32], label: ClassId) -> Result<()> {
        if features.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: features.len(),
                context: "k-NN point".into(),
            });
        }
        if label.index() >= self.num_classes {
            return Err(Error::InvalidParameter(format!(
                "label {label} out of range"
            )));
        }
        self.points.extend_from_slice(features);
        self.labels.push(label);
        Ok(())
    }

    /// Predict `(label, confidence)` where confidence is the winning vote
    /// fraction among the k nearest stored points. Errors when untrained.
    pub fn predict(&self, features: &[f32]) -> Result<(ClassId, f64)> {
        if self.is_empty() {
            return Err(Error::InvalidParameter("k-NN model is untrained".into()));
        }
        if features.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: features.len(),
                context: "k-NN query".into(),
            });
        }
        // Collect (distance², index), partial-select the k smallest.
        let n = self.labels.len();
        let mut dists: Vec<(f32, usize)> = (0..n)
            .map(|i| {
                let row = &self.points[i * self.dim..(i + 1) * self.dim];
                let d: f32 = row
                    .iter()
                    .zip(features)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                (d, i)
            })
            .collect();
        let k = self.k.min(n);
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut votes = vec![0usize; self.num_classes];
        for &(_, i) in &dists[..k] {
            votes[self.labels[i].index()] += 1;
        }
        let best =
            crowdrl_types::prob::argmax(&votes.iter().map(|&v| v as f64).collect::<Vec<_>>())
                .unwrap_or(0);
        Ok((ClassId(best), votes[best] as f64 / k as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_model() -> KnnClassifier {
        let mut knn = KnnClassifier::new(3, 2, 2).unwrap();
        // Two clusters: class 0 near (0,0), class 1 near (10,10).
        let feats = [
            0.0f32, 0.0, 0.5, 0.5, -0.5, 0.2, // class 0
            10.0, 10.0, 9.5, 10.5, 10.2, 9.8, // class 1
        ];
        let labels = vec![
            ClassId(0),
            ClassId(0),
            ClassId(0),
            ClassId(1),
            ClassId(1),
            ClassId(1),
        ];
        knn.fit(&feats, &labels).unwrap();
        knn
    }

    #[test]
    fn classifies_clusters_confidently() {
        let knn = simple_model();
        let (c, conf) = knn.predict(&[0.1, 0.1]).unwrap();
        assert_eq!(c, ClassId(0));
        assert_eq!(conf, 1.0);
        let (c, conf) = knn.predict(&[9.9, 10.1]).unwrap();
        assert_eq!(c, ClassId(1));
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn midpoint_has_lower_confidence() {
        let mut knn = KnnClassifier::new(4, 1, 2).unwrap();
        knn.fit(
            &[0.0, 1.0, 10.0, 11.0],
            &[ClassId(0), ClassId(0), ClassId(1), ClassId(1)],
        )
        .unwrap();
        let (_, conf) = knn.predict(&[5.5]).unwrap();
        assert!((conf - 0.5).abs() < 1e-9, "conf={conf}");
    }

    #[test]
    fn push_grows_model() {
        let mut knn = KnnClassifier::new(1, 2, 2).unwrap();
        assert!(knn.is_empty());
        assert!(knn.predict(&[0.0, 0.0]).is_err());
        knn.push(&[1.0, 1.0], ClassId(1)).unwrap();
        assert_eq!(knn.len(), 1);
        let (c, conf) = knn.predict(&[0.9, 1.2]).unwrap();
        assert_eq!(c, ClassId(1));
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let mut knn = KnnClassifier::new(10, 1, 2).unwrap();
        knn.fit(&[0.0, 1.0, 2.0], &[ClassId(0), ClassId(0), ClassId(1)])
            .unwrap();
        let (c, conf) = knn.predict(&[0.0]).unwrap();
        assert_eq!(c, ClassId(0));
        assert!((conf - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        assert!(KnnClassifier::new(0, 2, 2).is_err());
        assert!(KnnClassifier::new(1, 0, 2).is_err());
        assert!(KnnClassifier::new(1, 2, 1).is_err());
        let mut knn = KnnClassifier::new(1, 2, 2).unwrap();
        assert!(knn.fit(&[1.0], &[ClassId(0)]).is_err());
        assert!(knn.fit(&[], &[]).is_err());
        assert!(knn.fit(&[1.0, 2.0], &[ClassId(5)]).is_err());
        assert!(knn.push(&[1.0], ClassId(0)).is_err());
        knn.push(&[1.0, 1.0], ClassId(0)).unwrap();
        assert!(knn.predict(&[1.0]).is_err());
    }
}
