//! # crowdrl-baselines
//!
//! The five end-to-end labelling frameworks the CrowdRL paper compares
//! against (§VI-A.2), implemented from their descriptions:
//!
//! * [`Dlta`] — iterative EM label inference + budget-aware label
//!   acquisition; no feature use.
//! * [`Oba`] — "AI worker" human+AI loop: a k-NN model labels confident
//!   objects, humans label the rest and are **trusted blindly** (the paper
//!   identifies this blind trust as why OBA performs worst).
//! * [`Idle`] — two-level quality assurance: crowd workers first, experts
//!   for ambiguous objects, still-ambiguous objects marked unsolvable;
//!   random task selection.
//! * [`Dalc`] — Bayesian active learning from crowds: most-informative task
//!   selection, highest-expertise assignment, classifier folded into
//!   inference as an extra annotator — but TS/TA are two greedy passes and
//!   there is no RL.
//! * [`Hybrid`] — the strongest baseline the paper constructs:
//!   MinExpError-style bootstrap-uncertainty task selection + a DQN for
//!   task assignment (as in Shan et al. \[32\]) + PM truth inference.
//!
//! All baselines implement [`LabellingStrategy`], as does the
//! [`CrowdRlStrategy`] adapter, so experiment harnesses can iterate over
//! `Vec<Box<dyn LabellingStrategy>>`.

pub mod common;
pub mod dalc;
pub mod dlta;
pub mod hybrid;
pub mod idle;
pub mod knn;
pub mod oba;

pub use common::{BaselineParams, CrowdRlStrategy, LabellingStrategy};
pub use dalc::Dalc;
pub use dlta::Dlta;
pub use hybrid::Hybrid;
pub use idle::Idle;
pub use knn::KnnClassifier;
pub use oba::Oba;

/// All five paper baselines with default hyperparameters, in the order the
/// paper's figures list them.
pub fn paper_baselines() -> Vec<Box<dyn LabellingStrategy>> {
    vec![
        Box::new(Dlta::default()),
        Box::new(Oba::default()),
        Box::new(Idle::default()),
        Box::new(Dalc::default()),
        Box::new(Hybrid::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baselines_are_ordered_like_the_figures() {
        let names: Vec<String> = paper_baselines()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(names, vec!["DLTA", "OBA", "IDLE", "DALC", "Hybrid"]);
    }
}
