//! Hybrid — the strongest baseline the paper constructs (§VI-A.2):
//!
//! * **Task selection** — MinExpError-style bootstrap uncertainty
//!   (Mozafari et al. \[26\]): train a small bag of classifiers on
//!   bootstrap resamples of the labelled set; select the objects whose
//!   ensemble disagrees most (highest expected error).
//! * **Task assignment** — a DQN scores (object, annotator) pairs, as in
//!   Shan et al. \[32\]. We reuse CrowdRL's [`SelectionAgent`] restricted to
//!   the already-chosen objects, so only the *assignment* half is learned.
//! * **Truth inference** — the PM algorithm \[48\], iterating annotator
//!   weights and weighted-vote truths to convergence.
//!
//! Hybrid is strong because each component is individually good; CrowdRL's
//! edge over it isolates the value of *unifying* TS+TA and of the joint
//! inference model.

use crate::common::{
    apply_labels, initial_sample, outcome_from, BaselineParams, LabellingStrategy,
};
use crowdrl_core::agent::SelectionAgent;
use crowdrl_core::classifier_util::{retrain_on_labelled, training_data};
use crowdrl_core::config::{Ablation, Exploration};
use crowdrl_core::enrichment::{enrich, fallback_label_all};
use crowdrl_core::features::StateSnapshot;
use crowdrl_core::reward::{iteration_reward, RewardInputs};
use crowdrl_core::LabellingOutcome;
use crowdrl_inference::Pm;
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_rl::{topk, DqnConfig};
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{Budget, Dataset, LabelledSet, ObjectId, Result};
use rand::RngCore;

/// The Hybrid baseline.
#[derive(Debug, Clone)]
pub struct Hybrid {
    /// Bootstrap ensemble size for MinExpError uncertainty.
    pub bootstrap_bags: usize,
    /// Classifier hyperparameters (per bag; kept light).
    pub classifier: ClassifierConfig,
    /// Enrichment margin for its AL loop.
    pub enrichment_margin: f64,
    /// DQN hyperparameters for the assignment agent.
    pub dqn: DqnConfig,
}

impl Default for Hybrid {
    fn default() -> Self {
        Self {
            bootstrap_bags: 4,
            classifier: ClassifierConfig {
                epochs: 8,
                ..ClassifierConfig::default()
            },
            enrichment_margin: 0.3,
            dqn: DqnConfig::default(),
        }
    }
}

impl Hybrid {
    /// MinExpError surrogate: ensemble disagreement + mean uncertainty.
    ///
    /// Each bag is trained on a bootstrap resample of the labelled data;
    /// an object's score is `1 - mean_max_prob + vote_disagreement`.
    fn bootstrap_uncertainty(
        &self,
        dataset: &Dataset,
        labelled: &LabelledSet,
        objects: &[ObjectId],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>> {
        let Some((x, y)) = training_data(dataset, labelled) else {
            // Nothing to train on: uniform uncertainty.
            return Ok(vec![1.0; objects.len()]);
        };
        let n = x.rows();
        let k = dataset.num_classes();
        let mut bag_preds: Vec<Vec<usize>> = Vec::with_capacity(self.bootstrap_bags);
        let mut bag_conf: Vec<Vec<f64>> = Vec::with_capacity(self.bootstrap_bags);
        for _ in 0..self.bootstrap_bags {
            // Bootstrap resample (with replacement).
            let mut bx = crowdrl_linalg::Matrix::zeros(n, x.cols());
            let mut by = Vec::with_capacity(n);
            for r in 0..n {
                let pick = (rng.next_u64() % n as u64) as usize;
                bx.row_mut(r).copy_from_slice(x.row(pick));
                by.push(y[pick]);
            }
            // Degenerate resample (single class): skip this bag.
            let first = by[0];
            if by.iter().all(|&c| c == first) {
                continue;
            }
            let mut clf = SoftmaxClassifier::new(self.classifier.clone(), dataset.dim(), k, rng)?;
            clf.fit_hard(&bx, &by, rng)?;
            let mut preds = Vec::with_capacity(objects.len());
            let mut confs = Vec::with_capacity(objects.len());
            for obj in objects {
                let p = clf.predict_proba_one(dataset.features(obj.index()));
                let best = crowdrl_types::prob::argmax(&p).unwrap_or(0);
                preds.push(best);
                confs.push(p[best]);
            }
            bag_preds.push(preds);
            bag_conf.push(confs);
        }
        if bag_preds.is_empty() {
            return Ok(vec![1.0; objects.len()]);
        }
        let bags = bag_preds.len() as f64;
        let mut scores = Vec::with_capacity(objects.len());
        for oi in 0..objects.len() {
            let mut votes = vec![0.0f64; k];
            let mut mean_conf = 0.0;
            for b in 0..bag_preds.len() {
                votes[bag_preds[b][oi]] += 1.0;
                mean_conf += bag_conf[b][oi];
            }
            mean_conf /= bags;
            let agreement = votes.iter().copied().fold(0.0f64, f64::max) / bags;
            scores.push((1.0 - mean_conf) + (1.0 - agreement));
        }
        Ok(scores)
    }
}

impl LabellingStrategy for Hybrid {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome> {
        let n = dataset.len();
        let k_classes = dataset.num_classes();
        let mut platform = Platform::new(dataset, pool, Budget::new(params.budget)?);
        let mut labelled = LabelledSet::new(n);
        let mut classifier =
            SoftmaxClassifier::new(self.classifier.clone(), dataset.dim(), k_classes, rng)?;
        let mut agent = SelectionAgent::new(
            self.dqn.clone(),
            &Exploration::Ucb { scale: 1.0 },
            crowdrl_core::DecideConfig::default(),
            None,
            rng,
        )?;
        let pm = Pm::default();
        let max_cost = pool
            .profiles()
            .iter()
            .map(|p| p.cost)
            .fold(0.0f64, f64::max);
        let max_iter_spend = params.batch_per_iter as f64 * params.assignment_k as f64 * max_cost;

        initial_sample(
            &mut platform,
            params.initial_ratio,
            params.assignment_k,
            rng,
        );
        let mut result = pm.infer(platform.answers(), k_classes, pool.len())?;
        apply_labels(&result, &mut labelled)?;
        retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;

        let mut iterations = 0;
        for _ in 0..params.max_iters {
            if platform.exhausted() || labelled.all_labelled() {
                break;
            }
            iterations += 1;
            let unlabelled_before = labelled.unlabelled_count();
            let spent_before = platform.budget().spent();

            // TS: bootstrap uncertainty over a candidate sample.
            let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
            let cand_idx = sample_indices(rng, unlabelled.len(), 128);
            let candidates: Vec<ObjectId> = cand_idx.into_iter().map(|i| unlabelled[i]).collect();
            let scores = self.bootstrap_uncertainty(dataset, &labelled, &candidates, rng)?;
            let chosen = topk::top_k_indices(&scores, params.batch_per_iter);
            if chosen.is_empty() {
                break;
            }

            // TA: DQN over the chosen objects only.
            let qualities = result.qualities();
            let snapshot = StateSnapshot {
                qualities: if qualities.len() == pool.len() {
                    qualities
                } else {
                    vec![0.7; pool.len()]
                },
                annotator_load: platform.answers().answer_counts(pool.len()),
                budget_spent_fraction: platform.budget().fraction_spent(),
                labelled_fraction: labelled.labelled_count() as f64 / n as f64,
                enriched_fraction: labelled.enriched_count() as f64 / n as f64,
                max_cost,
                phi_trust: 0.0,
            };
            let dqn_candidates: Vec<(ObjectId, Vec<f64>)> = chosen
                .iter()
                .map(|&ci| {
                    let obj = candidates[ci];
                    let probs = if classifier.is_trained() {
                        classifier.predict_proba_one(dataset.features(obj.index()))
                    } else {
                        vec![1.0 / k_classes as f64; k_classes]
                    };
                    (obj, probs)
                })
                .collect();
            let remaining_iters = labelled.unlabelled_count().div_ceil(params.batch_per_iter);
            let allowance = (platform.budget().remaining() / remaining_iters.max(1) as f64)
                .max(pool.min_cost() * params.assignment_k as f64)
                .min(platform.budget().remaining());
            let assignments = agent.select(
                &dqn_candidates,
                pool.profiles(),
                None,
                platform.answers(),
                &labelled,
                &snapshot,
                allowance,
                params.assignment_k,
                params.batch_per_iter,
                Ablation::default(),
                rng,
            );
            if assignments.is_empty() {
                break;
            }
            for assignment in &assignments {
                platform.ask_many(assignment.object, &assignment.annotators, rng);
            }
            let spend = platform.budget().spent() - spent_before;

            // TI: PM.
            result = pm.infer(platform.answers(), k_classes, pool.len())?;
            apply_labels(&result, &mut labelled)?;
            retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;
            let enriched = enrich(
                dataset,
                &classifier,
                &mut labelled,
                self.enrichment_margin,
                Some(16),
            )?
            .len();

            // Learn assignment values (same reward shape as CrowdRL).
            let _ = (spend, max_iter_spend);
            let rewards: Vec<f64> = assignments
                .iter()
                .map(|a| {
                    let confidence = result.confidence(a.object).unwrap_or(0.0);
                    let panel_cost: f64 =
                        a.annotators.iter().map(|&id| pool.profile(id).cost).sum();
                    iteration_reward(
                        1.0,
                        1.0,
                        0.15,
                        RewardInputs {
                            enriched,
                            unlabelled_before,
                            spend: panel_cost,
                            max_iter_spend: params.assignment_k.max(1) as f64 * max_cost,
                            mean_confidence: confidence,
                        },
                    )
                })
                .collect();
            let terminal = labelled.all_labelled() || platform.exhausted();
            agent.remember(&assignments, &rewards, &[], terminal);
            agent.train(2, rng);
        }

        let fallback_count = if classifier.is_trained() {
            fallback_label_all(dataset, &classifier, &mut labelled)?
        } else {
            0
        };
        Ok(outcome_from(
            &labelled,
            &platform,
            iterations,
            fallback_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;

    fn setup(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", n, 3, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        (dataset, pool)
    }

    #[test]
    fn full_coverage_within_budget() {
        let (dataset, pool) = setup(50, 1);
        let mut rng = seeded(2);
        let params = BaselineParams::with_budget(250.0);
        let outcome = Hybrid::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert_eq!(outcome.coverage(), 1.0);
        assert!(outcome.budget_spent <= 250.0 + 1e-9);
        let acc = outcome
            .labels
            .iter()
            .enumerate()
            .filter(|(i, l)| **l == Some(dataset.truth(*i)))
            .count() as f64
            / dataset.len() as f64;
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn bootstrap_uncertainty_flags_ambiguous_objects() {
        let mut rng = seeded(3);
        // Two tight clusters plus points on the midline.
        let dataset = DatasetSpec::gaussian("t", 100, 2, 2)
            .with_separation(6.0)
            .generate(&mut rng)
            .unwrap();
        let mut labelled = LabelledSet::new(100);
        for i in 0..60 {
            labelled
                .set(
                    ObjectId(i),
                    crowdrl_types::LabelState::Inferred(dataset.truth(i)),
                )
                .unwrap();
        }
        let hybrid = Hybrid::default();
        let clear: Vec<ObjectId> = (60..80).map(ObjectId).collect();
        let scores = hybrid
            .bootstrap_uncertainty(&dataset, &labelled, &clear, &mut rng)
            .unwrap();
        // Well-separated points should mostly be confidently classified.
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean < 0.5, "mean uncertainty {mean}");
    }

    #[test]
    fn untrained_state_gives_uniform_uncertainty() {
        let mut rng = seeded(4);
        let dataset = DatasetSpec::gaussian("t", 10, 2, 2)
            .generate(&mut rng)
            .unwrap();
        let labelled = LabelledSet::new(10);
        let hybrid = Hybrid::default();
        let objs: Vec<ObjectId> = (0..5).map(ObjectId).collect();
        let scores = hybrid
            .bootstrap_uncertainty(&dataset, &labelled, &objs, &mut rng)
            .unwrap();
        assert_eq!(scores, vec![1.0; 5]);
    }

    #[test]
    fn respects_tight_budget() {
        let (dataset, pool) = setup(60, 5);
        let mut rng = seeded(6);
        let params = BaselineParams::with_budget(25.0);
        let outcome = Hybrid::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.budget_spent <= 25.0 + 1e-9);
    }
}
