//! Shared infrastructure for labelling strategies.

use crowdrl_core::{CrowdRl, CrowdRlConfig, LabellingOutcome};
use crowdrl_inference::InferenceResult;
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{Dataset, LabelState, LabelledSet, ObjectId, Result};
use rand::RngCore;

/// Common experimental knobs shared by every strategy, mirroring the
/// paper's setup (§VI-B.1): initial sampling ratio α, annotators per
/// object, batch size.
#[derive(Debug, Clone)]
pub struct BaselineParams {
    /// Total monetary budget `B`.
    pub budget: f64,
    /// Initial sampling ratio α.
    pub initial_ratio: f64,
    /// Annotators asked per object.
    pub assignment_k: usize,
    /// Objects processed per iteration.
    pub batch_per_iter: usize,
    /// Safety cap on iterations.
    pub max_iters: usize,
}

impl BaselineParams {
    /// Paper defaults with the given budget: α = 5%, k = 3, batch = 8.
    pub fn with_budget(budget: f64) -> Self {
        Self {
            budget,
            initial_ratio: 0.05,
            assignment_k: 3,
            batch_per_iter: 8,
            max_iters: 100_000,
        }
    }
}

/// An end-to-end labelling framework: give it a dataset, a pool and a
/// budget; get back labels for (as much as possible of) the dataset.
///
/// `Send + Sync` so experiment runners can share strategies across worker
/// threads (every implementation is plain configuration data).
pub trait LabellingStrategy: Send + Sync {
    /// Display name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Run the full labelling workflow.
    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome>;
}

/// Adapter presenting CrowdRL itself as a [`LabellingStrategy`], so
/// harnesses can run it alongside the baselines.
#[derive(Debug, Clone)]
pub struct CrowdRlStrategy {
    /// Extra configuration applied on top of the shared params (ablations,
    /// inference model, exploration).
    pub configure: CrowdRlConfig,
    /// Name shown in result tables (`"CrowdRL"`, `"M1"`, ...).
    pub label: &'static str,
}

impl CrowdRlStrategy {
    /// The full CrowdRL framework under default configuration.
    pub fn full() -> Self {
        Self {
            configure: CrowdRlConfig::builder()
                .budget(1.0)
                .build()
                .expect("default config"),
            label: "CrowdRL",
        }
    }

    /// A named variant with a custom configuration (budget and shared
    /// params are overwritten per run).
    pub fn variant(label: &'static str, configure: CrowdRlConfig) -> Self {
        Self { configure, label }
    }
}

impl LabellingStrategy for CrowdRlStrategy {
    fn name(&self) -> &'static str {
        self.label
    }

    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome> {
        let mut config = self.configure.clone();
        config.budget = params.budget;
        config.initial_ratio = params.initial_ratio;
        config.assignment_k = params.assignment_k;
        config.batch_per_iter = params.batch_per_iter;
        config.max_iters = params.max_iters;
        CrowdRl::new(config).run(dataset, pool, rng)
    }
}

/// Take the α·|O| initial sample: each sampled object is asked to `k`
/// uniformly-random annotators (stopping early on budget exhaustion).
pub fn initial_sample(
    platform: &mut Platform<'_>,
    initial_ratio: f64,
    k: usize,
    rng: &mut dyn RngCore,
) {
    let n = platform.dataset().len();
    let m = ((initial_ratio * n as f64).round() as usize).min(n);
    let objects = sample_indices(rng, n, m);
    let pool_len = platform.pool().len();
    for obj in objects {
        let idx = sample_indices(rng, pool_len, k);
        let annotators: Vec<_> = idx
            .into_iter()
            .map(|i| platform.pool().profiles()[i].id)
            .collect();
        platform.ask_many(ObjectId(obj), &annotators, rng);
    }
}

/// Write an inference result's MAP labels into the labelled set.
pub fn apply_labels(result: &InferenceResult, labelled: &mut LabelledSet) -> Result<()> {
    for obj in result.inferred_objects() {
        if let Some(label) = result.label(obj) {
            labelled.set(obj, LabelState::Inferred(label))?;
        }
    }
    Ok(())
}

/// Assemble a [`LabellingOutcome`] from final state (baselines don't track
/// per-iteration reward, so the trace is left empty). `fallback_count` is
/// how many labels came from the end-of-run classifier fallback (0 for
/// baselines without one).
pub fn outcome_from(
    labelled: &LabelledSet,
    platform: &Platform<'_>,
    iterations: usize,
    fallback_count: usize,
) -> LabellingOutcome {
    let n = labelled.len();
    let label_states: Vec<LabelState> = (0..n).map(|i| labelled.state(ObjectId(i))).collect();
    LabellingOutcome {
        labels: labelled.to_labels(),
        label_states: label_states.clone(),
        budget_spent: platform.budget().spent(),
        iterations,
        total_answers: platform.answers().total_answers(),
        enriched_count: label_states
            .iter()
            .filter(|s| matches!(s, LabelState::Enriched(_)))
            .count(),
        fallback_count,
        trace: Vec::new(),
    }
}

/// Posterior entropy of an object under an inference result; unanswered
/// objects get maximal entropy (`ln k`), making them the most uncertain.
pub fn posterior_entropy(result: &InferenceResult, obj: ObjectId, num_classes: usize) -> f64 {
    match &result.posteriors[obj.index()] {
        Some(p) => crowdrl_types::prob::entropy(p),
        None => (num_classes as f64).ln(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;
    use crowdrl_types::Budget;

    #[test]
    fn params_defaults_match_paper() {
        let p = BaselineParams::with_budget(500.0);
        assert_eq!(p.budget, 500.0);
        assert_eq!(p.initial_ratio, 0.05);
        assert_eq!(p.assignment_k, 3);
    }

    #[test]
    fn initial_sample_asks_alpha_fraction() {
        let mut rng = seeded(1);
        let dataset = DatasetSpec::gaussian("t", 100, 2, 2)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(4, 0).generate(2, &mut rng).unwrap();
        let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
        initial_sample(&mut platform, 0.1, 3, &mut rng);
        let answered = platform.answers().answered_objects().count();
        assert_eq!(answered, 10);
        assert_eq!(platform.answers().total_answers(), 30);
    }

    #[test]
    fn crowdrl_strategy_runs_with_params() {
        let mut rng = seeded(2);
        let dataset = DatasetSpec::gaussian("t", 40, 3, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        let params = BaselineParams::with_budget(100.0);
        let outcome = CrowdRlStrategy::full()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.budget_spent <= 100.0 + 1e-9);
        assert_eq!(CrowdRlStrategy::full().name(), "CrowdRL");
    }

    #[test]
    fn posterior_entropy_defaults_to_max_for_unanswered() {
        let result = InferenceResult {
            posteriors: vec![Some(vec![1.0, 0.0]), None],
            confusions: vec![],
            class_prior: vec![0.5, 0.5],
            iterations: 1,
            log_likelihood: f64::NAN,
        };
        assert_eq!(posterior_entropy(&result, ObjectId(0), 2), 0.0);
        assert!((posterior_entropy(&result, ObjectId(1), 2) - 2f64.ln()).abs() < 1e-12);
    }
}
