//! DLTA — "A framework for dynamic crowdsourcing classification tasks"
//! (Zheng & Chen, TKDE 2019), as described in §VI-A.2.
//!
//! Each iteration has two steps:
//!
//! * **label inference** — EM (Dawid–Skene) aggregation over all answers;
//! * **label acquisition** — given the remaining budget, select the objects
//!   whose additional labels maximize expected benefit. We realize the
//!   benefit score as posterior entropy (unanswered objects count as
//!   maximally uncertain), the standard uncertainty-sampling surrogate.
//!
//! DLTA aggregates crowd answers only: it never trains a feature model, so
//! objects the budget never reaches stay unlabelled. Its acquisition step
//! selects *objects*, not annotators — the paper groups DLTA with the
//! traditional frameworks that treat task assignment independently — so
//! annotators are drawn uniformly from the cheapest tier that is still
//! affordable (budget-awareness is DLTA's one concession; it has no
//! annotator-quality model).

use crate::common::{
    apply_labels, initial_sample, outcome_from, posterior_entropy, BaselineParams,
    LabellingStrategy,
};
use crowdrl_core::LabellingOutcome;
use crowdrl_inference::DawidSkene;
use crowdrl_rl::topk;
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{Budget, Dataset, LabelledSet, ObjectId, Result};
use rand::RngCore;

/// The DLTA baseline.
#[derive(Debug, Clone, Default)]
pub struct Dlta {
    /// EM configuration for the inference step.
    pub inference: DawidSkene,
}

impl LabellingStrategy for Dlta {
    fn name(&self) -> &'static str {
        "DLTA"
    }

    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome> {
        let n = dataset.len();
        let k_classes = dataset.num_classes();
        let mut platform = Platform::new(dataset, pool, Budget::new(params.budget)?);
        let mut labelled = LabelledSet::new(n);

        initial_sample(
            &mut platform,
            params.initial_ratio,
            params.assignment_k,
            rng,
        );
        let mut result = self
            .inference
            .infer(platform.answers(), k_classes, pool.len())?;
        apply_labels(&result, &mut labelled)?;

        // Quality-per-cost annotator ranking, refreshed each iteration.
        let mut iterations = 0;
        for _ in 0..params.max_iters {
            if platform.exhausted() {
                break;
            }
            // Acquisition: most-uncertain objects that can still take a new
            // answer from someone.
            let scores: Vec<f64> = (0..n)
                .map(|i| {
                    let obj = ObjectId(i);
                    let open = pool
                        .profiles()
                        .iter()
                        .any(|p| !platform.answers().has_answered(obj, p.id));
                    if open {
                        posterior_entropy(&result, obj, k_classes)
                    } else {
                        f64::NEG_INFINITY
                    }
                })
                .collect();
            let batch = topk::top_k_indices(&scores, params.batch_per_iter);
            if batch.is_empty() || scores[batch[0]] <= 1e-6 {
                // Everything answered or already certain: stop spending.
                break;
            }
            iterations += 1;

            // Assignment: uniform-random among the cheapest affordable
            // annotators who have not answered the object yet (DLTA's
            // acquisition step selects objects only; it is budget-aware but
            // quality-blind).
            let mut bought = 0;
            for &obj_idx in &batch {
                let obj = ObjectId(obj_idx);
                let mut fresh: Vec<_> = pool
                    .profiles()
                    .iter()
                    .filter(|p| {
                        !platform.answers().has_answered(obj, p.id) && platform.can_afford(p.id)
                    })
                    .collect();
                fresh.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
                let min_cost = fresh.first().map(|p| p.cost).unwrap_or(0.0);
                let cheap: Vec<_> = fresh
                    .iter()
                    .filter(|p| p.cost <= min_cost + 1e-9)
                    .map(|p| p.id)
                    .collect();
                let chosen = sample_indices(rng, cheap.len(), params.assignment_k);
                let annotators: Vec<_> = chosen.into_iter().map(|i| cheap[i]).collect();
                bought += platform.ask_many(obj, &annotators, rng).len();
            }
            if bought == 0 {
                break;
            }
            result = self
                .inference
                .infer(platform.answers(), k_classes, pool.len())?;
            apply_labels(&result, &mut labelled)?;
        }

        Ok(outcome_from(&labelled, &platform, iterations, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;

    fn setup(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", n, 3, 2)
            .with_separation(2.0)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(4, 1).generate(2, &mut rng).unwrap();
        (dataset, pool)
    }

    #[test]
    fn labels_everything_with_ample_budget() {
        let (dataset, pool) = setup(30, 1);
        let mut rng = seeded(2);
        let params = BaselineParams::with_budget(1000.0);
        let outcome = Dlta::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.coverage() > 0.9, "coverage {}", outcome.coverage());
        assert!(outcome.budget_spent <= 1000.0 + 1e-9);
        let acc = outcome
            .labels
            .iter()
            .enumerate()
            .filter(|(i, l)| **l == Some(dataset.truth(*i)))
            .count() as f64
            / dataset.len() as f64;
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn leaves_objects_unlabelled_under_tight_budget() {
        let (dataset, pool) = setup(50, 3);
        let mut rng = seeded(4);
        let params = BaselineParams::with_budget(20.0);
        let outcome = Dlta::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.coverage() < 1.0);
        assert!(outcome.budget_spent <= 20.0 + 1e-9);
        // No classifier means no enrichment, ever.
        assert_eq!(outcome.enriched_count, 0);
    }

    #[test]
    fn assignment_prefers_cheapest_tier() {
        let (dataset, pool) = setup(20, 5);
        let mut rng = seeded(6);
        let params = BaselineParams::with_budget(150.0);
        let outcome = Dlta::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        // With 4 workers at cost 1, the cheapest tier covers k = 3, so the
        // expert (cost 10) is almost never drawn.
        let avg_price = outcome.budget_spent / outcome.total_answers.max(1) as f64;
        assert!(avg_price < 2.0, "avg answer price {avg_price}");
    }

    #[test]
    fn stops_when_everything_is_certain() {
        let (dataset, pool) = setup(10, 7);
        let mut rng = seeded(8);
        // Huge budget, tiny dataset: must terminate by certainty, not budget.
        let params = BaselineParams::with_budget(1e6);
        let outcome = Dlta::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.budget_spent < 1e6);
    }
}
