//! DALC — "Leveraging crowdsourcing data for deep active learning"
//! (Yang et al., WWW 2018), as described in §VI-A.2.
//!
//! A Bayesian active-learning-from-crowds framework:
//!
//! * a classifier is trained on the current labelled set and folded into
//!   inference (we use the classifier-as-annotator construction — the
//!   "unified Bayesian model" without CrowdRL's joint retraining);
//! * task *selection* picks the most informative unlabelled objects
//!   (maximum classifier entropy);
//! * task *assignment* picks the annotators with the highest estimated
//!   expertise for those tasks — cost-blind, which is why DALC burns
//!   budget on experts;
//! * selection and assignment are two independent greedy passes: exactly
//!   the decoupling CrowdRL's unified action removes.

use crate::common::{
    apply_labels, initial_sample, outcome_from, BaselineParams, LabellingStrategy,
};
use crowdrl_core::classifier_util::retrain_on_labelled;
use crowdrl_core::enrichment::fallback_label_all;
use crowdrl_core::LabellingOutcome;
use crowdrl_inference::{ClassifierAsAnnotator, DawidSkene, MajorityVote};
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_rl::topk;
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::{prob, Budget, Dataset, LabelledSet, ObjectId, Result};
use rand::RngCore;

/// The DALC baseline.
#[derive(Debug, Clone)]
pub struct Dalc {
    /// Classifier hyperparameters.
    pub classifier: ClassifierConfig,
}

impl Default for Dalc {
    fn default() -> Self {
        Self {
            classifier: ClassifierConfig {
                epochs: 10,
                ..ClassifierConfig::default()
            },
        }
    }
}

impl LabellingStrategy for Dalc {
    fn name(&self) -> &'static str {
        "DALC"
    }

    fn run(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        params: &BaselineParams,
        rng: &mut dyn RngCore,
    ) -> Result<LabellingOutcome> {
        let n = dataset.len();
        let k_classes = dataset.num_classes();
        let mut platform = Platform::new(dataset, pool, Budget::new(params.budget)?);
        let mut labelled = LabelledSet::new(n);
        let mut classifier =
            SoftmaxClassifier::new(self.classifier.clone(), dataset.dim(), k_classes, rng)?;

        initial_sample(
            &mut platform,
            params.initial_ratio,
            params.assignment_k,
            rng,
        );
        let mut result = MajorityVote.infer(platform.answers(), k_classes, pool.len())?;
        apply_labels(&result, &mut labelled)?;
        retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;

        let mut iterations = 0;
        for _ in 0..params.max_iters {
            if platform.exhausted() || labelled.all_labelled() {
                break;
            }
            iterations += 1;

            // Selection: most informative = maximum classifier entropy
            // (uniform when untrained).
            let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
            let entropies: Vec<f64> = unlabelled
                .iter()
                .map(|obj| {
                    if classifier.is_trained() {
                        prob::entropy(&classifier.predict_proba_one(dataset.features(obj.index())))
                    } else {
                        (k_classes as f64).ln()
                    }
                })
                .collect();
            let batch = topk::top_k_indices(&entropies, params.batch_per_iter);
            if batch.is_empty() {
                break;
            }

            // Assignment: highest estimated expertise, cost-blind.
            let qualities = result.qualities();
            let mut bought = 0;
            for &bi in &batch {
                let obj = unlabelled[bi];
                let scores: Vec<f64> = pool
                    .profiles()
                    .iter()
                    .map(|p| {
                        if platform.answers().has_answered(obj, p.id) || !platform.can_afford(p.id)
                        {
                            f64::NEG_INFINITY
                        } else {
                            // Before any inference the qualities vector may
                            // be shorter than the pool; default neutral.
                            qualities.get(p.id.index()).copied().unwrap_or(0.5)
                        }
                    })
                    .collect();
                let chosen = topk::top_k_indices(&scores, params.assignment_k);
                let annotators: Vec<_> =
                    chosen.into_iter().map(|i| pool.profiles()[i].id).collect();
                bought += platform.ask_many(obj, &annotators, rng).len();
            }
            if bought == 0 {
                break;
            }

            // Inference: classifier folded in as an extra annotator when
            // trained; plain EM otherwise.
            result = if classifier.is_trained() {
                ClassifierAsAnnotator::default().infer(
                    dataset,
                    platform.answers(),
                    pool.len(),
                    &classifier,
                )?
            } else {
                DawidSkene::default().infer(platform.answers(), k_classes, pool.len())?
            };
            apply_labels(&result, &mut labelled)?;
            retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;
        }

        // DALC's model labels whatever the budget did not reach.
        let fallback_count = if classifier.is_trained() {
            fallback_label_all(dataset, &classifier, &mut labelled)?
        } else {
            0
        };
        Ok(outcome_from(
            &labelled,
            &platform,
            iterations,
            fallback_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;

    fn setup(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", n, 3, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 2).generate(2, &mut rng).unwrap();
        (dataset, pool)
    }

    #[test]
    fn labels_everything_and_stays_in_budget() {
        let (dataset, pool) = setup(50, 1);
        let mut rng = seeded(2);
        let params = BaselineParams::with_budget(300.0);
        let outcome = Dalc::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert_eq!(outcome.coverage(), 1.0);
        assert!(outcome.budget_spent <= 300.0 + 1e-9);
        let acc = outcome
            .labels
            .iter()
            .enumerate()
            .filter(|(i, l)| **l == Some(dataset.truth(*i)))
            .count() as f64
            / dataset.len() as f64;
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn assignment_is_expert_hungry() {
        // DALC assigns by expertise regardless of cost, so the average
        // answer price should exceed DLTA's quality-per-cost policy.
        let (dataset, pool) = setup(40, 3);
        let params = BaselineParams::with_budget(250.0);
        let mut rng = seeded(4);
        let dalc = Dalc::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        let mut rng = seeded(4);
        let dlta = crate::dlta::Dlta::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        let price = |o: &LabellingOutcome| o.budget_spent / o.total_answers.max(1) as f64;
        assert!(
            price(&dalc) > price(&dlta),
            "DALC {} should out-spend DLTA {} per answer",
            price(&dalc),
            price(&dlta)
        );
    }

    #[test]
    fn tight_budget_still_covers_via_model() {
        // Enough budget for the classifier to see both classes, but far too
        // little to annotate everything: coverage comes from the model.
        let (dataset, pool) = setup(60, 5);
        let mut rng = seeded(6);
        let params = BaselineParams::with_budget(100.0);
        let outcome = Dalc::default()
            .run(&dataset, &pool, &params, &mut rng)
            .unwrap();
        assert!(outcome.budget_spent <= 100.0 + 1e-9);
        // Model fallback gives full coverage once training happened.
        assert_eq!(outcome.coverage(), 1.0);
        // And most labels must have come from the model, not annotators.
        assert!(outcome.enriched_count > dataset.len() / 2);
    }
}
