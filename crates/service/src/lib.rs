//! # crowdrl-service
//!
//! Multi-tenant **sharded serving** of concurrent CrowdRL labelling
//! projects over one shared annotator pool.
//!
//! `crowdrl-serve` runs *one* project's asynchronous event loop. A real
//! labelling platform runs many at once — each with its own dataset,
//! budget, and inference state — all dispatching into the *same* crowd.
//! This crate adds that layer:
//!
//! * a [`Service`] owning N concurrent projects ([`ProjectSpec`]), with
//!   **admission control** ([`AdmissionPolicy`]): reject or queue
//!   submissions past [`ServiceConfig::capacity`];
//! * each project's objects **sharded across P partitions**, every
//!   shard a private event loop + ledger slice, advanced in parallel on
//!   the shared thread pool and merged back deterministically (the
//!   refresh watermark is the *minimum* frontier over a project's
//!   shards);
//! * one **pool broker** ([`PoolBroker`]) arbitrating annotator
//!   concurrency slots across projects in a stable (priority,
//!   submission) order, plus **cross-project quarantine evidence** — an
//!   annotator spamming project A is evidence for project B;
//! * **per-project budget isolation** on an
//!   [`AccountBook`](crowdrl_serve::AccountBook): reservations and
//!   exactly-once charges per account, never across accounts;
//! * per-project obs scoping (`project.<id>.` metric prefixes) and a
//!   cross-project [`AggregateMetrics`] report with a pool-fairness
//!   spread statistic;
//! * **tenant-isolated fault containment**: a shard panic (injected or
//!   genuine) or a scheduled abort fails only the offending project —
//!   typed [`ServiceError::ProjectFailed`], reservations released,
//!   quarantine evidence withdrawn, a queued project promoted in its
//!   place — while every other tenant keeps running bit-identically;
//! * **crash-consistent checkpoints** ([`ServiceCheckpoint`]) cut at
//!   round boundaries: kill-and-resume finishes bit-identically to an
//!   uninterrupted run, across exec modes, guarded by a config
//!   fingerprint;
//! * **overload protection**: a bounded admission queue that sheds with
//!   a typed error, a promotion backpressure floor on the shared pool's
//!   free slots, and per-project settlement-backlog bounds.
//!
//! Both [`ExecMode`](crowdrl_serve::ExecMode)s run the identical
//! sharded algorithm — `WorkerPool` only raises the thread cap — so a
//! whole multi-project run is bit-identical between them.
//!
//! ```
//! use crowdrl_core::CrowdRlConfig;
//! use crowdrl_service::{ProjectSpec, Service, ServiceConfig};
//! use crowdrl_sim::{DatasetSpec, PoolSpec};
//! use crowdrl_types::rng::seeded;
//!
//! let mut rng = seeded(11);
//! let pool = PoolSpec::new(6, 2).generate(2, &mut rng).unwrap();
//! let config = CrowdRlConfig::builder().budget(60.0).build().unwrap();
//! let specs: Vec<ProjectSpec> = (0..2)
//!     .map(|p| {
//!         let dataset = DatasetSpec::gaussian(format!("p{p}"), 20, 3, 2)
//!             .with_separation(3.0)
//!             .generate(&mut rng)
//!             .unwrap();
//!         ProjectSpec::new(format!("project-{p}"), config.clone(), dataset)
//!     })
//!     .collect();
//! let service = Service::new(ServiceConfig::default()).unwrap();
//! let outcome = service.run(&specs, &pool, &mut rng).unwrap();
//! assert_eq!(outcome.reports.len(), 2);
//! println!("{}", outcome.aggregate);
//! ```

pub mod broker;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod metrics;
pub mod project;
pub mod service;
pub(crate) mod shard;

pub use broker::PoolBroker;
pub use checkpoint::{
    service_fingerprint, ActiveProjectState, CollectorState, ProjectCheckpoint, ServiceCheckpoint,
    ShardState,
};
pub use config::{AdmissionPolicy, ProjectSpec, ServiceConfig};
pub use error::ServiceError;
pub use metrics::{AggregateMetrics, ProjectReport, ServiceOutcome};
pub use project::ProjectStatus;
pub use service::{Service, ServiceCheckpointSink, ServiceRunOutcome};
