//! One project partition: a private event loop plus a private ledger
//! slice.
//!
//! Objects are sharded `object mod P`, so each shard owns a disjoint set
//! of objects, its own [`EventQueue`], and its own [`AssignmentLedger`]
//! (with shard-local assignment ids). That disjointness is the whole
//! parallelism story: a scheduling round advances every shard of every
//! active project to the same horizon concurrently — no shard touches
//! another's state — and the settlements each shard produced are merged
//! back *sequentially in (project, shard, event) order*, so the merged
//! answer stream, the budget charges, and the trace are identical no
//! matter how many threads advanced the shards.
//!
//! Money never moves inside a shard. Deliveries and expiries settle
//! against the shard ledger only ([`AssignmentLedger::settle_deliver`] /
//! [`settle_expire`]); the returned [`ShardEvent`]s carry the cost, and
//! the merge applies it to the owning project's [`AccountBook`] account.
//!
//! [`settle_expire`]: AssignmentLedger::settle_expire
//! [`AccountBook`]: crowdrl_serve::AccountBook

use crowdrl_serve::clock::EventQueue;
use crowdrl_serve::event::EventKind;
use crowdrl_serve::ledger::{AssignmentLedger, Delivery, Expiry};
use crowdrl_types::{AnnotatorId, AssignmentId, ClassId, ObjectId, Result, SimTime};
use std::collections::HashSet;

/// A settlement one shard produced while advancing, in event order.
/// `uid` is the service-wide assignment id (also the sampling-stream
/// index), so the merged trace reads like one ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ShardEvent {
    /// An answer arrived in time.
    Delivered {
        /// Service-wide assignment id.
        uid: u64,
        /// The object answered.
        object: ObjectId,
        /// The annotator who answered (their slot frees up).
        annotator: AnnotatorId,
        /// The label given.
        label: ClassId,
        /// Answer latency.
        latency: SimTime,
        /// Cost to charge the project's account.
        cost: f64,
        /// Arrival time.
        at: SimTime,
    },
    /// An answer arrived after its assignment already expired — dropped,
    /// nothing charged (the expiry already released everything).
    RejectedLate {
        /// Service-wide assignment id.
        uid: u64,
        /// Arrival time.
        at: SimTime,
    },
    /// The timeout fired first: the reservation and the annotator slot
    /// are released at merge.
    Expired {
        /// Service-wide assignment id.
        uid: u64,
        /// The object whose question died.
        object: ObjectId,
        /// The annotator whose slot frees up.
        annotator: AnnotatorId,
        /// Reservation to release on the project's account.
        cost: f64,
        /// Expiry time.
        at: SimTime,
    },
}

/// Everything one shard settled during one round's advance.
#[derive(Debug, Default)]
pub(crate) struct ShardBatch {
    /// Settlements in event (pop) order.
    pub events: Vec<ShardEvent>,
    /// Events popped, including no-op pops (a timeout firing after its
    /// answer already delivered) — the per-project event counter.
    pub processed: usize,
}

/// One partition of one project (see module docs).
#[derive(Debug)]
pub(crate) struct Shard {
    queue: EventQueue,
    ledger: AssignmentLedger,
    /// Shard-local assignment id → service-wide uid.
    uids: Vec<u64>,
    /// Shard-local assignment id → the label the virtual crowd sampled
    /// (`None` = dropped; only the timeout will resolve it).
    labels: Vec<Option<ClassId>>,
    /// The horizon this shard was last advanced to — its merge
    /// frontier. The project's watermark is the min over its shards.
    frontier: SimTime,
    /// Settlements of the advance in progress. [`advance`](Self::advance)
    /// accumulates here and hands the batch out only on normal return,
    /// so a panic mid-advance leaves every already-settled event
    /// recoverable via [`drain_staged`](Self::drain_staged) — the ledger
    /// and this staging area never disagree about what was settled.
    staged: ShardBatch,
}

impl Shard {
    /// An empty shard with its clock at `start`.
    pub fn new(start: SimTime) -> Self {
        Self {
            queue: EventQueue::new(),
            ledger: AssignmentLedger::new(),
            uids: Vec::new(),
            labels: Vec::new(),
            frontier: start,
            staged: ShardBatch::default(),
        }
    }

    /// The merge frontier (last advance horizon).
    pub fn frontier(&self) -> SimTime {
        self.frontier
    }

    /// Time of the shard's earliest pending event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek_at()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending (unsettled) events in this shard's queue — the
    /// settlement-backlog contribution the overload bound reads.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether `(object, annotator)` holds a live claim here.
    pub fn pair_claimed(&self, object: ObjectId, annotator: AnnotatorId) -> bool {
        self.ledger.pair_claimed(object, annotator)
    }

    /// Objects with an in-flight assignment (the refresh `blocked` set).
    pub fn objects_in_flight(&self) -> HashSet<ObjectId> {
        self.ledger.objects_in_flight()
    }

    /// Open an assignment whose budget was already reserved on the
    /// project's account: record it in the shard ledger and schedule its
    /// delivery (if the crowd answered) and its timeout.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        &mut self,
        object: ObjectId,
        annotator: AnnotatorId,
        cost: f64,
        uid: u64,
        now: SimTime,
        deadline: SimTime,
        response: Option<(ClassId, SimTime)>,
    ) -> Result<()> {
        let local = self
            .ledger
            .dispatch_reserved(object, annotator, cost, now, deadline)?;
        debug_assert_eq!(local.0 as usize, self.uids.len());
        self.uids.push(uid);
        self.labels.push(response.map(|(label, _)| label));
        if let Some((_, latency)) = response {
            self.queue.push(now + latency, EventKind::Deliver(local))?;
        }
        self.queue.push(deadline, EventKind::Expire(local))?;
        Ok(())
    }

    /// Pop and settle every event at or before `horizon`, recording the
    /// settlements in pop order. Touches only this shard's state — safe
    /// to run concurrently with other shards' advances.
    pub fn advance(&mut self, horizon: SimTime) -> Result<ShardBatch> {
        while self.queue.peek_at().is_some_and(|at| at <= horizon) {
            let event = self.queue.pop().expect("peeked event vanished");
            self.staged.processed += 1;
            match event.kind {
                EventKind::Deliver(local) => {
                    let idx = local.0 as usize;
                    match self.ledger.settle_deliver(local, event.at)? {
                        Delivery::Accepted { cost, latency } => {
                            let record = self.ledger.record(local).expect("settled record");
                            let label = self.labels[idx].expect("delivered without a label");
                            self.staged.events.push(ShardEvent::Delivered {
                                uid: self.uids[idx],
                                object: record.object,
                                annotator: record.annotator,
                                label,
                                latency,
                                cost,
                                at: event.at,
                            });
                        }
                        Delivery::Rejected => self.staged.events.push(ShardEvent::RejectedLate {
                            uid: self.uids[idx],
                            at: event.at,
                        }),
                    }
                }
                EventKind::Expire(local) => {
                    let idx = local.0 as usize;
                    match self.ledger.settle_expire(local)? {
                        Expiry::TimedOut { cost } => {
                            let record = self.ledger.record(local).expect("settled record");
                            self.staged.events.push(ShardEvent::Expired {
                                uid: self.uids[idx],
                                object: record.object,
                                annotator: record.annotator,
                                cost,
                                at: event.at,
                            });
                        }
                        Expiry::AlreadySettled => {}
                    }
                }
            }
        }
        self.frontier = horizon;
        Ok(std::mem::take(&mut self.staged))
    }

    /// Take whatever an interrupted [`advance`](Self::advance) had
    /// already settled. After a normal advance this is empty; after a
    /// panic it holds the settlements whose returned batch unwound, so
    /// the containment path can still release their slots and
    /// reservations instead of leaking them.
    pub fn drain_staged(&mut self) -> ShardBatch {
        std::mem::take(&mut self.staged)
    }

    /// Cancel every in-flight assignment (the project is finishing
    /// early): settle them expired and return `(annotator, cost)` per
    /// cancellation so the caller can release broker slots and account
    /// reservations. Cancellations are not trace events — the project is
    /// over; what matters is that shared resources come back.
    pub fn cancel_in_flight(&mut self) -> Result<Vec<(AnnotatorId, f64)>> {
        let live: Vec<AssignmentId> = self
            .ledger
            .records()
            .iter()
            .filter(|r| r.status == crowdrl_serve::AssignmentStatus::InFlight)
            .map(|r| r.id)
            .collect();
        let mut released = Vec::with_capacity(live.len());
        for id in live {
            let annotator = self.ledger.record(id).expect("live record").annotator;
            if let Expiry::TimedOut { cost } = self.ledger.settle_expire(id)? {
                released.push((annotator, cost));
            }
        }
        Ok(released)
    }

    /// Snapshot for checkpointing. Only meaningful at a round boundary:
    /// the staging area must be empty (an interrupted advance means the
    /// project is being failed, not checkpointed).
    pub fn export(&self) -> crate::checkpoint::ShardState {
        debug_assert!(
            self.staged.events.is_empty() && self.staged.processed == 0,
            "checkpointing a shard with staged settlements"
        );
        let (now, next_seq, events) = self.queue.snapshot();
        crate::checkpoint::ShardState {
            now,
            next_seq,
            events,
            records: self.ledger.records().to_vec(),
            uids: self.uids.clone(),
            labels: self.labels.clone(),
            frontier: self.frontier,
        }
    }

    /// Rebuild a shard from an [`export`](Self::export) snapshot.
    pub fn restore(state: crate::checkpoint::ShardState) -> Result<Self> {
        let queue = EventQueue::restore(state.now, state.next_seq, state.events)?;
        let ledger = AssignmentLedger::restore(state.records)?;
        if state.uids.len() != ledger.len() || state.labels.len() != ledger.len() {
            return Err(crowdrl_types::Error::ServiceFailure(format!(
                "shard snapshot shape mismatch: {} records, {} uids, {} labels",
                ledger.len(),
                state.uids.len(),
                state.labels.len()
            )));
        }
        Ok(Self {
            queue,
            ledger,
            uids: state.uids,
            labels: state.labels,
            frontier: state.frontier,
            staged: ShardBatch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x).unwrap()
    }

    #[test]
    fn advance_settles_in_event_order_up_to_the_horizon() {
        let mut shard = Shard::new(SimTime::ZERO);
        // Answer at 3, timeout at 10.
        shard
            .open(
                ObjectId(0),
                AnnotatorId(0),
                1.0,
                7,
                t(0.0),
                t(10.0),
                Some((ClassId(1), t(3.0))),
            )
            .unwrap();
        // Dropped: only the timeout at 5 will resolve it.
        shard
            .open(ObjectId(2), AnnotatorId(1), 2.0, 8, t(0.0), t(5.0), None)
            .unwrap();
        let batch = shard.advance(t(4.0)).unwrap();
        assert_eq!(batch.processed, 1);
        assert!(matches!(
            batch.events[0],
            ShardEvent::Delivered {
                uid: 7,
                label: ClassId(1),
                cost,
                ..
            } if cost == 1.0
        ));
        assert_eq!(shard.frontier(), t(4.0));
        let batch = shard.advance(t(12.0)).unwrap();
        // The drop's timeout fires; the answered assignment's timeout is
        // a no-op pop (already delivered).
        assert_eq!(batch.processed, 2);
        assert_eq!(batch.events.len(), 1);
        assert!(matches!(
            batch.events[0],
            ShardEvent::Expired { uid: 8, cost, .. } if cost == 2.0
        ));
        assert!(shard.is_idle());
    }

    #[test]
    fn cancel_returns_every_live_reservation() {
        let mut shard = Shard::new(SimTime::ZERO);
        shard
            .open(
                ObjectId(0),
                AnnotatorId(3),
                1.5,
                0,
                t(0.0),
                t(10.0),
                Some((ClassId(0), t(2.0))),
            )
            .unwrap();
        shard
            .open(ObjectId(1), AnnotatorId(4), 2.5, 1, t(0.0), t(10.0), None)
            .unwrap();
        shard.advance(t(2.0)).unwrap(); // first one delivers
        let released = shard.cancel_in_flight().unwrap();
        assert_eq!(released, vec![(AnnotatorId(4), 2.5)]);
        assert!(shard.cancel_in_flight().unwrap().is_empty());
    }
}
