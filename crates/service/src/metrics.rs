//! Service-level reports: one per project, plus the aggregate.

use crate::error::ServiceError;
use crate::project::ProjectStatus;
use crowdrl_core::outcome::LabellingOutcome;
use crowdrl_obs as obs;
use crowdrl_serve::{ServiceMetrics, TraceEvent};
use crowdrl_types::SimTime;
use std::fmt;

/// What one submitted project came back with.
#[derive(Debug, Clone)]
pub struct ProjectReport {
    /// Name from the spec.
    pub name: String,
    /// `Completed`, `Rejected`, or `Failed` by the time the service
    /// returns.
    pub status: ProjectStatus,
    /// The labelling outcome (None unless completed).
    pub outcome: Option<LabellingOutcome>,
    /// The per-project service metrics (None iff rejected; a failed
    /// project keeps the metrics it accumulated before failing).
    /// Wall-clock fields are zero — projects share one process; wall
    /// time lives in the aggregate.
    pub metrics: Option<ServiceMetrics>,
    /// Why the project was rejected or failed (None iff it completed).
    pub error: Option<ServiceError>,
}

/// Cross-project totals for one service run.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateMetrics {
    /// Projects that ran (admitted immediately or from the queue).
    pub admitted: usize,
    /// Projects refused at admission.
    pub rejected: usize,
    /// Projects that failed mid-run and were isolated.
    pub failed: usize,
    /// Projects shed by the bounded admission queue (a subset of
    /// `rejected` — shedding is an admission refusal with a typed
    /// overload reason).
    pub shed: usize,
    /// Questions dispatched, all projects.
    pub dispatched: usize,
    /// Answers delivered and charged, all projects.
    pub answers_delivered: usize,
    /// Timeouts, all projects.
    pub timeouts: usize,
    /// Events processed, all projects.
    pub events_processed: usize,
    /// Scheduling rounds the service ran.
    pub rounds: usize,
    /// Final simulated clock.
    pub sim_duration: SimTime,
    /// Wall-clock seconds for the whole service run.
    pub wall_seconds: f64,
    /// Total real charges across every account.
    pub total_spent: f64,
    /// Delivered answers per simulated time unit, all projects.
    pub answers_per_time_unit: f64,
    /// Fairness of pool sharing: `(max − min) / mean` of per-project
    /// delivered-answer counts over completed projects (0 = perfectly
    /// even, larger = some project monopolised the pool).
    pub fairness_spread: f64,
}

impl AggregateMetrics {
    /// The spread statistic over per-project delivered counts.
    pub fn spread(delivered: &[usize]) -> f64 {
        if delivered.len() < 2 {
            return 0.0;
        }
        let max = *delivered.iter().max().expect("non-empty") as f64;
        let min = *delivered.iter().min().expect("non-empty") as f64;
        let mean = delivered.iter().sum::<usize>() as f64 / delivered.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            (max - min) / mean
        }
    }

    /// Bridge the aggregate into the obs trace (no-op unless recording).
    pub fn emit_trace(&self) {
        if !obs::enabled() {
            return;
        }
        obs::counter_add("service.projects_admitted", self.admitted as u64);
        obs::counter_add("service.projects_rejected", self.rejected as u64);
        obs::counter_add("service.projects_failed", self.failed as u64);
        obs::counter_add("service.projects_shed", self.shed as u64);
        obs::counter_add("service.dispatched", self.dispatched as u64);
        obs::counter_add("service.answers_delivered", self.answers_delivered as u64);
        obs::counter_add("service.timeouts", self.timeouts as u64);
        obs::counter_add("service.events_processed", self.events_processed as u64);
        obs::counter_add("service.rounds", self.rounds as u64);
        obs::gauge("service.sim_duration_tu", self.sim_duration.as_f64());
        obs::gauge("service.wall_seconds", self.wall_seconds);
        obs::gauge("service.total_spent", self.total_spent);
        obs::gauge("service.answers_per_tu", self.answers_per_time_unit);
        obs::gauge("service.fairness_spread", self.fairness_spread);
    }
}

impl fmt::Display for AggregateMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "service aggregate")?;
        writeln!(
            f,
            "  projects  {} admitted  {} rejected  {} failed  {} shed",
            self.admitted, self.rejected, self.failed, self.shed
        )?;
        writeln!(
            f,
            "  dispatched {}  delivered {}  timeouts {}  events {}  rounds {}",
            self.dispatched,
            self.answers_delivered,
            self.timeouts,
            self.events_processed,
            self.rounds
        )?;
        writeln!(
            f,
            "  sim time {}  wall {:.3}s  spent {:.2}",
            self.sim_duration, self.wall_seconds, self.total_spent
        )?;
        write!(
            f,
            "  throughput {:.3} answers/tu  fairness spread {:.3}",
            self.answers_per_time_unit, self.fairness_spread
        )
    }
}

/// Everything one service run produced.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// One report per submitted project, in submission order.
    pub reports: Vec<ProjectReport>,
    /// The merged service trace: every dispatch, delivery, expiry,
    /// refresh, and quarantine transition, tagged with the owning
    /// project's submission index, in deterministic merge order.
    pub trace: Vec<(usize, TraceEvent)>,
    /// Cross-project totals.
    pub aggregate: AggregateMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_zero_for_degenerate_inputs_and_scales_with_imbalance() {
        assert_eq!(AggregateMetrics::spread(&[]), 0.0);
        assert_eq!(AggregateMetrics::spread(&[10]), 0.0);
        assert_eq!(AggregateMetrics::spread(&[0, 0, 0]), 0.0);
        assert_eq!(AggregateMetrics::spread(&[5, 5, 5]), 0.0);
        // One project took everything: spread = (9-0)/3 = 3.
        assert_eq!(AggregateMetrics::spread(&[9, 0, 0]), 3.0);
        assert!(AggregateMetrics::spread(&[6, 4, 5]) < 0.5);
    }
}
